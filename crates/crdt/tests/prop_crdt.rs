//! Property-based certification of the ACID 2.0 merge laws (§8) for
//! every CRDT in the subsystem — and for the workspace's pre-existing
//! lattices ([`quicksand_core::op::OpLog`]; the dynamo vector clock is
//! certified in `dynamo/tests/prop_dynamo.rs` with the same checker).
//!
//! "In a loosely coupled world choosing availability and flexibility,
//! the clear knowledge of the success of an operation is problematic...
//! the application comes to terms with asynchrony by describing its
//! operations as Associative, Commutative, and Idempotent." The laws
//! are exactly [`crdt::check_merge_laws`]; the strategies below build
//! genuinely divergent replicas (different replica ids, interleaved
//! adds/removes, racing writes) so the checker exercises real
//! concurrency, not just reordered sequential histories.

use crdt::{check_merge_laws, Crdt, GCounter, LWWRegister, MVRegister, ORSet, PNCounter};
use proptest::prelude::*;
use quicksand_core::acid2::examples::CounterAdd;
use quicksand_core::op::OpLog;

fn gcounter_strategy() -> impl Strategy<Value = GCounter> {
    prop::collection::vec((0u64..5, 1u64..10), 0..8).prop_map(|incs| {
        let mut c = GCounter::new();
        for (replica, by) in incs {
            c.inc(replica, by);
        }
        c
    })
}

fn pncounter_strategy() -> impl Strategy<Value = PNCounter> {
    prop::collection::vec((0u64..5, -10i64..10), 0..8).prop_map(|ops| {
        let mut c = PNCounter::new();
        for (replica, delta) in ops {
            c.add(replica, delta);
        }
        c
    })
}

// The dot-based types assume each replica id is one *sequential*
// writer: a dot or (timestamp, replica) pair names a unique event. Two
// samples in a law check model divergent replicas of one object, so
// they must not independently mint the same event name with different
// payloads — hence the strategies below take a `base` that keeps each
// sample's replica-id space disjoint.

fn lww_strategy() -> impl Strategy<Value = LWWRegister<u32>> {
    // The written value is a function of (ts, replica): the LWW total
    // order is over unique (ts, replica) pairs, so equal pairs must
    // carry equal values.
    prop::collection::vec((0u64..12, 0u64..4), 0..6).prop_map(|writes| {
        let mut r = LWWRegister::new();
        for (ts, replica) in writes {
            r.write(ts, replica, (ts * 100 + replica) as u32);
        }
        r
    })
}

fn mv_strategy(base: u64) -> impl Strategy<Value = MVRegister<u32>> {
    // Two replicas write independently, then one side may merge the
    // other — producing single-value, multi-value, and dominated states.
    (prop::collection::vec(0u32..50, 0..5), prop::collection::vec(0u32..50, 0..5), any::<bool>())
        .prop_map(move |(left, right, join)| {
            let mut a = MVRegister::new();
            for v in left {
                a.write(base, v);
            }
            let mut b = MVRegister::new();
            for v in right {
                b.write(base + 1, v);
            }
            if join {
                a.merge(&b);
            }
            a
        })
}

fn orset_strategy(base: u64) -> impl Strategy<Value = ORSet<u64>> {
    // true = insert, false = (observed) remove, over a small element
    // space so removes actually observe prior adds.
    prop::collection::vec((0u64..2, 0u64..6, any::<bool>()), 0..10).prop_map(move |ops| {
        let mut s = ORSet::new();
        for (replica, element, insert) in ops {
            if insert {
                s.insert(base + replica, element);
            } else {
                s.remove(&element);
            }
        }
        s
    })
}

fn oplog_strategy(ns: u64) -> impl Strategy<Value = OpLog<CounterAdd>> {
    // Ids are namespaced per log: a uniquifier names one operation, so
    // two logs must not reuse an id for different deltas.
    prop::collection::vec((0u64..24, -10i64..10), 0..8).prop_map(move |ops| {
        let mut log = OpLog::new();
        for (n, delta) in ops {
            log.record(CounterAdd {
                id: quicksand_core::uniquifier::Uniquifier::from_parts(ns, n),
                delta,
            });
        }
        log
    })
}

proptest! {
    #[test]
    fn gcounter_satisfies_the_merge_laws(
        a in gcounter_strategy(), b in gcounter_strategy(), c in gcounter_strategy()
    ) {
        check_merge_laws(&[a, b, c]).map_err(TestCaseError::Fail)?;
    }

    #[test]
    fn pncounter_satisfies_the_merge_laws(
        a in pncounter_strategy(), b in pncounter_strategy(), c in pncounter_strategy()
    ) {
        check_merge_laws(&[a, b, c]).map_err(TestCaseError::Fail)?;
    }

    #[test]
    fn lww_register_satisfies_the_merge_laws(
        a in lww_strategy(), b in lww_strategy(), c in lww_strategy()
    ) {
        check_merge_laws(&[a, b, c]).map_err(TestCaseError::Fail)?;
    }

    #[test]
    fn mv_register_satisfies_the_merge_laws(
        a in mv_strategy(0), b in mv_strategy(8), c in mv_strategy(16)
    ) {
        check_merge_laws(&[a, b, c]).map_err(TestCaseError::Fail)?;
    }

    #[test]
    fn orset_satisfies_the_merge_laws(
        a in orset_strategy(0), b in orset_strategy(8), c in orset_strategy(16)
    ) {
        check_merge_laws(&[a, b, c]).map_err(TestCaseError::Fail)?;
    }

    /// The op-log was the workspace's original ACID 2.0 structure; the
    /// retrofit [`Crdt`] impl must satisfy the same laws. `OpLog`
    /// doesn't expose `PartialEq`, so the laws are spelled out against
    /// `same_ops` instead of going through `check_merge_laws`.
    #[test]
    fn oplog_union_is_commutative_associative_idempotent(
        a in oplog_strategy(1), b in oplog_strategy(2), c in oplog_strategy(3)
    ) {
        // Idempotence.
        let mut aa = a.clone();
        Crdt::merge(&mut aa, &a.clone());
        prop_assert!(aa.same_ops(&a));
        // Commutativity.
        let ab = a.clone().joined(&b);
        let ba = b.clone().joined(&a);
        prop_assert!(ab.same_ops(&ba));
        prop_assert_eq!(ab.materialize(), ba.materialize());
        // Associativity.
        let ab_c = a.clone().joined(&b).joined(&c);
        let a_bc = a.clone().joined(&b.clone().joined(&c));
        prop_assert!(ab_c.same_ops(&a_bc));
    }

    /// Concurrent adds to a G-counter never lose increments: the merged
    /// value dominates both sides (monotonicity of join).
    #[test]
    fn gcounter_merge_never_loses_increments(
        a in gcounter_strategy(), b in gcounter_strategy()
    ) {
        let m = a.clone().joined(&b);
        prop_assert!(m.value() >= a.value().max(b.value()));
    }

    /// An observed remove is never resurrected by re-merging any state
    /// the remover had already seen — the CRDT-side §6.4 guarantee.
    #[test]
    fn orset_observed_removes_stay_removed_under_remerge(
        base in orset_strategy(0), element in 0u64..6
    ) {
        let mut removing = base.clone();
        removing.remove(&element);
        // Re-deliver the entire pre-remove state (stale gossip).
        removing.merge(&base);
        prop_assert!(!removing.contains(&element));
    }
}
