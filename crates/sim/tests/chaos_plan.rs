//! Integration tests of the chaos subsystem against the simulator
//! proper: fault-plan application is deterministic down to the exported
//! bytes, partial heals keep the remaining blocks in force, and
//! quiescence detection ignores the dead timers a fault plan leaves
//! behind.

use proptest::prelude::*;
use sim::chaos::{Fault, FaultPlan, FaultSpec};
use sim::{Actor, Context, NodeId, SimDuration, SimTime, Simulation, SpanStatus};

#[derive(Clone)]
struct Tick;

/// A ring gossiper: every 50ms each node opens a span, pings its
/// neighbour, and counts what it hears — enough traffic that every
/// fault clause in a plan leaves fingerprints in the trace, metrics,
/// and span store.
struct Gossiper {
    next: NodeId,
}

impl Actor<Tick> for Gossiper {
    fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Tick>, _from: NodeId, _msg: Tick) {
        ctx.metrics().inc("gossip.heard");
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Tick>, _tag: u64) {
        let span = ctx.start_span("gossip.tick");
        ctx.send(self.next, Tick);
        ctx.finish_span_with(span, SpanStatus::Ok);
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
    fn on_restart(&mut self, ctx: &mut Context<'_, Tick>) {
        ctx.set_timer(SimDuration::from_millis(50), 0);
    }
}

const RING: usize = 4;

/// Run a 4-node gossip ring under `plan` and export every observable
/// byte stream: the trace JSONL, the metrics JSON, and the span JSONL.
fn run_ring(plan: &FaultPlan, seed: u64, horizon: SimTime) -> (String, String, String) {
    let mut sim: Simulation<Tick> = Simulation::new(seed);
    for i in 0..RING {
        sim.add_node(Gossiper { next: NodeId((i + 1) % RING) });
    }
    sim.enable_trace(100_000);
    plan.apply(&mut sim);
    sim.run_until(horizon);
    let trace = sim.trace().expect("trace enabled").to_jsonl();
    let spans = sim.spans().to_jsonl();
    (trace, sim.metrics().to_json(), spans)
}

fn ring_spec() -> FaultSpec {
    FaultSpec::new((0..RING).map(NodeId).collect())
        .window(SimTime::from_millis(10), SimTime::from_secs(2))
        .faults(1, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: applying the same plan with the same seed to two
    /// fresh simulations yields byte-identical trace and metrics JSON
    /// (and span JSONL for good measure).
    #[test]
    fn same_seed_and_plan_exports_identical_bytes(seed in 0u64..5_000) {
        let plan = FaultPlan::generate(seed, &ring_spec());
        let horizon = SimTime::from_secs(3);
        let (trace_a, metrics_a, spans_a) = run_ring(&plan, seed, horizon);
        let (trace_b, metrics_b, spans_b) = run_ring(&plan, seed, horizon);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(metrics_a, metrics_b);
        prop_assert_eq!(spans_a, spans_b);
    }

    /// Different sweep indices produce different plans (mix_seed keeps
    /// adjacent — and zero — seeds apart; clause onsets are drawn from
    /// ~2M microsecond values, so honest streams never collide).
    #[test]
    fn different_seeds_generate_different_plans(seed in 0u64..2_000) {
        let spec = ring_spec();
        let a = FaultPlan::generate(seed, &spec);
        let b = FaultPlan::generate(seed + 1, &spec);
        prop_assert_ne!(a, b);
    }
}

/// Satellite regression: `partition_groups` followed by `heal_pair`
/// heals only that pair — every other cross-group pair stays blocked —
/// and the surviving blocks are visible as dropped `net.hop` spans.
#[test]
fn heal_pair_after_partition_groups_leaves_other_pairs_blocked() {
    let mut sim: Simulation<Tick> = Simulation::new(42);
    for i in 0..RING {
        sim.add_node(Gossiper { next: NodeId((i + 1) % RING) });
    }
    let (n0, n1, n2, n3) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    sim.run_until(SimTime::from_millis(10)); // start the ring
    let net = sim.network_mut();
    net.partition_groups(&[n0, n1], &[n2, n3]);
    net.heal_pair(n1, n2);
    // The healed pair flows again; every other cross pair is blocked,
    // in both directions.
    assert!(!net.is_blocked(n1, n2));
    assert!(!net.is_blocked(n2, n1));
    for (a, b) in [(n0, n2), (n0, n3), (n1, n3)] {
        assert!(net.is_blocked(a, b), "{a}->{b} must stay blocked");
        assert!(net.is_blocked(b, a), "{b}->{a} must stay blocked");
    }
    // Run on: the ring sends 1->2 (healed, delivered) and 3->0
    // (blocked, dropped) — the drops surface as Dropped net.hop spans.
    sim.run_until(SimTime::from_millis(200));
    let spans = sim.spans();
    let dropped_hops = spans
        .spans()
        .iter()
        .filter(|s| s.name == "net.hop" && s.status == SpanStatus::Dropped)
        .count();
    assert!(dropped_hops > 0, "blocked 3->0 sends must show as dropped hops");
    let delivered_hops =
        spans.spans().iter().filter(|s| s.name == "net.hop" && s.status == SpanStatus::Ok).count();
    assert!(delivered_hops > 0, "healed 1->2 sends must still deliver");
}

/// Satellite: `run_until_quiescent` returns the quiescence time under
/// an active fault plan. A crashed-and-not-restarted node's pending
/// timers are dead — they must drain without extending the reported
/// quiescence time.
#[test]
fn quiescence_time_under_a_fault_plan_ignores_dead_timers() {
    let crash_at = SimTime::from_millis(225);
    let plan = FaultPlan::from_faults(vec![
        Fault::Partition {
            at: SimTime::from_millis(60),
            until: SimTime::from_millis(120),
            left: vec![NodeId(0), NodeId(1)],
            right: vec![NodeId(2), NodeId(3)],
        },
        Fault::Crash { at: crash_at, node: NodeId(2), restart_at: None },
    ]);
    let mut sim: Simulation<Tick> = Simulation::new(7);
    for i in 0..RING {
        sim.add_node(Gossiper { next: NodeId((i + 1) % RING) });
    }
    plan.apply(&mut sim);

    // Node 2's timer (armed at 200ms to fire at 250ms, pre-crash epoch)
    // is dead after the crash at 225ms and must not count as progress.
    // A limit between the crash and that timer's due time pins the
    // distinction: live nodes tick at 250ms, the dead timer drains
    // silently.
    let limit = SimTime::from_millis(260);
    let q = sim.run_until_quiescent(limit);
    // Live nodes ticked at 250ms (and their sends landed at 251ms);
    // node 2's own 250ms timer was dead. Quiescence is the last live
    // delivery, not the limit.
    assert!(q > crash_at && q < limit, "q={q}");
    assert!(!sim.is_up(NodeId(2)));
    // With every node crashed after the horizon, only dead timers
    // remain: quiescence stops advancing entirely.
    for i in [0usize, 1, 3] {
        sim.schedule_crash(SimTime::from_millis(261), NodeId(i));
    }
    let q2 = sim.run_until_quiescent(SimTime::from_secs(10));
    assert_eq!(
        q2,
        SimTime::from_millis(261),
        "after the last crash nothing effectful remains, dead timers notwithstanding"
    );
}
