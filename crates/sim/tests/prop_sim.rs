//! Property tests of the simulator's foundations: determinism, latency
//! bounds, and drop-rate fidelity — the guarantees every experiment in
//! the workspace stands on.

use proptest::prelude::*;
use sim::{Actor, Context, LinkConfig, Network, NodeId, SimDuration, SimTime, Simulation};

#[derive(Clone)]
struct Ping;

/// Echoes pings and records delivery times.
struct Echo {
    peer: Option<NodeId>,
    to_send: u32,
    received_at: Vec<u64>,
}

impl Actor<Ping> for Echo {
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        if let Some(p) = self.peer {
            for _ in 0..self.to_send {
                ctx.send(p, Ping);
            }
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {
        self.received_at.push(ctx.now().as_micros());
    }
}

fn run_pair(seed: u64, min_us: u64, max_us: u64, drop: f64, pings: u32) -> Vec<u64> {
    let net = Network::new(LinkConfig::lossy(
        SimDuration::from_micros(min_us),
        SimDuration::from_micros(max_us),
        drop,
    ));
    let mut sim = Simulation::with_network(seed, net);
    let a = sim.add_node(Echo { peer: None, to_send: 0, received_at: vec![] });
    let _b = sim.add_node(Echo { peer: Some(a), to_send: pings, received_at: vec![] });
    sim.run_until(SimTime::from_secs(10));
    sim.actor::<Echo>(a).received_at.clone()
}

proptest! {
    /// The same seed replays the identical history, for any network.
    #[test]
    fn same_seed_same_history(
        seed in 0u64..10_000,
        min_us in 1u64..5_000,
        span in 0u64..5_000,
        drop in 0.0f64..0.9,
    ) {
        let a = run_pair(seed, min_us, min_us + span, drop, 50);
        let b = run_pair(seed, min_us, min_us + span, drop, 50);
        prop_assert_eq!(a, b);
    }

    /// Deliveries always land within the configured latency bounds.
    #[test]
    fn latency_respects_bounds(
        seed in 0u64..10_000,
        min_us in 1u64..5_000,
        span in 0u64..5_000,
    ) {
        let arrivals = run_pair(seed, min_us, min_us + span, 0.0, 50);
        prop_assert_eq!(arrivals.len(), 50, "lossless link must deliver all");
        for t in arrivals {
            prop_assert!(t >= min_us && t <= min_us + span, "t={} out of bounds", t);
        }
    }

    /// Observed drop rates stay near the configured probability.
    #[test]
    fn drop_rate_is_statistically_faithful(seed in 0u64..200, drop in 0.1f64..0.9) {
        let n = 600u32;
        let arrivals = run_pair(seed, 10, 10, drop, n);
        let delivered = arrivals.len() as f64 / n as f64;
        let expected = 1.0 - drop;
        prop_assert!(
            (delivered - expected).abs() < 0.12,
            "delivered {:.2}, expected {:.2}", delivered, expected
        );
    }
}
