//! The timer-cancel contract on the deterministic engine (the runtime
//! crate holds the mirror test): cancelling an already-fired [`TimerId`]
//! is a no-op, and cancelling a *foreign* id — one minted by another
//! node that crossed a node boundary inside a message — is a documented
//! no-op counted under `sim.foreign_timer_cancel_ignored`.

use sim::{Actor, Context, NodeId, SimDuration, SimTime, Simulation, TimerId};

#[derive(Clone)]
enum Msg {
    /// "Here is my timer id — try to cancel it."
    Leak(TimerId),
}

/// Arms two timers; when the first fires it cancels the first's own
/// (now already-fired) id. The second must still fire.
struct Canceller {
    first: Option<TimerId>,
    fired: Vec<u64>,
}

impl Actor<Msg> for Canceller {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.first = Some(ctx.set_timer(SimDuration::from_millis(10), 1));
        ctx.set_timer(SimDuration::from_millis(20), 2);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
        self.fired.push(tag);
        if tag == 1 {
            // Cancel the id that just fired: must be a silent no-op and
            // must not disturb the still-pending tag-2 timer.
            ctx.cancel_timer(self.first.expect("armed on start"));
        }
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
}

/// Arms a timer and leaks its id to a meddler node.
struct Victim {
    meddler: NodeId,
    fired: Vec<u64>,
}

impl Actor<Msg> for Victim {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        let id = ctx.set_timer(SimDuration::from_millis(50), 7);
        ctx.send(self.meddler, Msg::Leak(id));
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, tag: u64) {
        self.fired.push(tag);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
}

/// Tries to cancel whatever timer id it is handed.
struct Meddler;

impl Actor<Msg> for Meddler {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Leak(id) = msg;
        ctx.cancel_timer(id);
    }
}

#[test]
fn cancelling_a_fired_timer_is_a_noop() {
    let mut sim = Simulation::new(42);
    let c = sim.add_node(Canceller { first: None, fired: vec![] });
    sim.run_until(SimTime::from_secs(1));
    // Both timers fired despite the post-hoc cancel of the first.
    assert_eq!(sim.actor::<Canceller>(c).fired, vec![1, 2]);
    assert_eq!(sim.metrics().counter("sim.foreign_timer_cancel_ignored"), 0);
}

#[test]
fn cancelling_a_foreign_timer_is_a_counted_noop() {
    let mut sim = Simulation::new(42);
    let meddler = sim.add_node(Meddler);
    let victim = sim.add_node(Victim { meddler, fired: vec![] });
    sim.run_until(SimTime::from_secs(1));
    // The meddler's cancel was ignored: the victim's timer still fired,
    // and the engine counted the attempt.
    assert_eq!(sim.actor::<Victim>(victim).fired, vec![7]);
    assert_eq!(sim.metrics().counter("sim.foreign_timer_cancel_ignored"), 1);
}
