//! The discrete-event simulation loop.
//!
//! [`Simulation`] owns the actors, the network, the clock, the seeded RNG,
//! and the metric set. Experiments are structured as: build a simulation,
//! add nodes, schedule failures and partitions, run to a horizon, then
//! read metrics and downcast actors to inspect their final state.
//!
//! Determinism: events are ordered by `(time, sequence-number)`, latencies
//! and drops are drawn from one seeded RNG, and actors only interact
//! through [`crate::actor::Context`] — so a given seed always replays the
//! identical history, including the failures.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::actor::{Action, Actor, Context, NodeId, TimerId};
use crate::engine::EngineCore;
use crate::flight::{FlightId, FlightKind, FlightRecorder};
use crate::ledger::Ledger;
use crate::metrics::MetricSet;
use crate::net::{Delivery, LinkConfig, Network};
use crate::span::{SpanId, SpanStore};
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind};

enum EventKind<M> {
    /// `hop` is the `net.hop` span opened when the send was planned; it is
    /// finished (ok/dropped) when the delivery is dispatched. `cause` is
    /// the flight event being dispatched when the send was issued — the
    /// send→deliver edge of the causal graph.
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: M,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
    },
    /// `cause` is the flight event during which the timer was armed —
    /// the set→fire edge of the causal graph.
    Timer {
        node: NodeId,
        id: TimerId,
        tag: u64,
        epoch: u64,
        span: Option<SpanId>,
        cause: Option<FlightId>,
    },
    Crash {
        node: NodeId,
    },
    Restart {
        node: NodeId,
    },
    PartitionGroups {
        left: Vec<NodeId>,
        right: Vec<NodeId>,
    },
    PartitionOneWay {
        from: Vec<NodeId>,
        to: Vec<NodeId>,
    },
    HealGroups {
        left: Vec<NodeId>,
        right: Vec<NodeId>,
    },
    HealAll,
    Degrade {
        a: NodeId,
        b: NodeId,
        link: LinkConfig,
        until: SimTime,
    },
    /// Undo of a `Degrade`: reinstall the overrides snapshotted when the
    /// degradation took effect (`None` = no override, back to default).
    RestoreLink {
        a: NodeId,
        b: NodeId,
        prev_ab: Option<LinkConfig>,
        prev_ba: Option<LinkConfig>,
    },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct NodeSlot<M> {
    actor: Option<Box<dyn Actor<M>>>,
    up: bool,
    /// Bumped on every crash; timer events carry the epoch they were armed
    /// in, so timers never survive a crash (they are process-local state).
    epoch: u64,
}

/// A deterministic discrete-event simulation over actors exchanging
/// messages of type `M`.
pub struct Simulation<M> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<M>>,
    nodes: Vec<NodeSlot<M>>,
    net: Network,
    /// The engine-independent half (RNG, metrics, spans, trace, flight,
    /// ledger, timer allocator) — shared by construction with the
    /// wall-clock runtime, so effect semantics cannot drift.
    core: EngineCore,
    cancelled_timers: HashSet<u64>,
    started: bool,
    /// The flight event currently being dispatched; sends, timer arms,
    /// and markers issued during its callback cite it as their cause.
    current_cause: Option<FlightId>,
}

impl<M: Clone + 'static> Simulation<M> {
    /// A simulation with the given RNG seed and a default (1ms reliable)
    /// network.
    pub fn new(seed: u64) -> Self {
        Simulation::with_network(seed, Network::new(LinkConfig::default()))
    }

    /// A simulation with an explicit network model.
    pub fn with_network(seed: u64, net: Network) -> Self {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            net,
            core: EngineCore::new(seed),
            cancelled_timers: HashSet::new(),
            started: false,
            current_cause: None,
        }
    }

    /// Record dispatched events into a bounded ring (see
    /// [`crate::trace`]). Call before running; costs nothing when never
    /// enabled.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.core.trace = Some(Trace::new(capacity));
    }

    /// The recorded trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.core.trace.as_ref()
    }

    /// Record the causal event graph into a bounded ring (see
    /// [`crate::flight`]). Call before running; costs nothing when never
    /// enabled.
    pub fn enable_flight(&mut self, capacity: usize) {
        self.core.flight = Some(FlightRecorder::new(capacity));
    }

    /// The flight recorder, if enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.core.flight.as_ref()
    }

    /// Take ownership of the flight recorder (for stashing in a report
    /// after the run). Further dispatches record nothing.
    pub fn take_flight(&mut self) -> Option<FlightRecorder> {
        self.core.flight.take()
    }

    /// The run's guess/apology ledger (see [`crate::ledger`]). Always
    /// on: a run that makes no guesses has an empty ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.core.ledger
    }

    /// Export the ledger's accounting into the run's metric registry
    /// (call once, after the run, before reading metrics).
    pub fn export_ledger_metrics(&mut self) {
        self.core.export_ledger_metrics();
    }

    /// Resolve a still-open guess span at final settlement — for
    /// harnesses whose ground truth is only knowable at report time
    /// (e.g. an async commit-ack whose shipping confirmation could never
    /// arrive because the peer stayed dead). Mirrors
    /// [`Context::resolve_guess`]: records the outstanding window,
    /// bumps `guess.confirmed`/`guess.apologies`, closes the ledger
    /// record, and emits a flight event marked `settled=end-of-run`.
    /// No-op on spans already closed (e.g. by a crash).
    pub fn settle_guess(&mut self, span: SpanId, confirmed: bool) {
        let now = self.now;
        self.core.settle_guess(span, confirmed, now);
    }

    /// Add an actor; returns its node id. All nodes must be added before
    /// the first `run_*` call.
    pub fn add_node(&mut self, actor: impl Actor<M>) -> NodeId {
        assert!(!self.started, "nodes must be added before the simulation starts");
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot { actor: Some(Box::new(actor)), up: true, epoch: 0 });
        id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the simulation.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True if the node is currently up.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.nodes[node.0].up
    }

    /// Mutable access to the network (to set per-link configs before the
    /// run, or to partition mid-run from harness code).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The run's metrics (read-only).
    pub fn metrics(&self) -> &MetricSet {
        &self.core.metrics
    }

    /// The run's metrics (for percentile queries, which need `&mut`).
    pub fn metrics_mut(&mut self) -> &mut MetricSet {
        &mut self.core.metrics
    }

    /// Every causal span recorded during the run (see [`crate::span`]).
    /// Always on: span recording is cheap at simulation scale and the
    /// store stays empty when nothing is instrumented.
    pub fn spans(&self) -> &SpanStore {
        &self.core.spans
    }

    /// The shared engine core (RNG, metrics, spans, trace, flight,
    /// ledger) — for harnesses that need more than the individual
    /// accessors expose.
    pub fn core_mut(&mut self) -> &mut EngineCore {
        &mut self.core
    }

    /// Downcast a node's actor to its concrete type to inspect state.
    ///
    /// # Panics
    /// Panics if the node's actor is not a `T`.
    pub fn actor<T: Actor<M>>(&self, node: NodeId) -> &T {
        let a = self.nodes[node.0].actor.as_ref().expect("actor is never absent between events");
        (a.as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("actor type mismatch in Simulation::actor")
    }

    /// Mutable variant of [`Simulation::actor`].
    pub fn actor_mut<T: Actor<M>>(&mut self, node: NodeId) -> &mut T {
        let a = self.nodes[node.0].actor.as_mut().expect("actor is never absent between events");
        (a.as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("actor type mismatch in Simulation::actor_mut")
    }

    /// Schedule a fail-fast crash of `node` at absolute time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Crash { node });
    }

    /// Schedule a restart of `node` at absolute time `at`.
    pub fn schedule_restart(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Restart { node });
    }

    /// Schedule a two-group network partition at absolute time `at`.
    pub fn schedule_partition(&mut self, at: SimTime, left: &[NodeId], right: &[NodeId]) {
        self.push(at, EventKind::PartitionGroups { left: left.to_vec(), right: right.to_vec() });
    }

    /// Schedule a full heal of every partition at absolute time `at`.
    pub fn schedule_heal(&mut self, at: SimTime) {
        self.push(at, EventKind::HealAll);
    }

    /// Schedule a one-way group partition at absolute time `at`: messages
    /// `from → to` are dropped, the reverse direction keeps flowing.
    pub fn schedule_partition_oneway(&mut self, at: SimTime, from: &[NodeId], to: &[NodeId]) {
        self.push(at, EventKind::PartitionOneWay { from: from.to_vec(), to: to.to_vec() });
    }

    /// Schedule a heal of every cross-group pair between `left` and
    /// `right` (both directions) at absolute time `at`. Unlike
    /// [`Simulation::schedule_heal`], partitions not involving these
    /// groups stay in force.
    pub fn schedule_heal_groups(&mut self, at: SimTime, left: &[NodeId], right: &[NodeId]) {
        self.push(at, EventKind::HealGroups { left: left.to_vec(), right: right.to_vec() });
    }

    /// Schedule a heal of the single pair `a ↔ b` at absolute time `at`.
    pub fn schedule_heal_pair(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.schedule_heal_groups(at, &[a], &[b]);
    }

    /// Degrade the `a ↔ b` link to `link` (both directions) from `at`
    /// until `until`, then restore whatever configuration — override or
    /// default — was in force when the degradation hit.
    pub fn schedule_degrade(
        &mut self,
        at: SimTime,
        a: NodeId,
        b: NodeId,
        link: LinkConfig,
        until: SimTime,
    ) {
        self.push(at, EventKind::Degrade { a, b, link, until: until.max(at) });
    }

    /// Deliver `msg` to `to` exactly at time `at`, bypassing the network
    /// model (for harness-driven injection). `from` is attributed as the
    /// sender.
    pub fn inject_at(&mut self, at: SimTime, to: NodeId, from: NodeId, msg: M) {
        self.push(at, EventKind::Deliver { to, from, msg, hop: None, cause: None });
    }

    /// Run every event up to and including time `horizon`; the clock ends
    /// at `horizon` even if the queue drained earlier.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.ensure_started();
        while let Some(ev) = self.queue.peek() {
            if ev.at > horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.dispatch(ev);
        }
        self.now = self.now.max(horizon);
    }

    /// Run until no events remain or the next event lies beyond `limit`,
    /// and return the **quiescence time**: the timestamp of the last event
    /// that had any effect (a delivered message, a live timer firing, a
    /// node or network state change). Dead events — cancelled timers,
    /// timers armed in an earlier epoch or pending on a crashed node,
    /// deliveries to down nodes, redundant crash/restart events — are
    /// still drained but do not extend the quiescence time, so a crashed
    /// node's leftover timers cannot stall quiescence detection. The clock
    /// is left at the time of the last drained event, not pushed to
    /// `limit`.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> SimTime {
        self.ensure_started();
        let mut quiesced_at = self.now;
        while let Some(ev) = self.queue.peek() {
            if ev.at > limit {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            if self.dispatch(ev) {
                quiesced_at = self.now;
            }
        }
        quiesced_at
    }

    /// Process exactly one event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.queue.pop() {
            Some(ev) => {
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_actor(NodeId(i), None, |actor, ctx| actor.on_start(ctx));
        }
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Apply one event. Returns `true` when the event had an effect on
    /// the world — the signal [`Simulation::run_until_quiescent`] uses to
    /// tell real progress from dead events draining out of the queue.
    fn dispatch(&mut self, ev: Event<M>) -> bool {
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = self.now.max(ev.at);
        match ev.kind {
            EventKind::Deliver { to, from, msg, hop, cause } => {
                if !self.nodes[to.0].up {
                    self.core.dropped_to_down(to, from, hop, cause, self.now);
                    return false;
                }
                self.current_cause = self.core.deliver_bookkeeping(to, from, hop, cause, self.now);
                // The receiver runs under the hop span, so spans it opens
                // land inside the sender's causal tree.
                self.with_actor(to, hop, |actor, ctx| actor.on_message(ctx, from, msg));
                self.current_cause = None;
                true
            }
            EventKind::Timer { node, id, tag, epoch, span, cause } => {
                if self.cancelled_timers.remove(&id.seq()) {
                    return false;
                }
                let slot = &self.nodes[node.0];
                if !slot.up || slot.epoch != epoch {
                    return false; // timers do not survive crashes
                }
                self.current_cause = self.core.timer_bookkeeping(node, span, cause, self.now);
                self.with_actor(node, span, |actor, ctx| actor.on_timer(ctx, tag));
                self.current_cause = None;
                true
            }
            EventKind::Crash { node } => {
                let slot = &mut self.nodes[node.0];
                if !slot.up {
                    return false;
                }
                slot.up = false;
                slot.epoch += 1;
                let epoch = slot.epoch;
                let now = self.now;
                slot.actor.as_mut().expect("actor present").on_crash(now);
                // Fail-fast: whatever the node had in flight ends here,
                // visibly, rather than leaking as open-forever spans —
                // and the node's volatile guesses orphan with it. The
                // crash files an incident (when the flight recorder is
                // on), through the same path the runtime uses.
                let outcome = self.core.crash_bookkeeping(node, now);
                self.core.record_crash_incident(
                    node,
                    epoch,
                    crate::incident::IncidentKind::ChaosCrash,
                    now,
                    &outcome,
                );
                true
            }
            EventKind::Restart { node } => {
                if self.nodes[node.0].up {
                    return false;
                }
                self.nodes[node.0].up = true;
                // `on_restart` runs with the restart as its cause, so a
                // timer re-armed here (e.g. dynamo's gossip) is causally
                // downstream of the restart — and its absence shows up as
                // a missing link in the slice.
                self.current_cause = self.core.restart_bookkeeping(node, self.now);
                self.with_actor(node, None, |actor, ctx| actor.on_restart(ctx));
                self.current_cause = None;
                true
            }
            EventKind::PartitionGroups { left, right } => {
                self.core.record_trace(self.now, TraceKind::Partition, None, None);
                self.core.record_flight(self.now, FlightKind::Partition, None, None, None, None);
                self.net.partition_groups(&left, &right);
                true
            }
            EventKind::PartitionOneWay { from, to } => {
                self.core.record_trace(self.now, TraceKind::Partition, None, None);
                self.core.record_flight(self.now, FlightKind::Partition, None, None, None, None);
                self.net.partition_groups_oneway(&from, &to);
                true
            }
            EventKind::HealGroups { left, right } => {
                self.core.record_trace(self.now, TraceKind::Heal, None, None);
                self.core.record_flight(self.now, FlightKind::Heal, None, None, None, None);
                self.net.heal_groups(&left, &right);
                true
            }
            EventKind::HealAll => {
                self.core.record_trace(self.now, TraceKind::Heal, None, None);
                self.core.record_flight(self.now, FlightKind::Heal, None, None, None, None);
                self.net.heal_all();
                true
            }
            EventKind::Degrade { a, b, link, until } => {
                let prev_ab = self.net.link_override(a, b);
                let prev_ba = self.net.link_override(b, a);
                self.net.set_link(a, b, link);
                self.core.metrics.inc("sim.degrades");
                self.core.record_trace(self.now, TraceKind::Degrade, Some(a), Some(b));
                self.core.record_flight(
                    self.now,
                    FlightKind::Degrade,
                    Some(a),
                    Some(b),
                    None,
                    None,
                );
                self.push(until, EventKind::RestoreLink { a, b, prev_ab, prev_ba });
                true
            }
            EventKind::RestoreLink { a, b, prev_ab, prev_ba } => {
                match prev_ab {
                    Some(cfg) => self.net.set_link_oneway(a, b, cfg),
                    None => self.net.clear_link_oneway(a, b),
                }
                match prev_ba {
                    Some(cfg) => self.net.set_link_oneway(b, a, cfg),
                    None => self.net.clear_link_oneway(b, a),
                }
                self.core.record_trace(self.now, TraceKind::Heal, Some(a), Some(b));
                self.core.record_flight(self.now, FlightKind::Heal, Some(a), Some(b), None, None);
                true
            }
        }
    }

    /// Run one actor callback with a fresh context (ambient span =
    /// `ambient`), then apply the actions it issued (sends through the
    /// network model, timer arms/cancels).
    fn with_actor(
        &mut self,
        node: NodeId,
        ambient: Option<SpanId>,
        f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>),
    ) {
        let mut actor = self.nodes[node.0]
            .actor
            .take()
            .expect("actor re-entered: actors must not call back into the simulation");
        let cause = self.current_cause;
        let ((), actions) =
            self.core.run_callback(node, self.now, ambient, cause, |ctx| f(actor.as_mut(), ctx));
        self.nodes[node.0].actor = Some(actor);
        for action in actions {
            match action {
                Action::Send { to, msg, span } => {
                    match self.net.plan_delivery(&mut self.core.rng, node, to) {
                        Delivery::Deliver(delays) => {
                            self.core.metrics.inc("sim.messages_sent");
                            for d in delays {
                                // One hop span per physical delivery (so
                                // duplicated messages show as two hops).
                                let hop = self.core.plan_hop(span, to, self.now);
                                self.push(
                                    self.now + d,
                                    EventKind::Deliver {
                                        to,
                                        from: node,
                                        msg: msg.clone(),
                                        hop,
                                        cause,
                                    },
                                );
                            }
                        }
                        Delivery::Dropped => {
                            self.core.drop_send(span, to, self.now);
                        }
                    }
                }
                Action::SetTimer { id, delay, tag, span } => {
                    let epoch = self.nodes[node.0].epoch;
                    self.push(
                        self.now + delay,
                        EventKind::Timer { node, id, tag, epoch, span, cause },
                    );
                }
                Action::CancelTimer { id } => {
                    if self.core.cancel_allowed(node, id) {
                        self.cancelled_timers.insert(id.seq());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// Sends `Ping`s to a peer on start and counts `Pong`s.
    struct Pinger {
        peer: Option<NodeId>,
        pongs: Vec<u32>,
        sent: u32,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            if let Some(peer) = self.peer {
                for i in 0..self.sent {
                    ctx.send(peer, Msg::Ping(i));
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping(i) => ctx.send(from, Msg::Pong(i)),
                Msg::Pong(i) => self.pongs.push(i),
            }
        }
    }

    fn pair(seed: u64, pings: u32) -> (Simulation<Msg>, NodeId, NodeId) {
        let mut sim = Simulation::new(seed);
        let a = sim.add_node(Pinger { peer: None, pongs: vec![], sent: 0 });
        let b = sim.add_node(Pinger { peer: Some(a), pongs: vec![], sent: pings });
        // b pings a; a pongs back.
        (sim, a, b)
    }

    #[test]
    fn messages_round_trip() {
        let (mut sim, _a, b) = pair(1, 5);
        sim.run_until(SimTime::from_secs(1));
        let b_actor: &Pinger = sim.actor(b);
        assert_eq!(b_actor.pongs.len(), 5);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed| {
            let (mut sim, _a, b) = pair(seed, 50);
            sim.run_until(SimTime::from_secs(1));
            sim.actor::<Pinger>(b).pongs.clone()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn crash_drops_messages_and_restart_resumes() {
        let (mut sim, a, b) = pair(2, 0);
        sim.schedule_crash(SimTime::from_micros(10), a);
        sim.run_until(SimTime::from_millis(1));
        assert!(!sim.is_up(a));
        // Send a ping to the crashed node: it must be dropped.
        sim.inject_at(SimTime::from_millis(2), a, b, Msg::Ping(7));
        sim.run_until(SimTime::from_millis(3));
        assert_eq!(sim.metrics().counter("sim.dropped_to_down_node"), 1);
        sim.schedule_restart(SimTime::from_millis(4), a);
        sim.inject_at(SimTime::from_millis(5), a, b, Msg::Ping(8));
        sim.run_until(SimTime::from_millis(10));
        assert!(sim.is_up(a));
        let b_actor: &Pinger = sim.actor(b);
        assert_eq!(b_actor.pongs, vec![8]);
    }

    struct Periodic {
        fired: Vec<u64>,
        crash_noticed: bool,
    }

    impl Actor<Msg> for Periodic {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(10), 1);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
            self.fired.push(ctx.now().as_micros());
            ctx.set_timer(SimDuration::from_millis(10), tag);
        }
        fn on_crash(&mut self, _now: SimTime) {
            self.crash_noticed = true;
        }
        fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.set_timer(SimDuration::from_millis(10), 2);
        }
    }

    #[test]
    fn timers_fire_periodically_when_rearmed() {
        let mut sim: Simulation<Msg> = Simulation::new(3);
        let n = sim.add_node(Periodic { fired: vec![], crash_noticed: false });
        sim.run_until(SimTime::from_millis(55));
        assert_eq!(sim.actor::<Periodic>(n).fired.len(), 5);
    }

    #[test]
    fn timers_do_not_survive_crash_but_restart_rearms() {
        let mut sim: Simulation<Msg> = Simulation::new(4);
        let n = sim.add_node(Periodic { fired: vec![], crash_noticed: false });
        sim.schedule_crash(SimTime::from_millis(25), n);
        sim.schedule_restart(SimTime::from_millis(100), n);
        sim.run_until(SimTime::from_millis(131));
        let actor: &Periodic = sim.actor(n);
        assert!(actor.crash_noticed);
        // Fired at 10, 20 (pre-crash), then 110, 120, 130 (post-restart).
        assert_eq!(actor.fired.len(), 5);
        assert!(actor.fired.iter().all(|&t| t <= 20_000 || t >= 110_000));
    }

    struct Canceller {
        fired: bool,
    }

    impl Actor<Msg> for Canceller {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            let id = ctx.set_timer(SimDuration::from_millis(5), 1);
            ctx.cancel_timer(id);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {
            self.fired = true;
        }
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let n = sim.add_node(Canceller { fired: false });
        sim.run_until(SimTime::from_millis(50));
        assert!(!sim.actor::<Canceller>(n).fired);
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let (mut sim, a, b) = pair(6, 0);
        sim.schedule_partition(SimTime::ZERO, &[a], &[b]);
        sim.inject_at(SimTime::from_millis(1), a, b, Msg::Ping(1));
        sim.run_until(SimTime::from_millis(2));
        // inject_at bypasses the network, so a got the ping; its pong back
        // to b must have been dropped by the partition.
        assert_eq!(sim.metrics().counter("sim.messages_dropped"), 1);
        sim.schedule_heal(SimTime::from_millis(3));
        sim.inject_at(SimTime::from_millis(4), a, b, Msg::Ping(2));
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.actor::<Pinger>(b).pongs, vec![2]);
    }

    #[test]
    fn oneway_partition_blocks_one_direction_only() {
        let (mut sim, a, b) = pair(11, 0);
        sim.schedule_partition_oneway(SimTime::ZERO, &[a], &[b]);
        // b pings a (injected, bypassing the net); a's pong a→b is blocked.
        sim.inject_at(SimTime::from_millis(1), a, b, Msg::Ping(1));
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(sim.metrics().counter("sim.messages_dropped"), 1);
        // The other direction still flows: a pings b (injected), and b's
        // pong b→a is delivered.
        sim.inject_at(SimTime::from_millis(3), b, a, Msg::Ping(2));
        sim.run_until(SimTime::from_millis(5));
        // b ponged a successfully (no new drop).
        assert_eq!(sim.metrics().counter("sim.messages_dropped"), 1);
        sim.schedule_heal_pair(SimTime::from_millis(6), a, b);
        sim.inject_at(SimTime::from_millis(7), a, b, Msg::Ping(3));
        sim.run_until(SimTime::from_millis(9));
        assert_eq!(sim.actor::<Pinger>(b).pongs, vec![3]);
    }

    #[test]
    fn degrade_applies_and_restores_the_previous_link() {
        let (mut sim, a, b) = pair(12, 0);
        let lossy =
            LinkConfig::lossy(SimDuration::from_millis(1), SimDuration::from_millis(1), 1.0);
        sim.schedule_degrade(SimTime::ZERO, a, b, lossy, SimTime::from_millis(10));
        sim.inject_at(SimTime::from_millis(1), a, b, Msg::Ping(1));
        sim.run_until(SimTime::from_millis(5));
        // a's pong was dropped by the degraded (100% loss) link.
        assert_eq!(sim.metrics().counter("sim.messages_dropped"), 1);
        assert_eq!(sim.metrics().counter("sim.degrades"), 1);
        // After `until`, the link reverts to the default (reliable).
        sim.inject_at(SimTime::from_millis(11), a, b, Msg::Ping(2));
        sim.run_until(SimTime::from_millis(15));
        assert_eq!(sim.actor::<Pinger>(b).pongs, vec![2]);
    }

    #[test]
    fn quiescence_time_is_the_last_effectful_event() {
        let (mut sim, _a, b) = pair(13, 3);
        let q = sim.run_until_quiescent(SimTime::from_secs(10));
        // Three pings and three pongs over 1ms reliable links: the last
        // pong lands at 2ms, long before the limit.
        assert_eq!(q, SimTime::from_millis(2));
        assert_eq!(sim.actor::<Pinger>(b).pongs.len(), 3);
    }

    #[test]
    fn dead_timers_on_a_crashed_node_do_not_stall_quiescence() {
        let mut sim: Simulation<Msg> = Simulation::new(14);
        let n = sim.add_node(Periodic { fired: vec![], crash_noticed: false });
        // The periodic timer re-arms every 10ms; crash at 25ms with no
        // restart. The timer armed at 20ms (for 30ms) is dead.
        sim.schedule_crash(SimTime::from_millis(25), n);
        let q = sim.run_until_quiescent(SimTime::from_secs(10));
        assert_eq!(q, SimTime::from_millis(25), "crash is the last effectful event");
        assert_eq!(sim.actor::<Periodic>(n).fired.len(), 2);
    }

    #[test]
    fn clock_advances_to_horizon_even_when_idle() {
        let mut sim: Simulation<Msg> = Simulation::new(7);
        sim.add_node(Pinger { peer: None, pongs: vec![], sent: 0 });
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn trace_records_the_history_when_enabled() {
        let (mut sim, a, _b) = pair(10, 2);
        sim.enable_trace(64);
        sim.schedule_crash(SimTime::from_millis(5), a);
        sim.schedule_restart(SimTime::from_millis(6), a);
        sim.run_until(SimTime::from_millis(10));
        let trace = sim.trace().expect("enabled");
        assert!(trace.total_recorded() > 0);
        let dump = trace.tail(100);
        assert!(dump.contains("deliver"), "{dump}");
        assert!(dump.contains("crash"), "{dump}");
        assert!(dump.contains("restart"), "{dump}");
    }

    #[test]
    fn step_processes_single_events() {
        let (mut sim, _a, _b) = pair(8, 1);
        let mut steps = 0;
        while sim.step() {
            steps += 1;
            assert!(steps < 100, "runaway");
        }
        assert_eq!(steps, 2); // ping delivery + pong delivery
    }
}
