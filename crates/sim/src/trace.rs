//! Bounded event tracing for simulation runs.
//!
//! Debugging a distributed failure scenario means asking "what actually
//! happened, in order?" — which a deterministic simulator can answer
//! exactly. When enabled (see `Simulation::enable_trace`), the simulator
//! records every dispatched event into a bounded ring buffer; tests and
//! harnesses dump the tail when an invariant breaks.
//!
//! Two classes of event share the ring, interleaved in dispatch order:
//!
//! - **Sim events** (deliveries, timers, crashes, partitions) recorded by
//!   the event loop itself.
//! - **App events** recorded by actors via
//!   [`crate::actor::Context::trace_event`]: named, structured
//!   (key/value fields), and stamped with the ambient [`SpanId`] so they
//!   can be joined against the span tree.
//!
//! [`Trace::to_jsonl`] exports the ring as one JSON object per line,
//! byte-identical across same-seed runs.
//!
//! Tracing is off by default and costs nothing when disabled.

use std::collections::VecDeque;
use std::fmt;

use crate::actor::NodeId;
use crate::json;
use crate::span::SpanId;
use crate::time::SimTime;

/// What kind of event was dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was delivered to a node.
    Deliver,
    /// A message addressed to a down node was dropped.
    DropDown,
    /// A timer fired on a node.
    Timer,
    /// A node crashed.
    Crash,
    /// A node restarted.
    Restart,
    /// The network was partitioned.
    Partition,
    /// A link was degraded (latency spike / loss / duplication ramp).
    Degrade,
    /// Partitions healed or a degraded link was restored.
    Heal,
    /// A structured application event (see
    /// [`crate::actor::Context::trace_event`]).
    App,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Deliver => "deliver",
            TraceKind::DropDown => "drop(down)",
            TraceKind::Timer => "timer",
            TraceKind::Crash => "crash",
            TraceKind::Restart => "restart",
            TraceKind::Partition => "partition",
            TraceKind::Degrade => "degrade",
            TraceKind::Heal => "heal",
            TraceKind::App => "app",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it was dispatched.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// The node it happened to (the receiver, for deliveries).
    pub node: Option<NodeId>,
    /// The sender, for deliveries.
    pub from: Option<NodeId>,
    /// The ambient span, for app events.
    pub span: Option<SpanId>,
    /// The event name, for app events (`<crate>.<what-happened>`).
    pub name: Option<String>,
    /// Structured context, for app events.
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// A simulator-originated event (delivery, crash, ...).
    pub fn sim(at: SimTime, kind: TraceKind, node: Option<NodeId>, from: Option<NodeId>) -> Self {
        TraceEvent { at, kind, node, from, span: None, name: None, fields: Vec::new() }
    }

    /// An application event recorded by an actor.
    pub fn app(
        at: SimTime,
        node: NodeId,
        span: Option<SpanId>,
        name: String,
        fields: Vec<(String, String)>,
    ) -> Self {
        TraceEvent {
            at,
            kind: TraceKind::App,
            node: Some(node),
            from: None,
            span,
            name: Some(name),
            fields,
        }
    }

    /// One JSON object describing this event (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"at_us\":{},\"kind\":\"{}\"", self.at.as_micros(), self.kind);
        if let Some(n) = self.node {
            out.push_str(&format!(",\"node\":\"{n}\""));
        }
        if let Some(f) = self.from {
            out.push_str(&format!(",\"from\":\"{f}\""));
        }
        if let Some(s) = self.span {
            out.push_str(&format!(",\"span\":\"{s}\""));
        }
        if let Some(name) = &self.name {
            out.push_str(",\"name\":");
            out.push_str(&json::string(name));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(k));
                out.push(':');
                out.push_str(&json::string(v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.at, self.kind)?;
        if let Some(name) = &self.name {
            write!(f, " {name}")?;
        }
        if let (Some(from), Some(node)) = (self.from, self.node) {
            write!(f, " {from} -> {node}")?;
        } else if let Some(node) = self.node {
            write!(f, " @{node}")?;
        }
        if let Some(span) = self.span {
            write!(f, " [{span}]")?;
        }
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// A bounded ring of recent events.
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total: u64,
}

impl Trace {
    /// A trace keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace { events: VecDeque::with_capacity(capacity.min(4096)), capacity, total: 0 }
    }

    /// Record an event (evicting the oldest when full). Every recorded
    /// event counts toward [`Trace::total_recorded`], whether or not the
    /// ring retains it — a zero-capacity or overflowing ring still
    /// witnesses the run's full event count.
    pub fn record(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events recorded over the run's lifetime (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events recorded but no longer retained (evicted by the ring, or
    /// never stored because the ring has zero capacity).
    pub fn evicted(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the last `n` events, one per line — the thing to print when
    /// an assertion fails. Truncation is explicit: when earlier events
    /// exist but are not shown (skipped by `n` or evicted from the
    /// ring), the first line says how many, so a partial history can
    /// never pass itself off as the whole story.
    pub fn tail(&self, n: usize) -> String {
        let skip = self.events.len().saturating_sub(n);
        let hidden = self.total - (self.events.len() - skip) as u64;
        let mut out = String::new();
        if hidden > 0 {
            out.push_str(&format!(
                "... {hidden} earlier event(s) not shown ({} evicted from the ring)\n",
                self.evicted()
            ));
        }
        for ev in self.events.iter().skip(skip) {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// JSONL export of the retained events, oldest first: one JSON
    /// object per line. Byte-identical across same-seed runs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent::sim(SimTime::from_micros(us), kind, Some(NodeId(1)), None)
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Deliver));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let first = t.events().next().unwrap();
        assert_eq!(first.at, SimTime::from_micros(2));
    }

    #[test]
    fn zero_capacity_retains_nothing_but_still_counts() {
        let mut t = Trace::new(0);
        t.record(ev(1, TraceKind::Crash));
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 1, "evicted events still count");
        assert_eq!(t.evicted(), 1);
    }

    #[test]
    fn tail_renders_most_recent_and_declares_whats_hidden() {
        let mut t = Trace::new(10);
        t.record(ev(1, TraceKind::Deliver));
        t.record(ev(2, TraceKind::Crash));
        let s = t.tail(1);
        assert!(s.contains("crash"), "{s}");
        assert!(!s.contains("deliver"), "{s}");
        assert!(s.starts_with("... 1 earlier event(s) not shown"), "{s}");
        // Nothing hidden -> no truncation banner.
        assert!(!t.tail(10).contains("not shown"), "{}", t.tail(10));
    }

    #[test]
    fn tail_reports_evictions() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Deliver));
        }
        let s = t.tail(10);
        assert!(s.starts_with("... 3 earlier event(s) not shown (3 evicted from the ring)"), "{s}");
    }

    #[test]
    fn display_formats_senders() {
        let e = TraceEvent::sim(
            SimTime::from_micros(5),
            TraceKind::Deliver,
            Some(NodeId(2)),
            Some(NodeId(1)),
        );
        assert_eq!(e.to_string(), "t=5us deliver n1 -> n2");
    }

    #[test]
    fn app_events_carry_structure() {
        let e = TraceEvent::app(
            SimTime::from_micros(9),
            NodeId(3),
            Some(SpanId(4)),
            "cart.retry".to_owned(),
            vec![("attempt".to_owned(), "2".to_owned())],
        );
        let s = e.to_string();
        assert!(s.contains("cart.retry") && s.contains("[S4]") && s.contains("attempt=2"), "{s}");
        let j = e.to_json();
        assert!(j.contains("\"name\":\"cart.retry\""), "{j}");
        assert!(j.contains("\"fields\":{\"attempt\":\"2\"}"), "{j}");
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut t = Trace::new(10);
        t.record(ev(1, TraceKind::Deliver));
        t.record(ev(2, TraceKind::Heal));
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
