//! Bounded event tracing for simulation runs.
//!
//! Debugging a distributed failure scenario means asking "what actually
//! happened, in order?" — which a deterministic simulator can answer
//! exactly. When enabled (see `Simulation::enable_trace`), the simulator
//! records every dispatched event into a bounded ring buffer; tests and
//! harnesses dump the tail when an invariant breaks.
//!
//! Tracing is off by default and costs nothing when disabled.

use std::collections::VecDeque;
use std::fmt;

use crate::actor::NodeId;
use crate::time::SimTime;

/// What kind of event was dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was delivered to a node.
    Deliver,
    /// A message addressed to a down node was dropped.
    DropDown,
    /// A timer fired on a node.
    Timer,
    /// A node crashed.
    Crash,
    /// A node restarted.
    Restart,
    /// The network was partitioned.
    Partition,
    /// All partitions healed.
    Heal,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Deliver => "deliver",
            TraceKind::DropDown => "drop(down)",
            TraceKind::Timer => "timer",
            TraceKind::Crash => "crash",
            TraceKind::Restart => "restart",
            TraceKind::Partition => "partition",
            TraceKind::Heal => "heal",
        };
        f.write_str(s)
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// When it was dispatched.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
    /// The node it happened to (the receiver, for deliveries).
    pub node: Option<NodeId>,
    /// The sender, for deliveries.
    pub from: Option<NodeId>,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.at, self.kind)?;
        if let (Some(from), Some(node)) = (self.from, self.node) {
            write!(f, " {from} -> {node}")?;
        } else if let Some(node) = self.node {
            write!(f, " @{node}")?;
        }
        Ok(())
    }
}

/// A bounded ring of recent events.
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    total: u64,
}

impl Trace {
    /// A trace keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace { events: VecDeque::with_capacity(capacity.min(4096)), capacity, total: 0 }
    }

    /// Record an event (evicting the oldest when full).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.total += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events recorded over the run's lifetime (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the last `n` events, one per line — the thing to print when
    /// an assertion fails.
    pub fn tail(&self, n: usize) -> String {
        let skip = self.events.len().saturating_sub(n);
        let mut out = String::new();
        for ev in self.events.iter().skip(skip) {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_micros(us), kind, node: Some(NodeId(1)), from: None }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(ev(i, TraceKind::Deliver));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        let first = t.events().next().unwrap();
        assert_eq!(first.at, SimTime::from_micros(2));
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::new(0);
        t.record(ev(1, TraceKind::Crash));
        assert!(t.is_empty());
        assert_eq!(t.total_recorded(), 0);
    }

    #[test]
    fn tail_renders_most_recent() {
        let mut t = Trace::new(10);
        t.record(ev(1, TraceKind::Deliver));
        t.record(ev(2, TraceKind::Crash));
        let s = t.tail(1);
        assert!(s.contains("crash"), "{s}");
        assert!(!s.contains("deliver"), "{s}");
    }

    #[test]
    fn display_formats_senders() {
        let e = TraceEvent {
            at: SimTime::from_micros(5),
            kind: TraceKind::Deliver,
            node: Some(NodeId(2)),
            from: Some(NodeId(1)),
        };
        assert_eq!(e.to_string(), "t=5us deliver n1 -> n2");
    }
}
