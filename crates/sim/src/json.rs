//! Tiny hand-rolled JSON emission helpers (the workspace builds
//! offline, so no serde). Only what the exporters need: escaped strings
//! and canonical float formatting.

/// Render `s` as a JSON string literal (with quotes).
pub(crate) fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float the way JSON expects (no NaN/inf; those become null).
pub(crate) fn float(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing noise while staying round-trippable enough for
        // report tables.
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("ctrl\u{1}"), "\"ctrl\\u0001\"");
    }

    #[test]
    fn floats_are_json_safe() {
        assert_eq!(float(1.5), "1.5");
        assert_eq!(float(2.0), "2.0");
        assert_eq!(float(f64::NAN), "null");
    }
}
