//! Seed-swept chaos testing: declarative fault plans, invariant
//! checkers, and failing-schedule shrinking.
//!
//! *Building on Quicksand* argues that the interesting properties of a
//! replicated system are the ones that hold under **arbitrary** bad luck
//! — crashes mid-transaction, asymmetric partitions, lossy degraded
//! links — not just the two or three failures a test author thought of.
//! This module turns that discipline into machinery, in the style of
//! FoundationDB's deterministic simulation testing:
//!
//! - A [`FaultPlan`] is a declarative timeline of fault clauses
//!   (partition + heal, crash + restart, degrade + restore) that can be
//!   applied to any [`Simulation`]. Plans are either hand-written or
//!   generated from a seed by [`FaultPlan::generate`] under the
//!   constraints of a [`FaultSpec`]. Generated plans always heal: every
//!   partition ends, every crashed node restarts, every degraded link is
//!   restored by the spec's window end — so liveness invariants
//!   (convergence, all-acked) are meaningful.
//! - An [`Invariant`] is a named predicate over a harness report —
//!   "no acked edit lost", "replicas converged", "escrow never
//!   over-committed", "books balanced", "no leaked open spans".
//! - A [`ChaosRun`] sweeps seeds: for each seed it generates a plan,
//!   runs the scenario, and checks every invariant. When a seed fails,
//!   the driver **shrinks** the fault schedule — first bisecting halves
//!   away, then removing clauses one at a time — until it has a
//!   1-minimal reproducing plan, reported with its seed in the
//!   [`ChaosReport`].
//!
//! Everything here is deterministic: the same seed and spec produce the
//! same plan, the same run, the same report JSON, byte for byte.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

use rand::Rng;

use crate::actor::NodeId;
use crate::explain::Explanation;
use crate::json;
use crate::ledger::LedgerAccounting;
use crate::net::LinkConfig;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::world::Simulation;

/// Mix a raw sweep index into a full-entropy RNG seed (splitmix64
/// finalizer). Unlike a bare `wrapping_mul` by an odd constant — which
/// maps 0 to 0 and preserves low-bit structure — every input, including
/// 0, yields a distinct, well-scrambled stream.
pub fn mix_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One atomic fault clause. Each clause carries its own end: the heal,
/// restart, or restore is part of the clause, so removing a clause
/// during shrinking never leaves the world broken forever.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Two-sided group partition from `at` until `until`.
    Partition {
        /// When the partition starts.
        at: SimTime,
        /// When the partition heals.
        until: SimTime,
        /// One side of the split.
        left: Vec<NodeId>,
        /// The other side.
        right: Vec<NodeId>,
    },
    /// Asymmetric partition: `from → to` traffic is dropped from `at`
    /// until `until`; the reverse direction keeps flowing.
    PartitionOneWay {
        /// When the one-way block starts.
        at: SimTime,
        /// When it heals.
        until: SimTime,
        /// Senders whose messages are dropped.
        from: Vec<NodeId>,
        /// Receivers they cannot reach.
        to: Vec<NodeId>,
    },
    /// Fail-fast crash of `node` at `at`, optionally restarting later.
    Crash {
        /// When the node crashes.
        at: SimTime,
        /// The node that crashes.
        node: NodeId,
        /// When it restarts (`None` = stays down).
        restart_at: Option<SimTime>,
    },
    /// Degrade the `a ↔ b` link (latency spike, loss, duplication) from
    /// `at` until `until`, then restore the previous configuration.
    Degrade {
        /// When the degradation starts.
        at: SimTime,
        /// When the link is restored.
        until: SimTime,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The degraded link characteristics.
        link: LinkConfig,
    },
}

impl Fault {
    /// When the fault takes effect.
    pub fn at(&self) -> SimTime {
        match self {
            Fault::Partition { at, .. }
            | Fault::PartitionOneWay { at, .. }
            | Fault::Crash { at, .. }
            | Fault::Degrade { at, .. } => *at,
        }
    }

    /// When the fault is fully undone (healed / restarted / restored).
    /// A crash with no restart ends at its crash time: nothing further
    /// will happen on its account.
    pub fn ends_at(&self) -> SimTime {
        match self {
            Fault::Partition { until, .. }
            | Fault::PartitionOneWay { until, .. }
            | Fault::Degrade { until, .. } => *until,
            Fault::Crash { at, restart_at, .. } => restart_at.unwrap_or(*at),
        }
    }

    /// A short stable label for the clause kind (used in report JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Partition { .. } => "partition",
            Fault::PartitionOneWay { .. } => "partition_oneway",
            Fault::Crash { .. } => "crash",
            Fault::Degrade { .. } => "degrade",
        }
    }

    /// One JSON object describing this clause.
    pub fn to_json(&self) -> String {
        fn nodes(v: &[NodeId]) -> String {
            let mut out = String::from("[");
            for (i, n) in v.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(&n.to_string()));
            }
            out.push(']');
            out
        }
        match self {
            Fault::Partition { at, until, left, right } => format!(
                "{{\"kind\":\"partition\",\"at_us\":{},\"until_us\":{},\"left\":{},\"right\":{}}}",
                at.as_micros(),
                until.as_micros(),
                nodes(left),
                nodes(right)
            ),
            Fault::PartitionOneWay { at, until, from, to } => format!(
                "{{\"kind\":\"partition_oneway\",\"at_us\":{},\"until_us\":{},\"from\":{},\"to\":{}}}",
                at.as_micros(),
                until.as_micros(),
                nodes(from),
                nodes(to)
            ),
            Fault::Crash { at, node, restart_at } => format!(
                "{{\"kind\":\"crash\",\"at_us\":{},\"node\":{},\"restart_at_us\":{}}}",
                at.as_micros(),
                json::string(&node.to_string()),
                restart_at.map_or("null".to_owned(), |r| r.as_micros().to_string())
            ),
            Fault::Degrade { at, until, a, b, link } => format!(
                "{{\"kind\":\"degrade\",\"at_us\":{},\"until_us\":{},\"a\":{},\"b\":{},\
                 \"latency_us\":[{},{}],\"drop_prob\":{},\"duplicate_prob\":{}}}",
                at.as_micros(),
                until.as_micros(),
                json::string(&a.to_string()),
                json::string(&b.to_string()),
                link.latency_min.as_micros(),
                link.latency_max.as_micros(),
                json::float(link.drop_prob),
                json::float(link.duplicate_prob)
            ),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn group(v: &[NodeId]) -> String {
            v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ")
        }
        match self {
            Fault::Partition { at, until, left, right } => {
                write!(f, "partition[{} | {}] {at}..{until}", group(left), group(right))
            }
            Fault::PartitionOneWay { at, until, from, to } => {
                write!(f, "oneway[{} -> {}] {at}..{until}", group(from), group(to))
            }
            Fault::Crash { at, node, restart_at } => match restart_at {
                Some(r) => write!(f, "crash[{node}] {at}..{r}"),
                None => write!(f, "crash[{node}] {at}.. (no restart)"),
            },
            Fault::Degrade { at, until, a, b, link } => write!(
                f,
                "degrade[{a} ~ {b}] {at}..{until} (lat {}..{}, drop {:.2}, dup {:.2})",
                link.latency_min, link.latency_max, link.drop_prob, link.duplicate_prob
            ),
        }
    }
}

/// A declarative timeline of fault clauses, applied to a simulation
/// before it runs. The empty plan is a valid (fault-free) plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The clauses, in onset order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty, fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan holding exactly the given clauses (sorted by onset).
    pub fn from_faults(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| (f.at(), f.ends_at()));
        FaultPlan { faults }
    }

    /// Convenience: a single two-sided partition window — the shape the
    /// old bespoke `partition: Option<(SimTime, SimTime)>` knobs encoded.
    pub fn partition_window(
        at: SimTime,
        until: SimTime,
        left: &[NodeId],
        right: &[NodeId],
    ) -> Self {
        FaultPlan {
            faults: vec![Fault::Partition {
                at,
                until,
                left: left.to_vec(),
                right: right.to_vec(),
            }],
        }
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The time by which every clause has been undone — the earliest
    /// horizon at which it is fair to check convergence invariants.
    pub fn ends_by(&self) -> SimTime {
        self.faults.iter().map(Fault::ends_at).max().unwrap_or(SimTime::ZERO)
    }

    /// Generate a plan from `seed` under `spec`'s constraints. The same
    /// `(seed, spec)` always yields the same plan. Generated clauses all
    /// end by `spec.window.1`.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SimRng::new(mix_seed(seed));
        let kinds = spec.enabled_kinds();
        if kinds.is_empty() {
            return FaultPlan::none();
        }
        let hi = spec.max_faults.max(spec.min_faults).max(1);
        let lo = spec.min_faults.clamp(1, hi);
        let n = rng.gen_range(lo..=hi);
        let w0 = spec.window.0.as_micros();
        let w1 = spec.window.1.as_micros();
        assert!(w1 > w0 + 1, "FaultSpec window must be non-trivial");
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let at_us = rng.gen_range(w0..w1 - 1);
            let until_us = rng.gen_range(at_us + 1..w1);
            let at = SimTime::from_micros(at_us);
            let until = SimTime::from_micros(until_us);
            match kind {
                FaultKind::Partition | FaultKind::OneWay => {
                    let (left, right) = split_groups(&mut rng, &spec.nodes);
                    if kind == FaultKind::Partition {
                        faults.push(Fault::Partition { at, until, left, right });
                    } else {
                        faults.push(Fault::PartitionOneWay { at, until, from: left, to: right });
                    }
                }
                FaultKind::Crash => {
                    let node = spec.crashable[rng.gen_range(0..spec.crashable.len())];
                    faults.push(Fault::Crash { at, node, restart_at: Some(until) });
                }
                FaultKind::Degrade => {
                    let a_ix = rng.gen_range(0..spec.nodes.len());
                    let mut b_ix = rng.gen_range(0..spec.nodes.len() - 1);
                    if b_ix >= a_ix {
                        b_ix += 1;
                    }
                    let extra = rng.gen_range(0..=spec.max_extra_latency.as_micros());
                    let link = LinkConfig {
                        latency_min: SimDuration::from_millis(1),
                        latency_max: SimDuration::from_millis(1) + SimDuration::from_micros(extra),
                        drop_prob: rng.gen_range(0.0..=spec.max_drop_prob),
                        duplicate_prob: rng.gen_range(0.0..=spec.max_dup_prob),
                    };
                    faults.push(Fault::Degrade {
                        at,
                        until,
                        a: spec.nodes[a_ix],
                        b: spec.nodes[b_ix],
                        link,
                    });
                }
            }
        }
        FaultPlan::from_faults(faults)
    }

    /// Schedule every clause onto `sim`. Call before the first `run_*`.
    pub fn apply<M: Clone + 'static>(&self, sim: &mut Simulation<M>) {
        for f in &self.faults {
            match f {
                Fault::Partition { at, until, left, right } => {
                    sim.schedule_partition(*at, left, right);
                    sim.schedule_heal_groups(*until, left, right);
                }
                Fault::PartitionOneWay { at, until, from, to } => {
                    sim.schedule_partition_oneway(*at, from, to);
                    sim.schedule_heal_groups(*until, from, to);
                }
                Fault::Crash { at, node, restart_at } => {
                    sim.schedule_crash(*at, *node);
                    if let Some(r) = restart_at {
                        sim.schedule_restart(*r, *node);
                    }
                }
                Fault::Degrade { at, until, a, b, link } => {
                    sim.schedule_degrade(*at, *a, *b, *link, *until);
                }
            }
        }
    }

    /// The clauses as a JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        out.push(']');
        out
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "(no faults)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// Split `nodes` into two non-empty groups, driven by `rng`.
fn split_groups(rng: &mut SimRng, nodes: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    assert!(nodes.len() >= 2, "need at least two nodes to partition");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &n in nodes {
        if rng.gen_bool(0.5) {
            left.push(n);
        } else {
            right.push(n);
        }
    }
    if left.is_empty() {
        left.push(right.pop().expect("nodes non-empty"));
    } else if right.is_empty() {
        right.push(left.pop().expect("nodes non-empty"));
    }
    (left, right)
}

/// Which fault classes a generated plan may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Partition,
    OneWay,
    Crash,
    Degrade,
}

/// Constraints for [`FaultPlan::generate`]: which nodes participate,
/// which may crash, the time window faults live in, and how many clauses
/// a plan may hold. Substrates disable fault classes their protocol
/// assumptions exclude (e.g. tandem's reliable local bus admits crashes
/// but not partitions).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Nodes that participate in partitions and degrades.
    pub nodes: Vec<NodeId>,
    /// Nodes that may crash (typically servers, not workload drivers).
    pub crashable: Vec<NodeId>,
    /// Fault onsets fall inside this window; every clause ends by
    /// `window.1`.
    pub window: (SimTime, SimTime),
    /// Minimum clauses per plan (≥ 1).
    pub min_faults: usize,
    /// Maximum clauses per plan.
    pub max_faults: usize,
    /// Allow two-sided group partitions.
    pub partitions: bool,
    /// Allow one-way (asymmetric) partitions.
    pub oneway: bool,
    /// Allow crash/restart clauses.
    pub crashes: bool,
    /// Allow link degradation clauses.
    pub degrades: bool,
    /// Upper bound on the extra latency a degrade may add.
    pub max_extra_latency: SimDuration,
    /// Upper bound on a degraded link's drop probability.
    pub max_drop_prob: f64,
    /// Upper bound on a degraded link's duplication probability.
    pub max_dup_prob: f64,
}

impl FaultSpec {
    /// A spec over `nodes` with every fault class enabled, all nodes
    /// crashable, faults within `[10ms, 5s]`, and 1–5 clauses per plan.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        FaultSpec {
            crashable: nodes.clone(),
            nodes,
            window: (SimTime::from_millis(10), SimTime::from_secs(5)),
            min_faults: 1,
            max_faults: 5,
            partitions: true,
            oneway: true,
            crashes: true,
            degrades: true,
            max_extra_latency: SimDuration::from_millis(200),
            max_drop_prob: 0.3,
            max_dup_prob: 0.2,
        }
    }

    /// Restrict which nodes may crash (empty disables crash clauses).
    pub fn crashable(mut self, nodes: Vec<NodeId>) -> Self {
        self.crashable = nodes;
        self
    }

    /// Set the fault window.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.window = (start, end);
        self
    }

    /// Set the clause-count range.
    pub fn faults(mut self, min: usize, max: usize) -> Self {
        self.min_faults = min;
        self.max_faults = max;
        self
    }

    /// Enable/disable two-sided partitions.
    pub fn partitions(mut self, on: bool) -> Self {
        self.partitions = on;
        self
    }

    /// Enable/disable one-way partitions.
    pub fn oneway(mut self, on: bool) -> Self {
        self.oneway = on;
        self
    }

    /// Enable/disable crash clauses.
    pub fn crashes(mut self, on: bool) -> Self {
        self.crashes = on;
        self
    }

    /// Enable/disable degrade clauses.
    pub fn degrades(mut self, on: bool) -> Self {
        self.degrades = on;
        self
    }

    fn enabled_kinds(&self) -> Vec<FaultKind> {
        let mut kinds = Vec::new();
        if self.partitions && self.nodes.len() >= 2 {
            kinds.push(FaultKind::Partition);
        }
        if self.oneway && self.nodes.len() >= 2 {
            kinds.push(FaultKind::OneWay);
        }
        if self.crashes && !self.crashable.is_empty() {
            kinds.push(FaultKind::Crash);
        }
        if self.degrades && self.nodes.len() >= 2 {
            kinds.push(FaultKind::Degrade);
        }
        kinds
    }
}

/// One invariant violation: which invariant, and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant's name.
    pub invariant: String,
    /// What went wrong, in the invariant's own words.
    pub detail: String,
}

impl Violation {
    fn to_json(&self) -> String {
        format!(
            "{{\"invariant\":{},\"detail\":{}}}",
            json::string(&self.invariant),
            json::string(&self.detail)
        )
    }
}

/// A named predicate over a scenario report. `Ok(())` means the
/// invariant held; `Err(detail)` describes the violation.
pub trait Invariant<R> {
    /// The invariant's stable name (used in reports).
    fn name(&self) -> &str;
    /// Check the invariant against one run's report.
    fn check(&self, report: &R) -> Result<(), String>;
}

struct FnInvariant<R> {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&R) -> Result<(), String>>,
}

impl<R> Invariant<R> for FnInvariant<R> {
    fn name(&self) -> &str {
        &self.name
    }
    fn check(&self, report: &R) -> Result<(), String> {
        (self.f)(report)
    }
}

/// Build an invariant from a name and a closure.
pub fn invariant<R: 'static>(
    name: impl Into<String>,
    f: impl Fn(&R) -> Result<(), String> + 'static,
) -> Box<dyn Invariant<R>> {
    Box::new(FnInvariant { name: name.into(), f: Box::new(f) })
}

/// A failing seed, shrunk: the minimal reproducing plan found by clause
/// removal, plus what the minimal run still violates.
#[derive(Debug)]
pub struct Shrunk {
    /// The failing sweep seed.
    pub seed: u64,
    /// The 1-minimal reproducing plan (may be empty if the scenario
    /// fails even without faults).
    pub plan: FaultPlan,
    /// Violations observed when running the minimal plan.
    pub violations: Vec<Violation>,
    /// Clause count of the original (pre-shrink) plan.
    pub original_len: usize,
    /// Scenario executions the shrinker spent.
    pub runs: usize,
    /// The forensic explanation of the failure (the causal slice behind
    /// the *original* failing plan), when the run has an explainer.
    pub explanation: Option<Explanation>,
}

impl Shrunk {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seed\":{},\"original_faults\":{},\"shrunk_faults\":{},\"shrink_runs\":{},\"plan\":{}",
            self.seed,
            self.original_len,
            self.plan.len(),
            self.runs,
            self.plan.to_json()
        );
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_json());
        }
        out.push(']');
        if let Some(e) = &self.explanation {
            out.push_str(&format!(
                ",\"explanation\":{{\"target\":{},\"slice_events\":{},\"total_recorded\":{},\
                 \"truncated\":{}}}",
                e.slice.target.0,
                e.slice.events.len(),
                e.slice.total_recorded,
                e.slice.truncated
            ));
        }
        out.push('}');
        out
    }
}

/// The outcome of a seed sweep: totals, per-kind fault counts, and every
/// failure with its shrunk reproducing plan. `to_json` is deterministic
/// — same sweep, same bytes.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Seeds executed.
    pub seeds_swept: u64,
    /// Faults injected across all generated plans, by clause kind.
    pub faults_injected: BTreeMap<String, u64>,
    /// Names of the invariants that were checked.
    pub invariants: Vec<String>,
    /// Failing seeds, each shrunk to a minimal plan.
    pub failures: Vec<Shrunk>,
    /// Total scenario executions spent shrinking.
    pub shrink_runs: u64,
    /// Guess/apology accounting aggregated across every swept seed
    /// (empty unless the run has a ledger accessor — see
    /// [`ChaosRun::with_ledger`]).
    pub ledger: LedgerAccounting,
}

impl ChaosReport {
    /// True when every seed satisfied every invariant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Deterministic JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seeds_swept\":{}", self.seeds_swept);
        out.push_str(",\"faults_injected\":{");
        for (i, (k, v)) in self.faults_injected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::string(k), v));
        }
        out.push_str("},\"invariants\":[");
        for (i, name) in self.invariants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(name));
        }
        out.push_str(&format!(
            "],\"failures\":{},\"shrink_runs\":{},\"failing\":[",
            self.failures.len(),
            self.shrink_runs
        ));
        for (i, s) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str(&format!("],\"ledger\":{}}}", self.ledger.to_json()));
        out
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos: {} seeds, {} failures ({} shrink runs)",
            self.seeds_swept,
            self.failures.len(),
            self.shrink_runs
        )?;
        for (k, v) in &self.faults_injected {
            writeln!(f, "  injected {k}: {v}")?;
        }
        if self.ledger.opened() > 0 {
            write!(f, "  {}", self.ledger)?;
        }
        for s in &self.failures {
            writeln!(
                f,
                "  seed {} FAILED ({} -> {} clauses): {}",
                s.seed,
                s.original_len,
                s.plan.len(),
                s.violations.iter().map(|v| v.invariant.as_str()).collect::<Vec<_>>().join(", ")
            )?;
            for clause in &s.plan.faults {
                writeln!(f, "    {clause}")?;
            }
        }
        Ok(())
    }
}

/// The sweep driver: a fault spec, a scenario under test, and the
/// invariants its reports must satisfy.
///
/// The scenario closure receives the generated (or shrunk candidate)
/// plan and the sweep seed; it must build a **fresh** simulation, apply
/// the plan, run, and return its report. Determinism of the scenario is
/// what makes shrinking sound: re-running the same `(plan, seed)` must
/// reproduce the same report.
pub struct ChaosRun<R> {
    spec: FaultSpec,
    #[allow(clippy::type_complexity)]
    scenario: Box<dyn Fn(&FaultPlan, u64) -> R>,
    invariants: Vec<Box<dyn Invariant<R>>>,
    max_shrink_runs: usize,
    #[allow(clippy::type_complexity)]
    explainer: Option<Box<dyn Fn(&FaultPlan, u64) -> Option<Explanation>>>,
    artifact_dir: Option<PathBuf>,
    #[allow(clippy::type_complexity)]
    ledger_of: Option<Box<dyn Fn(&R) -> LedgerAccounting>>,
}

impl<R: 'static> ChaosRun<R> {
    /// A driver for `scenario` under `spec`.
    pub fn new(spec: FaultSpec, scenario: impl Fn(&FaultPlan, u64) -> R + 'static) -> Self {
        ChaosRun {
            spec,
            scenario: Box::new(scenario),
            invariants: Vec::new(),
            max_shrink_runs: 256,
            explainer: None,
            artifact_dir: None,
            ledger_of: None,
        }
    }

    /// Attach a forensic explainer: a closure that **re-runs** the given
    /// `(plan, seed)` with the flight recorder enabled and extracts the
    /// causal slice behind the most interesting event (typically the last
    /// unresolved guess, falling back to the last event). Sweep runs stay
    /// cheap — the explainer only executes for failing seeds.
    pub fn with_explainer(
        mut self,
        f: impl Fn(&FaultPlan, u64) -> Option<Explanation> + 'static,
    ) -> Self {
        self.explainer = Some(Box::new(f));
        self
    }

    /// Write `explain-<seed>.txt` / `explain-<seed>.json` artifacts for
    /// every failing seed into `dir` (created on demand). Requires an
    /// explainer.
    pub fn artifacts_into(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Attach a ledger accessor: how to pull a [`LedgerAccounting`] out
    /// of one run's report. The sweep merges every seed's accounting
    /// into [`ChaosReport::ledger`].
    pub fn with_ledger(mut self, f: impl Fn(&R) -> LedgerAccounting + 'static) -> Self {
        self.ledger_of = Some(Box::new(f));
        self
    }

    /// Re-run one seed through the explainer without sweeping: generate
    /// its plan, run the scenario to learn what (if anything) it
    /// violates, and extract the causal slice. Returns `None` when no
    /// explainer is attached or the explainer found nothing to target.
    pub fn explain_seed(&self, seed: u64) -> Option<Explanation> {
        let explainer = self.explainer.as_ref()?;
        let (plan, _report, violations) = self.run_seed(seed);
        let names = violations.into_iter().map(|v| v.invariant).collect();
        explainer(&plan, seed).map(|e| e.with_violations(names))
    }

    /// Write one explanation's artifact pair into `dir`. Returns the
    /// paths written. Public so bench bins can emit artifacts for
    /// `--explain <seed>` runs outside a sweep.
    pub fn write_artifacts(
        dir: &std::path::Path,
        e: &Explanation,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let txt = dir.join(format!("explain-{}.txt", e.seed));
        let json = dir.join(format!("explain-{}.json", e.seed));
        std::fs::write(&txt, e.render_text())?;
        std::fs::write(&json, e.to_json())?;
        Ok((txt, json))
    }

    /// Add a boxed invariant.
    pub fn with_invariant(mut self, inv: Box<dyn Invariant<R>>) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Add an invariant from a name and closure.
    pub fn invariant(
        self,
        name: impl Into<String>,
        f: impl Fn(&R) -> Result<(), String> + 'static,
    ) -> Self {
        self.with_invariant(invariant(name, f))
    }

    /// Cap the scenario executions one shrink may spend (default 256).
    pub fn max_shrink_runs(mut self, n: usize) -> Self {
        self.max_shrink_runs = n;
        self
    }

    /// The spec this driver generates plans from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Check every invariant against one report.
    pub fn check(&self, report: &R) -> Vec<Violation> {
        let mut out = Vec::new();
        for inv in &self.invariants {
            if let Err(detail) = inv.check(report) {
                out.push(Violation { invariant: inv.name().to_owned(), detail });
            }
        }
        out
    }

    /// Generate the plan for `seed`, run it, and check invariants.
    pub fn run_seed(&self, seed: u64) -> (FaultPlan, R, Vec<Violation>) {
        let plan = FaultPlan::generate(seed, &self.spec);
        let report = (self.scenario)(&plan, seed);
        let violations = self.check(&report);
        (plan, report, violations)
    }

    /// Sweep the given seeds; shrink every failure to a minimal plan.
    pub fn sweep(&self, seeds: impl IntoIterator<Item = u64>) -> ChaosReport {
        let mut report = ChaosReport {
            invariants: self.invariants.iter().map(|i| i.name().to_owned()).collect(),
            ..ChaosReport::default()
        };
        for seed in seeds {
            let (plan, run_report, violations) = self.run_seed(seed);
            for f in &plan.faults {
                *report.faults_injected.entry(f.kind().to_owned()).or_insert(0) += 1;
            }
            report.seeds_swept += 1;
            if let Some(ledger_of) = &self.ledger_of {
                report.ledger.merge(&ledger_of(&run_report));
            }
            if !violations.is_empty() {
                // Explain the failure before shrinking mutates the plan:
                // the causal slice belongs to the run that actually
                // failed, not to a shrunk candidate.
                let explanation = self.explainer.as_ref().and_then(|explainer| {
                    let names = violations.iter().map(|v| v.invariant.clone()).collect();
                    explainer(&plan, seed).map(|e| e.with_violations(names))
                });
                if let (Some(dir), Some(e)) = (&self.artifact_dir, &explanation) {
                    if let Err(err) = Self::write_artifacts(dir, e) {
                        eprintln!(
                            "chaos: failed to write explain artifacts for seed {seed}: {err}"
                        );
                    }
                }
                let mut shrunk = self.shrink(seed, &plan);
                shrunk.explanation = explanation;
                report.shrink_runs += shrunk.runs as u64;
                report.failures.push(shrunk);
            }
        }
        report
    }

    /// Shrink a failing `(seed, plan)` to a 1-minimal reproducing plan:
    /// first try to discard entire halves of the schedule (bisection),
    /// then remove clauses one at a time until no single removal still
    /// reproduces a violation. Because every clause is atomic (its heal
    /// or restart travels with it), every candidate plan is well-formed.
    pub fn shrink(&self, seed: u64, plan: &FaultPlan) -> Shrunk {
        let mut runs = 0usize;
        let mut current = plan.clone();
        let mut violations = {
            runs += 1;
            let r = (self.scenario)(&current, seed);
            self.check(&r)
        };
        if violations.is_empty() {
            // Not reproducible — report the original plan unshrunk.
            return Shrunk {
                seed,
                plan: current,
                violations,
                original_len: plan.len(),
                runs,
                explanation: None,
            };
        }
        // Phase 1: bisection — drop whole halves while that still fails.
        while current.len() > 1 && runs < self.max_shrink_runs {
            let mid = current.len() / 2;
            let mut reduced = false;
            for range in [0..mid, mid..current.len()] {
                let mut cand = current.clone();
                cand.faults.drain(range);
                runs += 1;
                let r = (self.scenario)(&cand, seed);
                let v = self.check(&r);
                if !v.is_empty() {
                    current = cand;
                    violations = v;
                    reduced = true;
                    break;
                }
                if runs >= self.max_shrink_runs {
                    break;
                }
            }
            if !reduced {
                break;
            }
        }
        // Phase 2: greedy removal to 1-minimality (including the empty
        // plan: if the scenario fails with no faults at all, say so).
        'outer: loop {
            for i in 0..current.len() {
                if runs >= self.max_shrink_runs {
                    break 'outer;
                }
                let mut cand = current.clone();
                cand.faults.remove(i);
                runs += 1;
                let r = (self.scenario)(&cand, seed);
                let v = self.check(&r);
                if !v.is_empty() {
                    current = cand;
                    violations = v;
                    continue 'outer;
                }
            }
            break;
        }
        Shrunk {
            seed,
            plan: current,
            violations,
            original_len: plan.len(),
            runs,
            explanation: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn mix_seed_gives_zero_a_distinct_stream() {
        assert_ne!(mix_seed(0), 0);
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000u64 {
            assert!(seen.insert(mix_seed(s)), "collision at {s}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_respects_the_spec() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2), n(3)]);
        for seed in 0..200 {
            let a = FaultPlan::generate(seed, &spec);
            let b = FaultPlan::generate(seed, &spec);
            assert_eq!(a, b, "same seed, same plan");
            assert!(!a.is_empty() && a.len() <= spec.max_faults);
            for f in &a.faults {
                assert!(f.at() >= spec.window.0);
                assert!(f.ends_at() <= spec.window.1, "clauses end inside the window");
                assert!(f.ends_at() >= f.at());
            }
            assert!(a.ends_by() <= spec.window.1);
        }
    }

    #[test]
    fn adjacent_seeds_differ() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]);
        let distinct = (0..50)
            .map(|s| FaultPlan::generate(s, &spec))
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        assert!(distinct >= 45, "only {distinct}/49 adjacent pairs differ");
    }

    #[test]
    fn disabled_kinds_never_appear() {
        let spec =
            FaultSpec::new(vec![n(0), n(1), n(2)]).partitions(false).oneway(false).degrades(false);
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &spec);
            assert!(plan.faults.iter().all(|f| f.kind() == "crash"), "{plan}");
        }
    }

    #[test]
    fn crashable_list_restricts_crash_targets() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]).crashable(vec![n(2)]);
        for seed in 0..50 {
            for f in FaultPlan::generate(seed, &spec).faults {
                if let Fault::Crash { node, .. } = f {
                    assert_eq!(node, n(2));
                }
            }
        }
    }

    #[test]
    fn plan_json_is_deterministic() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]);
        let plan = FaultPlan::generate(7, &spec);
        assert_eq!(plan.to_json(), FaultPlan::generate(7, &spec).to_json());
        assert!(plan.to_json().starts_with('['));
    }

    /// A fake "report" for driver tests: the plan's clause kinds.
    fn kinds_scenario(plan: &FaultPlan, _seed: u64) -> Vec<&'static str> {
        plan.faults.iter().map(Fault::kind).collect()
    }

    #[test]
    fn sweep_passes_when_invariants_hold() {
        let spec = FaultSpec::new(vec![n(0), n(1)]);
        let run = ChaosRun::new(spec, kinds_scenario)
            .invariant("kinds-listed", |_r: &Vec<&'static str>| Ok(()));
        let report = run.sweep(0..20);
        assert!(report.passed());
        assert_eq!(report.seeds_swept, 20);
        assert!(report.faults_injected.values().sum::<u64>() > 0);
    }

    #[test]
    fn failing_sweeps_shrink_to_the_guilty_clause() {
        // The "bug": any plan containing a crash clause fails.
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]).faults(4, 8);
        let run = ChaosRun::new(spec, kinds_scenario).invariant(
            "no-crash-kind",
            |r: &Vec<&'static str>| {
                if r.contains(&"crash") {
                    Err("plan contained a crash".to_owned())
                } else {
                    Ok(())
                }
            },
        );
        let report = run.sweep(0..10);
        assert!(!report.passed(), "crash clauses appear in 10 seeds of 4-8 faults");
        for failure in &report.failures {
            assert_eq!(failure.plan.len(), 1, "minimal repro is the single crash clause");
            assert_eq!(failure.plan.faults[0].kind(), "crash");
            assert!(failure.original_len >= failure.plan.len());
            assert_eq!(failure.violations[0].invariant, "no-crash-kind");
        }
        // The report JSON carries the shrunk plans.
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"crash\""), "{json}");
        assert_eq!(json, report.to_json(), "rendering is deterministic");
    }

    #[test]
    fn shrink_reports_empty_plan_when_failure_is_fault_independent() {
        let spec = FaultSpec::new(vec![n(0), n(1)]);
        let run = ChaosRun::new(spec, kinds_scenario)
            .invariant("always-fails", |_r: &Vec<&'static str>| Err("broken".to_owned()));
        let plan = FaultPlan::generate(3, &run.spec);
        let shrunk = run.shrink(3, &plan);
        assert!(shrunk.plan.is_empty(), "bug reproduces with no faults: {}", shrunk.plan);
    }

    #[test]
    fn plans_apply_cleanly_to_a_simulation() {
        #[derive(Clone)]
        struct NoMsg;
        struct Idle;
        impl crate::actor::Actor<NoMsg> for Idle {
            fn on_message(
                &mut self,
                _ctx: &mut crate::actor::Context<'_, NoMsg>,
                _from: NodeId,
                _msg: NoMsg,
            ) {
            }
        }
        let spec = FaultSpec::new(vec![n(0), n(1), n(2), n(3)]).faults(3, 6);
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &spec);
            let mut sim: Simulation<NoMsg> = Simulation::new(seed);
            for _ in 0..4 {
                sim.add_node(Idle);
            }
            plan.apply(&mut sim);
            sim.run_until(SimTime::from_secs(6));
            // Every clause healed: nothing blocked, everyone back up.
            for a in 0..4 {
                assert!(sim.is_up(NodeId(a)), "seed {seed}: n{a} still down\n{plan}");
                for b in 0..4 {
                    assert!(
                        !sim.network_mut().is_blocked(NodeId(a), NodeId(b)),
                        "seed {seed}: n{a}->n{b} still blocked\n{plan}"
                    );
                }
            }
        }
    }
}
