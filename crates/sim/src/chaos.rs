//! Seed-swept chaos testing: declarative fault plans, invariant
//! checkers, and failing-schedule shrinking.
//!
//! *Building on Quicksand* argues that the interesting properties of a
//! replicated system are the ones that hold under **arbitrary** bad luck
//! — crashes mid-transaction, asymmetric partitions, lossy degraded
//! links — not just the two or three failures a test author thought of.
//! This module turns that discipline into machinery, in the style of
//! FoundationDB's deterministic simulation testing:
//!
//! - A [`FaultPlan`] (defined in [`crate::plan`], re-exported here) is
//!   a declarative timeline of fault clauses (partition + heal, crash +
//!   restart, degrade + restore) that can be applied to any
//!   [`Simulation`]. Plans are either hand-written or generated from a
//!   seed by [`FaultPlan::generate`] under the constraints of a
//!   [`FaultSpec`]. Generated plans always heal: every
//!   partition ends, every crashed node restarts, every degraded link is
//!   restored by the spec's window end — so liveness invariants
//!   (convergence, all-acked) are meaningful.
//! - An [`Invariant`] is a named predicate over a harness report —
//!   "no acked edit lost", "replicas converged", "escrow never
//!   over-committed", "books balanced", "no leaked open spans".
//! - A [`ChaosRun`] sweeps seeds: for each seed it generates a plan,
//!   runs the scenario, and checks every invariant. When a seed fails,
//!   the driver **shrinks** the fault schedule — first bisecting halves
//!   away, then removing clauses one at a time — until it has a
//!   1-minimal reproducing plan, reported with its seed in the
//!   [`ChaosReport`].
//!
//! Everything here is deterministic: the same seed and spec produce the
//! same plan, the same run, the same report JSON, byte for byte.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

use crate::explain::Explanation;
use crate::json;
use crate::ledger::LedgerAccounting;
use crate::world::Simulation;

pub use crate::plan::{mix_seed, ClauseEdge, ClauseEvent, Fault, FaultPlan, FaultSpec};

impl FaultPlan {
    /// Schedule every clause onto `sim`. Call before the first `run_*`.
    ///
    /// The simulator executes exactly [`FaultPlan::timeline`]: each
    /// onset edge becomes the fault taking effect, each heal edge the
    /// undo. The wall-clock runtime's chaos controller walks the same
    /// timeline against the host clock, which is what makes "same plan,
    /// same clause sequence" hold across engines.
    pub fn apply<M: Clone + 'static>(&self, sim: &mut Simulation<M>) {
        // Stash the plan on the core so explanations and incidents
        // render the clauses that were actually in force.
        sim.core_mut().plan = self.clone();
        for ev in self.timeline() {
            match (&self.faults[ev.clause], ev.edge) {
                (Fault::Partition { at, left, right, .. }, ClauseEdge::Onset) => {
                    sim.schedule_partition(*at, left, right);
                }
                (Fault::Partition { until, left, right, .. }, ClauseEdge::Heal) => {
                    sim.schedule_heal_groups(*until, left, right);
                }
                (Fault::PartitionOneWay { at, from, to, .. }, ClauseEdge::Onset) => {
                    sim.schedule_partition_oneway(*at, from, to);
                }
                (Fault::PartitionOneWay { until, from, to, .. }, ClauseEdge::Heal) => {
                    sim.schedule_heal_groups(*until, from, to);
                }
                (Fault::Crash { at, node, .. }, ClauseEdge::Onset) => {
                    sim.schedule_crash(*at, *node);
                }
                (Fault::Crash { node, restart_at, .. }, ClauseEdge::Heal) => {
                    // Timelines only emit a heal edge when a restart exists.
                    sim.schedule_restart(restart_at.expect("heal edge implies restart"), *node);
                }
                (Fault::Degrade { at, until, a, b, link }, ClauseEdge::Onset) => {
                    // The degrade schedules its own restoration at `until`.
                    sim.schedule_degrade(*at, *a, *b, *link, *until);
                }
                (Fault::Degrade { .. }, ClauseEdge::Heal) => {}
                // Membership clauses carry no network/crash mechanics the
                // plan engine can execute; the scenario translates them
                // into its own control messages (see dynamo's workload
                // driver and the runtime's chaos controller).
                (Fault::AddNode { .. } | Fault::RemoveNode { .. }, _) => {}
            }
        }
    }
}

/// One invariant violation: which invariant, and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The invariant's name.
    pub invariant: String,
    /// What went wrong, in the invariant's own words.
    pub detail: String,
}

impl Violation {
    fn to_json(&self) -> String {
        format!(
            "{{\"invariant\":{},\"detail\":{}}}",
            json::string(&self.invariant),
            json::string(&self.detail)
        )
    }
}

/// A named predicate over a scenario report. `Ok(())` means the
/// invariant held; `Err(detail)` describes the violation.
pub trait Invariant<R> {
    /// The invariant's stable name (used in reports).
    fn name(&self) -> &str;
    /// Check the invariant against one run's report.
    fn check(&self, report: &R) -> Result<(), String>;
}

struct FnInvariant<R> {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&R) -> Result<(), String>>,
}

impl<R> Invariant<R> for FnInvariant<R> {
    fn name(&self) -> &str {
        &self.name
    }
    fn check(&self, report: &R) -> Result<(), String> {
        (self.f)(report)
    }
}

/// Build an invariant from a name and a closure.
pub fn invariant<R: 'static>(
    name: impl Into<String>,
    f: impl Fn(&R) -> Result<(), String> + 'static,
) -> Box<dyn Invariant<R>> {
    Box::new(FnInvariant { name: name.into(), f: Box::new(f) })
}

/// A failing seed, shrunk: the minimal reproducing plan found by clause
/// removal, plus what the minimal run still violates.
#[derive(Debug)]
pub struct Shrunk {
    /// The failing sweep seed.
    pub seed: u64,
    /// The 1-minimal reproducing plan (may be empty if the scenario
    /// fails even without faults).
    pub plan: FaultPlan,
    /// Violations observed when running the minimal plan.
    pub violations: Vec<Violation>,
    /// Clause count of the original (pre-shrink) plan.
    pub original_len: usize,
    /// Scenario executions the shrinker spent.
    pub runs: usize,
    /// The forensic explanation of the failure (the causal slice behind
    /// the *original* failing plan), when the run has an explainer.
    pub explanation: Option<Explanation>,
}

impl Shrunk {
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seed\":{},\"original_faults\":{},\"shrunk_faults\":{},\"shrink_runs\":{},\"plan\":{}",
            self.seed,
            self.original_len,
            self.plan.len(),
            self.runs,
            self.plan.to_json()
        );
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_json());
        }
        out.push(']');
        if let Some(e) = &self.explanation {
            out.push_str(&format!(
                ",\"explanation\":{{\"target\":{},\"slice_events\":{},\"total_recorded\":{},\
                 \"truncated\":{}}}",
                e.slice.target.0,
                e.slice.events.len(),
                e.slice.total_recorded,
                e.slice.truncated
            ));
        }
        out.push('}');
        out
    }
}

/// The outcome of a seed sweep: totals, per-kind fault counts, and every
/// failure with its shrunk reproducing plan. `to_json` is deterministic
/// — same sweep, same bytes.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Seeds executed.
    pub seeds_swept: u64,
    /// Faults injected across all generated plans, by clause kind.
    pub faults_injected: BTreeMap<String, u64>,
    /// Names of the invariants that were checked.
    pub invariants: Vec<String>,
    /// Failing seeds, each shrunk to a minimal plan.
    pub failures: Vec<Shrunk>,
    /// Total scenario executions spent shrinking.
    pub shrink_runs: u64,
    /// Guess/apology accounting aggregated across every swept seed
    /// (empty unless the run has a ledger accessor — see
    /// [`ChaosRun::with_ledger`]).
    pub ledger: LedgerAccounting,
}

impl ChaosReport {
    /// True when every seed satisfied every invariant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Deterministic JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seeds_swept\":{}", self.seeds_swept);
        out.push_str(",\"faults_injected\":{");
        for (i, (k, v)) in self.faults_injected.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::string(k), v));
        }
        out.push_str("},\"invariants\":[");
        for (i, name) in self.invariants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(name));
        }
        out.push_str(&format!(
            "],\"failures\":{},\"shrink_runs\":{},\"failing\":[",
            self.failures.len(),
            self.shrink_runs
        ));
        for (i, s) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str(&format!("],\"ledger\":{}}}", self.ledger.to_json()));
        out
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos: {} seeds, {} failures ({} shrink runs)",
            self.seeds_swept,
            self.failures.len(),
            self.shrink_runs
        )?;
        for (k, v) in &self.faults_injected {
            writeln!(f, "  injected {k}: {v}")?;
        }
        if self.ledger.opened() > 0 {
            write!(f, "  {}", self.ledger)?;
        }
        for s in &self.failures {
            writeln!(
                f,
                "  seed {} FAILED ({} -> {} clauses): {}",
                s.seed,
                s.original_len,
                s.plan.len(),
                s.violations.iter().map(|v| v.invariant.as_str()).collect::<Vec<_>>().join(", ")
            )?;
            for clause in &s.plan.faults {
                writeln!(f, "    {clause}")?;
            }
        }
        Ok(())
    }
}

/// The sweep driver: a fault spec, a scenario under test, and the
/// invariants its reports must satisfy.
///
/// The scenario closure receives the generated (or shrunk candidate)
/// plan and the sweep seed; it must build a **fresh** simulation, apply
/// the plan, run, and return its report. Determinism of the scenario is
/// what makes shrinking sound: re-running the same `(plan, seed)` must
/// reproduce the same report.
pub struct ChaosRun<R> {
    spec: FaultSpec,
    #[allow(clippy::type_complexity)]
    scenario: Box<dyn Fn(&FaultPlan, u64) -> R>,
    invariants: Vec<Box<dyn Invariant<R>>>,
    max_shrink_runs: usize,
    #[allow(clippy::type_complexity)]
    explainer: Option<Box<dyn Fn(&FaultPlan, u64) -> Option<Explanation>>>,
    artifact_dir: Option<PathBuf>,
    #[allow(clippy::type_complexity)]
    ledger_of: Option<Box<dyn Fn(&R) -> LedgerAccounting>>,
}

impl<R: 'static> ChaosRun<R> {
    /// A driver for `scenario` under `spec`.
    pub fn new(spec: FaultSpec, scenario: impl Fn(&FaultPlan, u64) -> R + 'static) -> Self {
        ChaosRun {
            spec,
            scenario: Box::new(scenario),
            invariants: Vec::new(),
            max_shrink_runs: 256,
            explainer: None,
            artifact_dir: None,
            ledger_of: None,
        }
    }

    /// Attach a forensic explainer: a closure that **re-runs** the given
    /// `(plan, seed)` with the flight recorder enabled and extracts the
    /// causal slice behind the most interesting event (typically the last
    /// unresolved guess, falling back to the last event). Sweep runs stay
    /// cheap — the explainer only executes for failing seeds.
    pub fn with_explainer(
        mut self,
        f: impl Fn(&FaultPlan, u64) -> Option<Explanation> + 'static,
    ) -> Self {
        self.explainer = Some(Box::new(f));
        self
    }

    /// Write `explain-<seed>.txt` / `explain-<seed>.json` artifacts for
    /// every failing seed into `dir` (created on demand). Requires an
    /// explainer.
    pub fn artifacts_into(mut self, dir: impl Into<PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Attach a ledger accessor: how to pull a [`LedgerAccounting`] out
    /// of one run's report. The sweep merges every seed's accounting
    /// into [`ChaosReport::ledger`].
    pub fn with_ledger(mut self, f: impl Fn(&R) -> LedgerAccounting + 'static) -> Self {
        self.ledger_of = Some(Box::new(f));
        self
    }

    /// Re-run one seed through the explainer without sweeping: generate
    /// its plan, run the scenario to learn what (if anything) it
    /// violates, and extract the causal slice. Returns `None` when no
    /// explainer is attached or the explainer found nothing to target.
    pub fn explain_seed(&self, seed: u64) -> Option<Explanation> {
        let explainer = self.explainer.as_ref()?;
        let (plan, _report, violations) = self.run_seed(seed);
        let names = violations.into_iter().map(|v| v.invariant).collect();
        explainer(&plan, seed).map(|e| e.with_violations(names))
    }

    /// Write one explanation's artifact pair into `dir`. Returns the
    /// paths written. Public so bench bins can emit artifacts for
    /// `--explain <seed>` runs outside a sweep.
    pub fn write_artifacts(
        dir: &std::path::Path,
        e: &Explanation,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let txt = dir.join(format!("explain-{}.txt", e.seed));
        let json = dir.join(format!("explain-{}.json", e.seed));
        std::fs::write(&txt, e.render_text())?;
        std::fs::write(&json, e.to_json())?;
        Ok((txt, json))
    }

    /// Add a boxed invariant.
    pub fn with_invariant(mut self, inv: Box<dyn Invariant<R>>) -> Self {
        self.invariants.push(inv);
        self
    }

    /// Add an invariant from a name and closure.
    pub fn invariant(
        self,
        name: impl Into<String>,
        f: impl Fn(&R) -> Result<(), String> + 'static,
    ) -> Self {
        self.with_invariant(invariant(name, f))
    }

    /// Cap the scenario executions one shrink may spend (default 256).
    pub fn max_shrink_runs(mut self, n: usize) -> Self {
        self.max_shrink_runs = n;
        self
    }

    /// The spec this driver generates plans from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Check every invariant against one report.
    pub fn check(&self, report: &R) -> Vec<Violation> {
        let mut out = Vec::new();
        for inv in &self.invariants {
            if let Err(detail) = inv.check(report) {
                out.push(Violation { invariant: inv.name().to_owned(), detail });
            }
        }
        out
    }

    /// Generate the plan for `seed`, run it, and check invariants.
    pub fn run_seed(&self, seed: u64) -> (FaultPlan, R, Vec<Violation>) {
        let plan = FaultPlan::generate(seed, &self.spec);
        let report = (self.scenario)(&plan, seed);
        let violations = self.check(&report);
        (plan, report, violations)
    }

    /// Sweep the given seeds; shrink every failure to a minimal plan.
    pub fn sweep(&self, seeds: impl IntoIterator<Item = u64>) -> ChaosReport {
        let mut report = ChaosReport {
            invariants: self.invariants.iter().map(|i| i.name().to_owned()).collect(),
            ..ChaosReport::default()
        };
        for seed in seeds {
            let (plan, run_report, violations) = self.run_seed(seed);
            for f in &plan.faults {
                *report.faults_injected.entry(f.kind().to_owned()).or_insert(0) += 1;
            }
            report.seeds_swept += 1;
            if let Some(ledger_of) = &self.ledger_of {
                report.ledger.merge(&ledger_of(&run_report));
            }
            if !violations.is_empty() {
                // Explain the failure before shrinking mutates the plan:
                // the causal slice belongs to the run that actually
                // failed, not to a shrunk candidate.
                let explanation = self.explainer.as_ref().and_then(|explainer| {
                    let names = violations.iter().map(|v| v.invariant.clone()).collect();
                    explainer(&plan, seed).map(|e| e.with_violations(names))
                });
                if let (Some(dir), Some(e)) = (&self.artifact_dir, &explanation) {
                    if let Err(err) = Self::write_artifacts(dir, e) {
                        eprintln!(
                            "chaos: failed to write explain artifacts for seed {seed}: {err}"
                        );
                    }
                }
                let mut shrunk = self.shrink(seed, &plan);
                shrunk.explanation = explanation;
                report.shrink_runs += shrunk.runs as u64;
                report.failures.push(shrunk);
            }
        }
        report
    }

    /// Shrink a failing `(seed, plan)` to a 1-minimal reproducing plan:
    /// first try to discard entire halves of the schedule (bisection),
    /// then remove clauses one at a time until no single removal still
    /// reproduces a violation. Because every clause is atomic (its heal
    /// or restart travels with it), every candidate plan is well-formed.
    pub fn shrink(&self, seed: u64, plan: &FaultPlan) -> Shrunk {
        let mut runs = 0usize;
        let mut current = plan.clone();
        let mut violations = {
            runs += 1;
            let r = (self.scenario)(&current, seed);
            self.check(&r)
        };
        if violations.is_empty() {
            // Not reproducible — report the original plan unshrunk.
            return Shrunk {
                seed,
                plan: current,
                violations,
                original_len: plan.len(),
                runs,
                explanation: None,
            };
        }
        // Phase 1: bisection — drop whole halves while that still fails.
        while current.len() > 1 && runs < self.max_shrink_runs {
            let mid = current.len() / 2;
            let mut reduced = false;
            for range in [0..mid, mid..current.len()] {
                let mut cand = current.clone();
                cand.faults.drain(range);
                runs += 1;
                let r = (self.scenario)(&cand, seed);
                let v = self.check(&r);
                if !v.is_empty() {
                    current = cand;
                    violations = v;
                    reduced = true;
                    break;
                }
                if runs >= self.max_shrink_runs {
                    break;
                }
            }
            if !reduced {
                break;
            }
        }
        // Phase 2: greedy removal to 1-minimality (including the empty
        // plan: if the scenario fails with no faults at all, say so).
        'outer: loop {
            for i in 0..current.len() {
                if runs >= self.max_shrink_runs {
                    break 'outer;
                }
                let mut cand = current.clone();
                cand.faults.remove(i);
                runs += 1;
                let r = (self.scenario)(&cand, seed);
                let v = self.check(&r);
                if !v.is_empty() {
                    current = cand;
                    violations = v;
                    continue 'outer;
                }
            }
            break;
        }
        Shrunk {
            seed,
            plan: current,
            violations,
            original_len: plan.len(),
            runs,
            explanation: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::actor::NodeId;
    use crate::time::SimTime;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// A fake "report" for driver tests: the plan's clause kinds.
    fn kinds_scenario(plan: &FaultPlan, _seed: u64) -> Vec<&'static str> {
        plan.faults.iter().map(Fault::kind).collect()
    }

    #[test]
    fn sweep_passes_when_invariants_hold() {
        let spec = FaultSpec::new(vec![n(0), n(1)]);
        let run = ChaosRun::new(spec, kinds_scenario)
            .invariant("kinds-listed", |_r: &Vec<&'static str>| Ok(()));
        let report = run.sweep(0..20);
        assert!(report.passed());
        assert_eq!(report.seeds_swept, 20);
        assert!(report.faults_injected.values().sum::<u64>() > 0);
    }

    #[test]
    fn failing_sweeps_shrink_to_the_guilty_clause() {
        // The "bug": any plan containing a crash clause fails.
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]).faults(4, 8);
        let run = ChaosRun::new(spec, kinds_scenario).invariant(
            "no-crash-kind",
            |r: &Vec<&'static str>| {
                if r.contains(&"crash") {
                    Err("plan contained a crash".to_owned())
                } else {
                    Ok(())
                }
            },
        );
        let report = run.sweep(0..10);
        assert!(!report.passed(), "crash clauses appear in 10 seeds of 4-8 faults");
        for failure in &report.failures {
            assert_eq!(failure.plan.len(), 1, "minimal repro is the single crash clause");
            assert_eq!(failure.plan.faults[0].kind(), "crash");
            assert!(failure.original_len >= failure.plan.len());
            assert_eq!(failure.violations[0].invariant, "no-crash-kind");
        }
        // The report JSON carries the shrunk plans.
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"crash\""), "{json}");
        assert_eq!(json, report.to_json(), "rendering is deterministic");
    }

    #[test]
    fn shrink_reports_empty_plan_when_failure_is_fault_independent() {
        let spec = FaultSpec::new(vec![n(0), n(1)]);
        let run = ChaosRun::new(spec, kinds_scenario)
            .invariant("always-fails", |_r: &Vec<&'static str>| Err("broken".to_owned()));
        let plan = FaultPlan::generate(3, &run.spec);
        let shrunk = run.shrink(3, &plan);
        assert!(shrunk.plan.is_empty(), "bug reproduces with no faults: {}", shrunk.plan);
    }

    #[test]
    fn plans_apply_cleanly_to_a_simulation() {
        #[derive(Clone)]
        struct NoMsg;
        struct Idle;
        impl crate::actor::Actor<NoMsg> for Idle {
            fn on_message(
                &mut self,
                _ctx: &mut crate::actor::Context<'_, NoMsg>,
                _from: NodeId,
                _msg: NoMsg,
            ) {
            }
        }
        let spec = FaultSpec::new(vec![n(0), n(1), n(2), n(3)]).faults(3, 6);
        for seed in 0..20 {
            let plan = FaultPlan::generate(seed, &spec);
            let mut sim: Simulation<NoMsg> = Simulation::new(seed);
            for _ in 0..4 {
                sim.add_node(Idle);
            }
            plan.apply(&mut sim);
            sim.run_until(SimTime::from_secs(6));
            // Every clause healed: nothing blocked, everyone back up.
            for a in 0..4 {
                assert!(sim.is_up(NodeId(a)), "seed {seed}: n{a} still down\n{plan}");
                for b in 0..4 {
                    assert!(
                        !sim.network_mut().is_blocked(NodeId(a), NodeId(b)),
                        "seed {seed}: n{a}->n{b} still blocked\n{plan}"
                    );
                }
            }
        }
    }
}
