//! # sim — deterministic discrete-event simulation substrate
//!
//! *Building on Quicksand* (Helland & Campbell, CIDR 2009) reasons about
//! systems whose interesting behaviour only appears under failure:
//! processors that crash mid-transaction, datacenters that lose the tail
//! of a shipped log, replicas that keep clearing checks while
//! partitioned. This crate is the substrate on which every such system in
//! the workspace is built — a replacement for the hardware and networks
//! the paper's examples ran on.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** One seed fully determines the run, including every
//!    latency draw, message loss, and failure. Experiment tables are
//!    therefore replayable bit-for-bit (see `EXPERIMENTS.md`).
//! 2. **Fail-fast failures** (§2.2 of the paper): a node either works or
//!    is down. Crashes wipe volatile state but preserve whatever the
//!    actor models as durable; messages to down nodes vanish, which is
//!    precisely the window where work gets "stuck in the primary" (§4.2).
//! 3. **Honest latency accounting**, because the entire argument of the
//!    paper is a latency-vs-consistency trade: synchronous checkpoints
//!    pay round trips, asynchronous ones don't.
//!
//! ## Example
//!
//! ```
//! use sim::{Actor, Context, NodeId, SimDuration, SimTime, Simulation};
//!
//! #[derive(Clone)]
//! enum Msg { Hello, World }
//!
//! struct Greeter { peer: Option<NodeId>, done: bool }
//!
//! impl Actor<Msg> for Greeter {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
//!         if let Some(p) = self.peer { ctx.send(p, Msg::Hello); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
//!         match msg {
//!             Msg::Hello => ctx.send(from, Msg::World),
//!             Msg::World => self.done = true,
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let a = sim.add_node(Greeter { peer: None, done: false });
//! let b = sim.add_node(Greeter { peer: Some(a), done: false });
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.actor::<Greeter>(b).done);
//! # let _ = SimDuration::ZERO;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod chaos;
pub mod engine;
pub mod explain;
pub mod flight;
pub mod incident;
mod json;
pub mod ledger;
pub mod loghist;
pub mod metrics;
pub mod net;
pub mod plan;
pub mod rng;
pub mod span;
pub mod time;
pub mod trace;
pub mod world;

pub use actor::{Action, Actor, Context, NodeId, TimerId};
pub use chaos::{ChaosReport, ChaosRun, Invariant, Shrunk, Violation};
pub use engine::{CrashOutcome, EngineCore, DEFAULT_INCIDENT_CAP};
pub use explain::Explanation;
pub use flight::{CausalSlice, FlightEvent, FlightId, FlightKind, FlightRecorder};
pub use incident::{Incident, IncidentKind, IncidentLog};
pub use ledger::{GuessId, GuessOutcome, GuessRecord, Ledger, LedgerAccounting};
pub use loghist::LogHistogram;
pub use metrics::{Histogram, HistogramSummary, MetricSet};
pub use net::{LinkConfig, Network};
pub use plan::{mix_seed, ClauseEdge, ClauseEvent, Fault, FaultPlan, FaultSpec};
pub use rng::SimRng;
pub use span::{SpanId, SpanRecord, SpanStatus, SpanStore, TraceId};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceKind};
pub use world::Simulation;
