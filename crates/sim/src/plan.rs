//! Fault plans: the declarative clause timeline both engines consume.
//!
//! A [`FaultPlan`] is a list of atomic fault clauses — partition + heal,
//! crash + restart, degrade + restore — generated from a seed under a
//! [`FaultSpec`] or written by hand. The plan itself knows nothing about
//! *how* clauses are executed: the simulator schedules them onto its
//! deterministic event queue (`FaultPlan::apply` in [`crate::chaos`]),
//! and the wall-clock runtime's chaos controller replays the same
//! [`FaultPlan::timeline`] against the host clock. Keeping the types
//! here, free of any `Simulation` dependency, is what lets one seeded
//! plan mean the same faults on both engines.
//!
//! Plans round-trip through JSON ([`FaultPlan::to_json`] /
//! [`FaultPlan::from_json`]) so a failing wall-clock run can be replayed
//! under the simulator byte-for-byte, and vice versa.

use std::fmt;

use rand::Rng;

use crate::actor::NodeId;
use crate::json;
use crate::net::LinkConfig;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Mix a raw sweep index into a full-entropy RNG seed (splitmix64
/// finalizer). Unlike a bare `wrapping_mul` by an odd constant — which
/// maps 0 to 0 and preserves low-bit structure — every input, including
/// 0, yields a distinct, well-scrambled stream.
pub fn mix_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One atomic fault clause. Each clause carries its own end: the heal,
/// restart, or restore is part of the clause, so removing a clause
/// during shrinking never leaves the world broken forever.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Two-sided group partition from `at` until `until`.
    Partition {
        /// When the partition starts.
        at: SimTime,
        /// When the partition heals.
        until: SimTime,
        /// One side of the split.
        left: Vec<NodeId>,
        /// The other side.
        right: Vec<NodeId>,
    },
    /// Asymmetric partition: `from → to` traffic is dropped from `at`
    /// until `until`; the reverse direction keeps flowing.
    PartitionOneWay {
        /// When the one-way block starts.
        at: SimTime,
        /// When it heals.
        until: SimTime,
        /// Senders whose messages are dropped.
        from: Vec<NodeId>,
        /// Receivers they cannot reach.
        to: Vec<NodeId>,
    },
    /// Fail-fast crash of `node` at `at`, optionally restarting later.
    Crash {
        /// When the node crashes.
        at: SimTime,
        /// The node that crashes.
        node: NodeId,
        /// When it restarts (`None` = stays down).
        restart_at: Option<SimTime>,
    },
    /// Degrade the `a ↔ b` link (latency spike, loss, duplication) from
    /// `at` until `until`, then restore the previous configuration.
    Degrade {
        /// When the degradation starts.
        at: SimTime,
        /// When the link is restored.
        until: SimTime,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// The degraded link characteristics.
        link: LinkConfig,
    },
    /// Direct a pre-provisioned standby `node` to join the cluster ring
    /// at `at`. Onset-only, like a crash with no restart: the join is
    /// not "undone" by the plan — leaving again is its own clause. The
    /// plan engine itself has no membership machinery; scenarios that
    /// enable this clause translate it into their control message
    /// (e.g. dynamo's `CtlJoin`).
    AddNode {
        /// When the node starts joining.
        at: SimTime,
        /// The standby node that joins.
        node: NodeId,
    },
    /// Direct ring member `node` to leave gracefully (drain its keys,
    /// then depart) starting at `at`. Onset-only, like [`Fault::AddNode`].
    RemoveNode {
        /// When the node starts leaving.
        at: SimTime,
        /// The member that leaves.
        node: NodeId,
    },
}

impl Fault {
    /// When the fault takes effect.
    pub fn at(&self) -> SimTime {
        match self {
            Fault::Partition { at, .. }
            | Fault::PartitionOneWay { at, .. }
            | Fault::Crash { at, .. }
            | Fault::Degrade { at, .. }
            | Fault::AddNode { at, .. }
            | Fault::RemoveNode { at, .. } => *at,
        }
    }

    /// When the fault is fully undone (healed / restarted / restored).
    /// A crash with no restart ends at its crash time: nothing further
    /// will happen on its account.
    pub fn ends_at(&self) -> SimTime {
        match self {
            Fault::Partition { until, .. }
            | Fault::PartitionOneWay { until, .. }
            | Fault::Degrade { until, .. } => *until,
            Fault::Crash { at, restart_at, .. } => restart_at.unwrap_or(*at),
            Fault::AddNode { at, .. } | Fault::RemoveNode { at, .. } => *at,
        }
    }

    /// A short stable label for the clause kind (used in report JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            Fault::Partition { .. } => "partition",
            Fault::PartitionOneWay { .. } => "partition_oneway",
            Fault::Crash { .. } => "crash",
            Fault::Degrade { .. } => "degrade",
            Fault::AddNode { .. } => "add_node",
            Fault::RemoveNode { .. } => "remove_node",
        }
    }

    /// One JSON object describing this clause.
    pub fn to_json(&self) -> String {
        fn nodes(v: &[NodeId]) -> String {
            let mut out = String::from("[");
            for (i, n) in v.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(&n.to_string()));
            }
            out.push(']');
            out
        }
        match self {
            Fault::Partition { at, until, left, right } => format!(
                "{{\"kind\":\"partition\",\"at_us\":{},\"until_us\":{},\"left\":{},\"right\":{}}}",
                at.as_micros(),
                until.as_micros(),
                nodes(left),
                nodes(right)
            ),
            Fault::PartitionOneWay { at, until, from, to } => format!(
                "{{\"kind\":\"partition_oneway\",\"at_us\":{},\"until_us\":{},\"from\":{},\"to\":{}}}",
                at.as_micros(),
                until.as_micros(),
                nodes(from),
                nodes(to)
            ),
            Fault::Crash { at, node, restart_at } => format!(
                "{{\"kind\":\"crash\",\"at_us\":{},\"node\":{},\"restart_at_us\":{}}}",
                at.as_micros(),
                json::string(&node.to_string()),
                restart_at.map_or("null".to_owned(), |r| r.as_micros().to_string())
            ),
            Fault::Degrade { at, until, a, b, link } => format!(
                "{{\"kind\":\"degrade\",\"at_us\":{},\"until_us\":{},\"a\":{},\"b\":{},\
                 \"latency_us\":[{},{}],\"drop_prob\":{},\"duplicate_prob\":{}}}",
                at.as_micros(),
                until.as_micros(),
                json::string(&a.to_string()),
                json::string(&b.to_string()),
                link.latency_min.as_micros(),
                link.latency_max.as_micros(),
                json::float(link.drop_prob),
                json::float(link.duplicate_prob)
            ),
            Fault::AddNode { at, node } => format!(
                "{{\"kind\":\"add_node\",\"at_us\":{},\"node\":{}}}",
                at.as_micros(),
                json::string(&node.to_string())
            ),
            Fault::RemoveNode { at, node } => format!(
                "{{\"kind\":\"remove_node\",\"at_us\":{},\"node\":{}}}",
                at.as_micros(),
                json::string(&node.to_string())
            ),
        }
    }

    /// Parse one clause from the object shape [`Fault::to_json`] emits.
    fn from_jval(v: &JVal) -> Result<Fault, String> {
        let kind = v.get("kind").and_then(JVal::as_str).ok_or("clause missing \"kind\"")?;
        let time = |key: &str| -> Result<SimTime, String> {
            v.get(key)
                .and_then(JVal::as_u64)
                .map(SimTime::from_micros)
                .ok_or_else(|| format!("{kind} clause missing {key:?}"))
        };
        let nodes = |key: &str| -> Result<Vec<NodeId>, String> {
            v.get(key)
                .and_then(JVal::as_arr)
                .ok_or_else(|| format!("{kind} clause missing {key:?}"))?
                .iter()
                .map(|n| n.as_str().ok_or_else(|| format!("non-string node in {key:?}")))
                .map(|n| n.and_then(parse_node))
                .collect()
        };
        let node = |key: &str| -> Result<NodeId, String> {
            v.get(key)
                .and_then(JVal::as_str)
                .ok_or_else(|| format!("{kind} clause missing {key:?}"))
                .and_then(parse_node)
        };
        match kind {
            "partition" => Ok(Fault::Partition {
                at: time("at_us")?,
                until: time("until_us")?,
                left: nodes("left")?,
                right: nodes("right")?,
            }),
            "partition_oneway" => Ok(Fault::PartitionOneWay {
                at: time("at_us")?,
                until: time("until_us")?,
                from: nodes("from")?,
                to: nodes("to")?,
            }),
            "crash" => {
                let restart = match v.get("restart_at_us") {
                    Some(JVal::Null) | None => None,
                    Some(r) => Some(
                        r.as_u64()
                            .map(SimTime::from_micros)
                            .ok_or("crash clause has a non-numeric restart_at_us")?,
                    ),
                };
                Ok(Fault::Crash { at: time("at_us")?, node: node("node")?, restart_at: restart })
            }
            "degrade" => {
                let lat = v
                    .get("latency_us")
                    .and_then(JVal::as_arr)
                    .filter(|a| a.len() == 2)
                    .ok_or("degrade clause missing \"latency_us\" pair")?;
                let micros = |j: &JVal| {
                    j.as_u64()
                        .map(SimDuration::from_micros)
                        .ok_or("non-numeric latency bound".to_owned())
                };
                let prob = |key: &str| {
                    v.get(key)
                        .and_then(JVal::as_f64)
                        .ok_or_else(|| format!("degrade clause missing {key:?}"))
                };
                Ok(Fault::Degrade {
                    at: time("at_us")?,
                    until: time("until_us")?,
                    a: node("a")?,
                    b: node("b")?,
                    link: LinkConfig {
                        latency_min: micros(&lat[0])?,
                        latency_max: micros(&lat[1])?,
                        drop_prob: prob("drop_prob")?,
                        duplicate_prob: prob("duplicate_prob")?,
                    },
                })
            }
            "add_node" => Ok(Fault::AddNode { at: time("at_us")?, node: node("node")? }),
            "remove_node" => Ok(Fault::RemoveNode { at: time("at_us")?, node: node("node")? }),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// Parse the `"n3"` rendering of a [`NodeId`].
fn parse_node(s: &str) -> Result<NodeId, String> {
    s.strip_prefix('n')
        .and_then(|d| d.parse().ok())
        .map(NodeId)
        .ok_or_else(|| format!("bad node id {s:?}"))
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn group(v: &[NodeId]) -> String {
            v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ")
        }
        match self {
            Fault::Partition { at, until, left, right } => {
                write!(f, "partition[{} | {}] {at}..{until}", group(left), group(right))
            }
            Fault::PartitionOneWay { at, until, from, to } => {
                write!(f, "oneway[{} -> {}] {at}..{until}", group(from), group(to))
            }
            Fault::Crash { at, node, restart_at } => match restart_at {
                Some(r) => write!(f, "crash[{node}] {at}..{r}"),
                None => write!(f, "crash[{node}] {at}.. (no restart)"),
            },
            Fault::Degrade { at, until, a, b, link } => write!(
                f,
                "degrade[{a} ~ {b}] {at}..{until} (lat {}..{}, drop {:.2}, dup {:.2})",
                link.latency_min, link.latency_max, link.drop_prob, link.duplicate_prob
            ),
            Fault::AddNode { at, node } => write!(f, "add_node[{node}] {at}"),
            Fault::RemoveNode { at, node } => write!(f, "remove_node[{node}] {at}"),
        }
    }
}

/// Whether a [`ClauseEvent`] is the clause taking effect or being undone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClauseEdge {
    /// The fault takes effect (partition starts, node crashes, link
    /// degrades).
    Onset,
    /// The fault is undone (heal, restart, restore).
    Heal,
}

/// One edge of one clause on the shared execution axis. The full
/// [`FaultPlan::timeline`] is what an engine executes: the simulator
/// turns each edge into a scheduled event, the wall-clock chaos
/// controller sleeps until each edge's offset and applies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClauseEvent {
    /// Offset from engine start at which the edge fires.
    pub at: SimTime,
    /// Index of the clause in [`FaultPlan::faults`].
    pub clause: usize,
    /// Onset or heal.
    pub edge: ClauseEdge,
}

/// A declarative timeline of fault clauses, applied to a simulation
/// before it runs. The empty plan is a valid (fault-free) plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The clauses, in onset order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty, fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan holding exactly the given clauses (sorted by onset).
    pub fn from_faults(mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| (f.at(), f.ends_at()));
        FaultPlan { faults }
    }

    /// Convenience: a single two-sided partition window — the shape the
    /// old bespoke `partition: Option<(SimTime, SimTime)>` knobs encoded.
    pub fn partition_window(
        at: SimTime,
        until: SimTime,
        left: &[NodeId],
        right: &[NodeId],
    ) -> Self {
        FaultPlan {
            faults: vec![Fault::Partition {
                at,
                until,
                left: left.to_vec(),
                right: right.to_vec(),
            }],
        }
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The time by which every clause has been undone — the earliest
    /// horizon at which it is fair to check convergence invariants.
    pub fn ends_by(&self) -> SimTime {
        self.faults.iter().map(Fault::ends_at).max().unwrap_or(SimTime::ZERO)
    }

    /// Clause kinds matching `kind` (`"crash"`, `"partition"`, ...).
    pub fn count_kind(&self, kind: &str) -> usize {
        self.faults.iter().filter(|f| f.kind() == kind).count()
    }

    /// The plan's edges in execution order: every clause contributes its
    /// onset, and — unless it is a crash that never restarts — its heal.
    /// Ties order by clause index then onset-before-heal, matching the
    /// insertion order the simulator's event queue would use. Both
    /// engines execute exactly this sequence; comparing an engine's
    /// applied-clause log against it is the parity check.
    pub fn timeline(&self) -> Vec<ClauseEvent> {
        let mut evs = Vec::with_capacity(self.faults.len() * 2);
        for (i, f) in self.faults.iter().enumerate() {
            evs.push(ClauseEvent { at: f.at(), clause: i, edge: ClauseEdge::Onset });
            let heals = !matches!(
                f,
                Fault::Crash { restart_at: None, .. }
                    | Fault::AddNode { .. }
                    | Fault::RemoveNode { .. }
            );
            if heals {
                evs.push(ClauseEvent { at: f.ends_at(), clause: i, edge: ClauseEdge::Heal });
            }
        }
        evs.sort_by_key(|e| (e.at, e.clause, e.edge));
        evs
    }

    /// Generate a plan from `seed` under `spec`'s constraints. The same
    /// `(seed, spec)` always yields the same plan. Generated clauses all
    /// end by `spec.window.1`.
    pub fn generate(seed: u64, spec: &FaultSpec) -> Self {
        let mut rng = SimRng::new(mix_seed(seed));
        if spec.enabled_kinds().is_empty() {
            return FaultPlan::none();
        }
        let hi = spec.max_faults.max(spec.min_faults).max(1);
        let lo = spec.min_faults.clamp(1, hi);
        let n = rng.gen_range(lo..=hi);
        let w0 = spec.window.0.as_micros();
        let w1 = spec.window.1.as_micros();
        assert!(w1 > w0 + 1, "FaultSpec window must be non-trivial");
        // Membership clauses sample without replacement: each standby
        // joins at most once per plan, each member leaves at most once.
        let mut join_pool = spec.joinable.clone();
        let mut leave_pool = spec.leavable.clone();
        let mut faults = Vec::with_capacity(n);
        for _ in 0..n {
            let mut kinds = spec.enabled_kinds();
            if join_pool.is_empty() {
                kinds.retain(|k| *k != FaultKind::AddNode);
            }
            if leave_pool.is_empty() {
                kinds.retain(|k| *k != FaultKind::RemoveNode);
            }
            if kinds.is_empty() {
                break;
            }
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let at_us = rng.gen_range(w0..w1 - 1);
            let until_us = rng.gen_range(at_us + 1..w1);
            let at = SimTime::from_micros(at_us);
            let until = SimTime::from_micros(until_us);
            match kind {
                FaultKind::Partition | FaultKind::OneWay => {
                    let (left, right) = split_groups(&mut rng, &spec.nodes);
                    if kind == FaultKind::Partition {
                        faults.push(Fault::Partition { at, until, left, right });
                    } else {
                        faults.push(Fault::PartitionOneWay { at, until, from: left, to: right });
                    }
                }
                FaultKind::Crash => {
                    let node = spec.crashable[rng.gen_range(0..spec.crashable.len())];
                    faults.push(Fault::Crash { at, node, restart_at: Some(until) });
                }
                FaultKind::Degrade => {
                    let a_ix = rng.gen_range(0..spec.nodes.len());
                    let mut b_ix = rng.gen_range(0..spec.nodes.len() - 1);
                    if b_ix >= a_ix {
                        b_ix += 1;
                    }
                    let extra = rng.gen_range(0..=spec.max_extra_latency.as_micros());
                    let link = LinkConfig {
                        latency_min: SimDuration::from_millis(1),
                        latency_max: SimDuration::from_millis(1) + SimDuration::from_micros(extra),
                        drop_prob: rng.gen_range(0.0..=spec.max_drop_prob),
                        duplicate_prob: rng.gen_range(0.0..=spec.max_dup_prob),
                    };
                    faults.push(Fault::Degrade {
                        at,
                        until,
                        a: spec.nodes[a_ix],
                        b: spec.nodes[b_ix],
                        link,
                    });
                }
                FaultKind::AddNode => {
                    let node = join_pool.swap_remove(rng.gen_range(0..join_pool.len()));
                    faults.push(Fault::AddNode { at, node });
                }
                FaultKind::RemoveNode => {
                    let node = leave_pool.swap_remove(rng.gen_range(0..leave_pool.len()));
                    faults.push(Fault::RemoveNode { at, node });
                }
            }
        }
        FaultPlan::from_faults(faults)
    }

    /// The smallest seed ≥ `base` whose generated plan holds at least
    /// one clause of every fault class `spec` enables (crash, some
    /// partition, degrade). CI smoke jobs use this to pin a seed that is
    /// guaranteed to exercise all three machineries while staying a
    /// plain `FaultPlan::generate` product — replayable anywhere.
    ///
    /// # Panics
    /// Panics if no seed within `base + 100_000` covers the spec (only
    /// possible with a degenerate spec, e.g. `max_faults` below the
    /// number of enabled kinds).
    pub fn covering_seed(base: u64, spec: &FaultSpec) -> u64 {
        let kinds = spec.enabled_kinds();
        for seed in base..base.saturating_add(100_000) {
            let plan = FaultPlan::generate(seed, spec);
            let covered = kinds.iter().all(|k| {
                plan.faults.iter().any(|f| match k {
                    FaultKind::Partition => f.kind() == "partition",
                    FaultKind::OneWay => f.kind() == "partition_oneway",
                    FaultKind::Crash => f.kind() == "crash",
                    FaultKind::Degrade => f.kind() == "degrade",
                    FaultKind::AddNode => f.kind() == "add_node",
                    FaultKind::RemoveNode => f.kind() == "remove_node",
                })
            });
            if covered {
                return seed;
            }
        }
        panic!("no covering seed within 100000 of {base} for spec {spec:?}");
    }

    /// The clauses as a JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_json());
        }
        out.push(']');
        out
    }

    /// Parse a plan from the array [`FaultPlan::to_json`] emits, so a
    /// plan can travel between a wall-clock run and a simulator replay.
    /// Clauses are re-sorted by onset (a no-op for emitted plans).
    pub fn from_json(s: &str) -> Result<FaultPlan, String> {
        let v = JVal::parse(s)?;
        let arr = v.as_arr().ok_or("expected a JSON array of clauses")?;
        let faults = arr.iter().map(Fault::from_jval).collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan::from_faults(faults))
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "(no faults)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// Split `nodes` into two non-empty groups, driven by `rng`.
fn split_groups(rng: &mut SimRng, nodes: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    assert!(nodes.len() >= 2, "need at least two nodes to partition");
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &n in nodes {
        if rng.gen_bool(0.5) {
            left.push(n);
        } else {
            right.push(n);
        }
    }
    if left.is_empty() {
        left.push(right.pop().expect("nodes non-empty"));
    } else if right.is_empty() {
        right.push(left.pop().expect("nodes non-empty"));
    }
    (left, right)
}

/// Which fault classes a generated plan may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Partition,
    OneWay,
    Crash,
    Degrade,
    AddNode,
    RemoveNode,
}

/// Constraints for [`FaultPlan::generate`]: which nodes participate,
/// which may crash, the time window faults live in, and how many clauses
/// a plan may hold. Substrates disable fault classes their protocol
/// assumptions exclude (e.g. tandem's reliable local bus admits crashes
/// but not partitions).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Nodes that participate in partitions and degrades.
    pub nodes: Vec<NodeId>,
    /// Nodes that may crash (typically servers, not workload drivers).
    pub crashable: Vec<NodeId>,
    /// Fault onsets fall inside this window; every clause ends by
    /// `window.1`.
    pub window: (SimTime, SimTime),
    /// Minimum clauses per plan (≥ 1).
    pub min_faults: usize,
    /// Maximum clauses per plan.
    pub max_faults: usize,
    /// Allow two-sided group partitions.
    pub partitions: bool,
    /// Allow one-way (asymmetric) partitions.
    pub oneway: bool,
    /// Allow crash/restart clauses.
    pub crashes: bool,
    /// Allow link degradation clauses.
    pub degrades: bool,
    /// Upper bound on the extra latency a degrade may add.
    pub max_extra_latency: SimDuration,
    /// Upper bound on a degraded link's drop probability.
    pub max_drop_prob: f64,
    /// Upper bound on a degraded link's duplication probability.
    pub max_dup_prob: f64,
    /// Pre-provisioned standby nodes that [`Fault::AddNode`] clauses may
    /// direct to join (empty disables the kind). Each joins at most once
    /// per plan.
    pub joinable: Vec<NodeId>,
    /// Ring members that [`Fault::RemoveNode`] clauses may direct to
    /// leave (empty disables the kind). Each leaves at most once per
    /// plan.
    pub leavable: Vec<NodeId>,
}

impl FaultSpec {
    /// A spec over `nodes` with every fault class enabled, all nodes
    /// crashable, faults within `[10ms, 5s]`, and 1–5 clauses per plan.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        FaultSpec {
            crashable: nodes.clone(),
            nodes,
            window: (SimTime::from_millis(10), SimTime::from_secs(5)),
            min_faults: 1,
            max_faults: 5,
            partitions: true,
            oneway: true,
            crashes: true,
            degrades: true,
            max_extra_latency: SimDuration::from_millis(200),
            max_drop_prob: 0.3,
            max_dup_prob: 0.2,
            joinable: Vec::new(),
            leavable: Vec::new(),
        }
    }

    /// Restrict which nodes may crash (empty disables crash clauses).
    pub fn crashable(mut self, nodes: Vec<NodeId>) -> Self {
        self.crashable = nodes;
        self
    }

    /// Set the fault window.
    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.window = (start, end);
        self
    }

    /// Set the clause-count range.
    pub fn faults(mut self, min: usize, max: usize) -> Self {
        self.min_faults = min;
        self.max_faults = max;
        self
    }

    /// Enable/disable two-sided partitions.
    pub fn partitions(mut self, on: bool) -> Self {
        self.partitions = on;
        self
    }

    /// Enable/disable one-way partitions.
    pub fn oneway(mut self, on: bool) -> Self {
        self.oneway = on;
        self
    }

    /// Enable/disable crash clauses.
    pub fn crashes(mut self, on: bool) -> Self {
        self.crashes = on;
        self
    }

    /// Enable/disable degrade clauses.
    pub fn degrades(mut self, on: bool) -> Self {
        self.degrades = on;
        self
    }

    /// Set the standby pool for [`Fault::AddNode`] clauses (empty
    /// disables the kind).
    pub fn joinable(mut self, nodes: Vec<NodeId>) -> Self {
        self.joinable = nodes;
        self
    }

    /// Set the member pool for [`Fault::RemoveNode`] clauses (empty
    /// disables the kind).
    pub fn leavable(mut self, nodes: Vec<NodeId>) -> Self {
        self.leavable = nodes;
        self
    }

    fn enabled_kinds(&self) -> Vec<FaultKind> {
        let mut kinds = Vec::new();
        if self.partitions && self.nodes.len() >= 2 {
            kinds.push(FaultKind::Partition);
        }
        if self.oneway && self.nodes.len() >= 2 {
            kinds.push(FaultKind::OneWay);
        }
        if self.crashes && !self.crashable.is_empty() {
            kinds.push(FaultKind::Crash);
        }
        if self.degrades && self.nodes.len() >= 2 {
            kinds.push(FaultKind::Degrade);
        }
        if !self.joinable.is_empty() {
            kinds.push(FaultKind::AddNode);
        }
        if !self.leavable.is_empty() {
            kinds.push(FaultKind::RemoveNode);
        }
        kinds
    }
}

/// A parsed JSON value — just enough of the grammar to read back what
/// the plan emitters write (the workspace builds offline, so no serde).
#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn parse(s: &str) -> Result<JVal, String> {
        let mut p = JParser { bytes: s.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Exact for the integers the emitters write (micros < 2^53).
    fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }
}

struct JParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JParser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b" \t\r\n".contains(b)) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JVal) -> Result<JVal, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'n' => self.literal("null", JVal::Null),
            b't' => self.literal("true", JVal::Bool(true)),
            b'f' => self.literal("false", JVal::Bool(false)),
            b'"' => Ok(JVal::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JVal::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JVal::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or("bad \\u escape")?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 character (already-valid input).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(&b)) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JVal::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn mix_seed_gives_zero_a_distinct_stream() {
        assert_ne!(mix_seed(0), 0);
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000u64 {
            assert!(seen.insert(mix_seed(s)), "collision at {s}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_respects_the_spec() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2), n(3)]);
        for seed in 0..200 {
            let a = FaultPlan::generate(seed, &spec);
            let b = FaultPlan::generate(seed, &spec);
            assert_eq!(a, b, "same seed, same plan");
            assert!(!a.is_empty() && a.len() <= spec.max_faults);
            for f in &a.faults {
                assert!(f.at() >= spec.window.0);
                assert!(f.ends_at() <= spec.window.1, "clauses end inside the window");
                assert!(f.ends_at() >= f.at());
            }
            assert!(a.ends_by() <= spec.window.1);
        }
    }

    #[test]
    fn adjacent_seeds_differ() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]);
        let distinct = (0..50)
            .map(|s| FaultPlan::generate(s, &spec))
            .collect::<Vec<_>>()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        assert!(distinct >= 45, "only {distinct}/49 adjacent pairs differ");
    }

    #[test]
    fn disabled_kinds_never_appear() {
        let spec =
            FaultSpec::new(vec![n(0), n(1), n(2)]).partitions(false).oneway(false).degrades(false);
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, &spec);
            assert!(plan.faults.iter().all(|f| f.kind() == "crash"), "{plan}");
        }
    }

    #[test]
    fn crashable_list_restricts_crash_targets() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]).crashable(vec![n(2)]);
        for seed in 0..50 {
            for f in FaultPlan::generate(seed, &spec).faults {
                if let Fault::Crash { node, .. } = f {
                    assert_eq!(node, n(2));
                }
            }
        }
    }

    #[test]
    fn plan_json_is_deterministic() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)]);
        let plan = FaultPlan::generate(7, &spec);
        assert_eq!(plan.to_json(), FaultPlan::generate(7, &spec).to_json());
        assert!(plan.to_json().starts_with('['));
    }

    #[test]
    fn json_round_trips_every_clause_kind() {
        let plan = FaultPlan::from_faults(vec![
            Fault::Partition {
                at: SimTime::from_millis(10),
                until: SimTime::from_millis(50),
                left: vec![n(0), n(1)],
                right: vec![n(2)],
            },
            Fault::PartitionOneWay {
                at: SimTime::from_millis(20),
                until: SimTime::from_millis(40),
                from: vec![n(2)],
                to: vec![n(0)],
            },
            Fault::Crash { at: SimTime::from_millis(15), node: n(1), restart_at: None },
            Fault::Crash {
                at: SimTime::from_millis(25),
                node: n(2),
                restart_at: Some(SimTime::from_millis(60)),
            },
            Fault::Degrade {
                at: SimTime::from_millis(5),
                until: SimTime::from_millis(35),
                a: n(0),
                b: n(2),
                link: LinkConfig {
                    latency_min: SimDuration::from_millis(1),
                    latency_max: SimDuration::from_millis(7),
                    drop_prob: 0.28130000000317,
                    duplicate_prob: 0.125,
                },
            },
            Fault::AddNode { at: SimTime::from_millis(12), node: n(4) },
            Fault::RemoveNode { at: SimTime::from_millis(45), node: n(1) },
        ]);
        let parsed = FaultPlan::from_json(&plan.to_json()).expect("parses");
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_json(), plan.to_json(), "stable through a second trip");
    }

    #[test]
    fn from_json_rejects_malformed_plans() {
        assert!(FaultPlan::from_json("{}").is_err(), "not an array");
        assert!(FaultPlan::from_json("[{\"kind\":\"meteor\"}]").is_err(), "unknown kind");
        assert!(
            FaultPlan::from_json("[{\"kind\":\"crash\",\"at_us\":1,\"node\":\"x9\"}]").is_err(),
            "bad node id"
        );
        assert!(FaultPlan::from_json("[,]").is_err(), "syntax error");
        assert!(FaultPlan::from_json("[] trailing").is_err(), "trailing bytes");
    }

    #[test]
    fn timeline_orders_every_edge_and_skips_dead_restarts() {
        let plan = FaultPlan::from_faults(vec![
            Fault::Crash { at: SimTime::from_millis(30), node: n(0), restart_at: None },
            Fault::Partition {
                at: SimTime::from_millis(10),
                until: SimTime::from_millis(40),
                left: vec![n(0)],
                right: vec![n(1)],
            },
        ]);
        let tl = plan.timeline();
        // Partition onset, crash onset (no heal — it never restarts),
        // partition heal.
        assert_eq!(tl.len(), 3);
        assert_eq!(
            tl[0],
            ClauseEvent { at: SimTime::from_millis(10), clause: 0, edge: ClauseEdge::Onset }
        );
        assert_eq!(
            tl[1],
            ClauseEvent { at: SimTime::from_millis(30), clause: 1, edge: ClauseEdge::Onset }
        );
        assert_eq!(
            tl[2],
            ClauseEvent { at: SimTime::from_millis(40), clause: 0, edge: ClauseEdge::Heal }
        );
        assert!(tl.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
    }

    #[test]
    fn membership_clauses_sample_pools_without_replacement() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2)])
            .partitions(false)
            .oneway(false)
            .crashes(false)
            .degrades(false)
            .joinable(vec![n(3), n(4)])
            .leavable(vec![n(1)])
            .faults(5, 8);
        for seed in 0..100 {
            let plan = FaultPlan::generate(seed, &spec);
            assert!(!plan.is_empty());
            // Pools bound the plan: ≤ 2 joins, ≤ 1 leave, nothing else.
            assert!(plan.count_kind("add_node") <= 2, "{plan}");
            assert!(plan.count_kind("remove_node") <= 1, "{plan}");
            assert_eq!(plan.len(), plan.count_kind("add_node") + plan.count_kind("remove_node"));
            // No node joins (or leaves) twice in one plan.
            let mut joined: Vec<NodeId> = Vec::new();
            for f in &plan.faults {
                if let Fault::AddNode { node, .. } = f {
                    assert!(!joined.contains(node), "{node} joined twice: {plan}");
                    assert!(spec.joinable.contains(node));
                    joined.push(*node);
                }
                if let Fault::RemoveNode { node, .. } = f {
                    assert_eq!(*node, n(1));
                }
            }
            // Membership clauses are onset-only: no heal edge.
            for ev in plan.timeline() {
                assert_eq!(ev.edge, ClauseEdge::Onset);
            }
        }
    }

    #[test]
    fn membership_pools_leave_plain_fault_generation_unchanged() {
        // Adding empty pools must not perturb the RNG stream: seeds
        // pinned by CI jobs keep meaning the same plans.
        let base = FaultSpec::new(vec![n(0), n(1), n(2), n(3)]);
        let with_pools = base.clone().joinable(Vec::new()).leavable(Vec::new());
        for seed in 0..50 {
            assert_eq!(FaultPlan::generate(seed, &base), FaultPlan::generate(seed, &with_pools));
        }
    }

    #[test]
    fn covering_seed_yields_all_enabled_kinds() {
        let spec = FaultSpec::new(vec![n(0), n(1), n(2), n(3)]).oneway(false).faults(3, 5);
        let seed = FaultPlan::covering_seed(0, &spec);
        let plan = FaultPlan::generate(seed, &spec);
        for kind in ["crash", "partition", "degrade"] {
            assert!(plan.count_kind(kind) >= 1, "seed {seed} missing {kind}: {plan}");
        }
        assert_eq!(seed, FaultPlan::covering_seed(0, &spec), "deterministic");
    }
}
