//! The forensic flight recorder: a bounded ring over the **causal event
//! graph** of a run.
//!
//! The plain [`crate::trace::Trace`] ring answers "what happened, in
//! order" — but a chaos failure needs the sharper question: "what chain
//! of events *made* this happen?" The flight recorder answers it. Every
//! dispatched event (a delivery, a timer firing, a crash, a guess
//! opening) is recorded as a [`FlightEvent`] carrying a `cause` edge:
//!
//! - a **delivery**'s cause is the event that was being dispatched when
//!   the send was issued (message send→deliver edges);
//! - a **timer firing**'s cause is the event during which the timer was
//!   armed (timer set→fire edges) — so a restart that re-arms a gossip
//!   timer is a causal ancestor of everything that gossip later does;
//! - **application events** and **guess markers** are caused by the
//!   event whose callback recorded them.
//!
//! Fault injections (crash, partition, degrade, heal) are plan-driven
//! and have no cause; they are the roots bad luck grows from.
//!
//! Together with the span parent links in [`crate::span::SpanStore`],
//! these edges form the happens-before graph. [`FlightRecorder::slice`]
//! walks it *backwards* from any event — O(ancestors), not O(history) —
//! to extract the minimal [`CausalSlice`] that explains the event. The
//! ring is bounded; when the walk would cross into evicted history the
//! slice says so explicitly (`truncated`) instead of silently dropping
//! ancestors.
//!
//! Everything is deterministic: ids are dense dispatch-order indices, so
//! the same seed yields byte-identical slices and artifacts.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::actor::NodeId;
use crate::json;
use crate::span::{SpanId, SpanStore};
use crate::time::SimTime;

/// Identifies a recorded flight event. Ids are dense and monotonically
/// increasing in dispatch order; an id below
/// [`FlightRecorder::first_retained`] refers to an evicted event.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlightId(pub u64);

impl fmt::Display for FlightId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// What kind of event a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A message was delivered to a node.
    Deliver,
    /// A message addressed to a down node was dropped.
    DropDown,
    /// A timer fired on a node.
    Timer,
    /// A node crashed (fault-plan injected).
    Crash,
    /// A node restarted.
    Restart,
    /// The network was partitioned.
    Partition,
    /// A link was degraded.
    Degrade,
    /// Partitions healed or a degraded link was restored.
    Heal,
    /// A structured application event (see
    /// [`crate::actor::Context::trace_event`]).
    App,
    /// A guess was opened (optimistic action on local memory).
    GuessOpen,
    /// A guess was resolved (confirmed, apologized, or orphaned).
    GuessResolve,
}

impl FlightKind {
    /// Short stable label (used in text rendering and JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Deliver => "deliver",
            FlightKind::DropDown => "drop(down)",
            FlightKind::Timer => "timer",
            FlightKind::Crash => "crash",
            FlightKind::Restart => "restart",
            FlightKind::Partition => "partition",
            FlightKind::Degrade => "degrade",
            FlightKind::Heal => "heal",
            FlightKind::App => "app",
            FlightKind::GuessOpen => "guess?",
            FlightKind::GuessResolve => "guess!",
        }
    }
}

impl fmt::Display for FlightKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One node in the causal event graph.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// This event's id (dense dispatch order).
    pub id: FlightId,
    /// When it was dispatched.
    pub at: SimTime,
    /// What happened.
    pub kind: FlightKind,
    /// The node it happened to (the receiver, for deliveries).
    pub node: Option<NodeId>,
    /// The sender, for deliveries.
    pub from: Option<NodeId>,
    /// The span ambient when the event ran (the `net.hop` for
    /// deliveries, the arming span for timers).
    pub span: Option<SpanId>,
    /// The direct causal predecessor, if any: the event whose callback
    /// issued the send / armed the timer / recorded the marker.
    pub cause: Option<FlightId>,
    /// A name, for app events and guess markers
    /// (`<crate>.<what-happened>`).
    pub label: Option<String>,
    /// Structured context, for app events and guess markers.
    pub fields: Vec<(String, String)>,
}

impl FlightEvent {
    /// One JSON object describing this event (no trailing newline).
    /// Byte-identical across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"at_us\":{},\"kind\":\"{}\"",
            self.id.0,
            self.at.as_micros(),
            self.kind
        );
        if let Some(n) = self.node {
            out.push_str(&format!(",\"node\":\"{n}\""));
        }
        if let Some(f) = self.from {
            out.push_str(&format!(",\"from\":\"{f}\""));
        }
        if let Some(s) = self.span {
            out.push_str(&format!(",\"span\":\"{s}\""));
        }
        if let Some(c) = self.cause {
            out.push_str(&format!(",\"cause\":{}", c.0));
        }
        if let Some(label) = &self.label {
            out.push_str(",\"label\":");
            out.push_str(&json::string(label));
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(k));
                out.push(':');
                out.push_str(&json::string(v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.id, self.at, self.kind)?;
        if let Some(label) = &self.label {
            write!(f, " {label}")?;
        }
        if let (Some(from), Some(node)) = (self.from, self.node) {
            write!(f, " {from} -> {node}")?;
        } else if let Some(node) = self.node {
            write!(f, " @{node}")?;
        }
        if let Some(span) = self.span {
            write!(f, " [{span}]")?;
        }
        if let Some(cause) = self.cause {
            write!(f, " <- {cause}")?;
        }
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// The minimal happens-before slice explaining one target event: the
/// backward transitive closure over cause edges and span parent links,
/// in dispatch order. Extracted by [`FlightRecorder::slice`].
#[derive(Debug, Clone)]
pub struct CausalSlice {
    /// The event being explained.
    pub target: FlightId,
    /// The slice, oldest first (always contains the target, unless the
    /// target itself was evicted).
    pub events: Vec<FlightEvent>,
    /// True when the walk crossed into evicted history: some causal
    /// ancestors exist but are no longer retained.
    pub truncated: bool,
    /// How many distinct evicted ancestors the walk touched.
    pub missing_ancestors: u64,
    /// Events recorded over the whole run (the slice's denominator).
    pub total_recorded: u64,
}

impl CausalSlice {
    /// The slice's share of the full recorded history, in `[0, 1]`.
    pub fn fraction_of_total(&self) -> f64 {
        if self.total_recorded == 0 {
            return 0.0;
        }
        self.events.len() as f64 / self.total_recorded as f64
    }
}

/// The bounded causal-event ring. Enabled per run via
/// `Simulation::enable_flight`; costs nothing when never enabled.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    next_id: u64,
    /// Span id → retained event ids stamped with that span, oldest
    /// first. Pruned on eviction, so it only ever indexes the ring.
    by_span: BTreeMap<u64, Vec<u64>>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_id: 0,
            by_span: BTreeMap::new(),
        }
    }

    /// Record an event and return its id. Evicts the oldest retained
    /// event when full; the id still counts toward
    /// [`FlightRecorder::total_recorded`] either way.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        at: SimTime,
        kind: FlightKind,
        node: Option<NodeId>,
        from: Option<NodeId>,
        span: Option<SpanId>,
        cause: Option<FlightId>,
        label: Option<String>,
        fields: Vec<(String, String)>,
    ) -> FlightId {
        let id = FlightId(self.next_id);
        self.next_id += 1;
        if self.capacity == 0 {
            return id;
        }
        if self.ring.len() == self.capacity {
            if let Some(old) = self.ring.pop_front() {
                if let Some(s) = old.span {
                    if let Some(ids) = self.by_span.get_mut(&s.0) {
                        ids.retain(|&e| e != old.id.0);
                        if ids.is_empty() {
                            self.by_span.remove(&s.0);
                        }
                    }
                }
            }
        }
        if let Some(s) = span {
            self.by_span.entry(s.0).or_default().push(id.0);
        }
        self.ring.push_back(FlightEvent { id, at, kind, node, from, span, cause, label, fields });
        id
    }

    /// Events recorded over the run's lifetime, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.next_id
    }

    /// How many recorded events have been evicted from the ring.
    pub fn evicted(&self) -> u64 {
        self.next_id - self.ring.len() as u64
    }

    /// The id of the oldest retained event (equals
    /// [`FlightRecorder::total_recorded`] when nothing is retained).
    pub fn first_retained(&self) -> u64 {
        self.ring.front().map_or(self.next_id, |e| e.id.0)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.ring.iter()
    }

    /// Look up a retained event (`None` if evicted or never recorded).
    pub fn get(&self, id: FlightId) -> Option<&FlightEvent> {
        let first = self.first_retained();
        if id.0 < first || id.0 >= self.next_id {
            return None;
        }
        self.ring.get((id.0 - first) as usize)
    }

    /// Retained events stamped with `span`, oldest first.
    pub fn events_for_span(&self, span: SpanId) -> Vec<&FlightEvent> {
        self.by_span
            .get(&span.0)
            .map(|ids| ids.iter().filter_map(|&e| self.get(FlightId(e))).collect())
            .unwrap_or_default()
    }

    /// The most recent retained event matching `pred`, if any.
    pub fn last_matching(&self, pred: impl Fn(&FlightEvent) -> bool) -> Option<FlightId> {
        self.ring.iter().rev().find(|e| pred(e)).map(|e| e.id)
    }

    /// The most recent [`FlightKind::GuessOpen`] whose span never saw a
    /// [`FlightKind::GuessResolve`] — the natural forensic target when a
    /// run ends with promises still outstanding.
    pub fn last_unresolved_guess(&self) -> Option<FlightId> {
        // Volatile guesses correlate open↔resolve through the guess
        // span; durable guesses (which outlive spans and crashes) carry
        // an explicit `guess` field instead.
        let guess_key =
            |e: &FlightEvent| e.fields.iter().find(|(k, _)| k == "guess").map(|(_, v)| v.clone());
        let mut resolved_spans: BTreeSet<u64> = BTreeSet::new();
        let mut resolved_guesses: BTreeSet<String> = BTreeSet::new();
        for e in self.ring.iter().rev() {
            match e.kind {
                FlightKind::GuessResolve => {
                    if let Some(s) = e.span {
                        resolved_spans.insert(s.0);
                    }
                    if let Some(g) = guess_key(e) {
                        resolved_guesses.insert(g);
                    }
                }
                FlightKind::GuessOpen => {
                    let resolved = match guess_key(e) {
                        Some(g) => resolved_guesses.contains(&g),
                        None => e.span.is_some_and(|s| resolved_spans.contains(&s.0)),
                    };
                    if !resolved {
                        return Some(e.id);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Extract the minimal happens-before slice explaining `target`.
    ///
    /// Walks backwards over (a) each event's `cause` edge and (b) the
    /// span-parent chain of each event's span, pulling in the retained
    /// events of every ancestor span — O(ancestors), never a scan of the
    /// full history. When the walk reaches an evicted ancestor the slice
    /// is flagged `truncated` and the dangling edges are counted in
    /// `missing_ancestors`, so a bounded ring can never silently pass
    /// off a partial explanation as a complete one.
    pub fn slice(&self, target: FlightId, spans: &SpanStore) -> CausalSlice {
        let mut member: BTreeSet<u64> = BTreeSet::new();
        let mut missing: BTreeSet<u64> = BTreeSet::new();
        let mut seen_spans: BTreeSet<u64> = BTreeSet::new();
        let mut work: Vec<u64> = vec![target.0];
        if self.get(target).is_none() {
            missing.insert(target.0);
            work.clear();
        }
        while let Some(id) = work.pop() {
            if !member.insert(id) {
                continue;
            }
            let Some(ev) = self.get(FlightId(id)) else {
                member.remove(&id);
                missing.insert(id);
                continue;
            };
            if let Some(cause) = ev.cause {
                if !member.contains(&cause.0) && !missing.contains(&cause.0) {
                    work.push(cause.0);
                }
            }
            // Span-parent edges: the events of every ancestor span are
            // part of the story (they are the contexts the work ran
            // under), e.g. a `guess.outstanding` resolve pulls in its
            // open, and a hop pulls in the operation span that sent it.
            let mut span = ev.span;
            while let Some(s) = span {
                if !seen_spans.insert(s.0) {
                    break;
                }
                if let Some(ids) = self.by_span.get(&s.0) {
                    for &e in ids {
                        if e <= target.0 && !member.contains(&e) && !missing.contains(&e) {
                            work.push(e);
                        }
                    }
                }
                span = spans.get(s).and_then(|rec| rec.parent);
            }
        }
        let events: Vec<FlightEvent> =
            member.iter().filter_map(|&id| self.get(FlightId(id)).cloned()).collect();
        CausalSlice {
            target,
            events,
            truncated: !missing.is_empty(),
            missing_ancestors: missing.len() as u64,
            total_recorded: self.next_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        fr: &mut FlightRecorder,
        us: u64,
        kind: FlightKind,
        span: Option<u64>,
        cause: Option<u64>,
    ) -> FlightId {
        fr.record(
            SimTime::from_micros(us),
            kind,
            Some(NodeId(0)),
            None,
            span.map(SpanId),
            cause.map(FlightId),
            None,
            Vec::new(),
        )
    }

    #[test]
    fn ids_are_dense_and_survive_eviction() {
        let mut fr = FlightRecorder::new(2);
        let a = rec(&mut fr, 1, FlightKind::Deliver, None, None);
        let b = rec(&mut fr, 2, FlightKind::Deliver, None, None);
        let c = rec(&mut fr, 3, FlightKind::Deliver, None, None);
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(fr.total_recorded(), 3);
        assert_eq!(fr.evicted(), 1);
        assert!(fr.get(a).is_none(), "evicted");
        assert!(fr.get(c).is_some());
    }

    #[test]
    fn slice_follows_cause_chains_only() {
        let mut fr = FlightRecorder::new(64);
        let spans = SpanStore::new();
        let root = rec(&mut fr, 1, FlightKind::Timer, None, None);
        let hop = rec(&mut fr, 2, FlightKind::Deliver, None, Some(root.0));
        let _noise = rec(&mut fr, 3, FlightKind::Deliver, None, None);
        let target = rec(&mut fr, 4, FlightKind::Deliver, None, Some(hop.0));
        let slice = fr.slice(target, &spans);
        let ids: Vec<u64> = slice.events.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![root.0, hop.0, target.0]);
        assert!(!slice.truncated);
    }

    #[test]
    fn slice_reports_truncation_when_ancestors_were_evicted() {
        let mut fr = FlightRecorder::new(2);
        let spans = SpanStore::new();
        let a = rec(&mut fr, 1, FlightKind::Timer, None, None);
        let b = rec(&mut fr, 2, FlightKind::Deliver, None, Some(a.0));
        let c = rec(&mut fr, 3, FlightKind::Deliver, None, Some(b.0));
        // `a` has been evicted; the walk from c reaches b, then dangles.
        let slice = fr.slice(c, &spans);
        assert!(slice.truncated, "evicted ancestor must be reported");
        assert_eq!(slice.missing_ancestors, 1);
        assert_eq!(slice.events.len(), 2);
    }

    #[test]
    fn span_index_pulls_in_guess_open_for_resolve() {
        let mut fr = FlightRecorder::new(64);
        let mut spans = SpanStore::new();
        let s = spans.open_span("guess.outstanding", Some(NodeId(0)), None, SimTime::ZERO);
        let open = rec(&mut fr, 1, FlightKind::GuessOpen, Some(s.0), None);
        let _noise = rec(&mut fr, 2, FlightKind::Deliver, None, None);
        let resolve = rec(&mut fr, 3, FlightKind::GuessResolve, Some(s.0), None);
        let slice = fr.slice(resolve, &spans);
        let ids: Vec<u64> = slice.events.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![open.0, resolve.0]);
    }

    #[test]
    fn last_unresolved_guess_skips_resolved_ones() {
        let mut fr = FlightRecorder::new(64);
        let open_a = rec(&mut fr, 1, FlightKind::GuessOpen, Some(7), None);
        let _open_b = rec(&mut fr, 2, FlightKind::GuessOpen, Some(8), None);
        rec(&mut fr, 3, FlightKind::GuessResolve, Some(8), None);
        assert_eq!(fr.last_unresolved_guess(), Some(open_a));
    }

    #[test]
    fn json_is_deterministic() {
        let mut fr = FlightRecorder::new(8);
        let id = rec(&mut fr, 5, FlightKind::Deliver, Some(3), Some(0));
        let ev = fr.get(id).unwrap();
        assert_eq!(ev.to_json(), ev.to_json());
        assert!(ev.to_json().contains("\"kind\":\"deliver\""));
    }
}
