//! Incident forensics: the always-on black box shared by both engines.
//!
//! *Building on Quicksand* §5 says every guess is a promise and every
//! broken promise owes an apology. The ledger accounts for them; the
//! flight recorder can explain any single event; this module closes the
//! loop for *operations*: whenever something apology-worthy happens — a
//! panic converted to a fail-fast crash, a fault-plan clause crashing a
//! node, a guess left open past its deadline — the engine snapshots the
//! causal [`Explanation`] **at that moment** (before ring eviction can
//! eat the ancestors) and files it as an [`Incident`] in a bounded
//! [`IncidentLog`].
//!
//! The log is engine-agnostic state on [`crate::engine::EngineCore`], so
//! the deterministic simulator and the wall-clock runtime share one
//! recording path. The runtime surfaces it live (`GET /incidents`,
//! `GET /explain?incident=N`) and the bench harness persists each record
//! durably through the eventlog-backed `IncidentStream`, keyed by
//! `(node, epoch, seq)` so a restarted process recovers its own black
//! box without duplicating entries.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::actor::NodeId;
use crate::explain::Explanation;
use crate::flight::FlightId;
use crate::json;
use crate::time::SimTime;

/// Why an incident was filed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// An actor callback panicked and the engine converted the panic
    /// into a fail-fast crash (§2.2).
    PanicCrash,
    /// A fault-plan clause (or an explicit operator action) crashed the
    /// node.
    ChaosCrash,
    /// A guess stayed open past the configured deadline — the apology
    /// is overdue.
    GuessDeadline,
}

impl IncidentKind {
    /// Stable lowercase label used in JSON and text renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            IncidentKind::PanicCrash => "panic-crash",
            IncidentKind::ChaosCrash => "chaos-crash",
            IncidentKind::GuessDeadline => "guess-deadline",
        }
    }

    /// Parse the stable label back (the inverse of
    /// [`IncidentKind::as_str`]).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "panic-crash" => Some(IncidentKind::PanicCrash),
            "chaos-crash" => Some(IncidentKind::ChaosCrash),
            "guess-deadline" => Some(IncidentKind::GuessDeadline),
            _ => None,
        }
    }
}

impl fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One filed incident: what happened, to whom, and the causal
/// explanation extracted when it happened.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Dense per-run sequence number — the `?incident=N` handle.
    pub seq: u64,
    /// The node the incident happened on.
    pub node: NodeId,
    /// The node's crash epoch when the incident was filed (restarts
    /// bump it, so `(node, epoch, seq)` is stable across recoveries).
    pub epoch: u64,
    /// Why it was filed.
    pub kind: IncidentKind,
    /// When it was filed.
    pub at: SimTime,
    /// The flight event the explanation targets: the crash event, or
    /// the overdue guess's open.
    pub target: FlightId,
    /// Ops of the volatile guesses a crash orphaned; for
    /// guess-deadline incidents, the overdue guess's op.
    pub orphaned_guesses: Vec<String>,
    /// The explanation, snapshotted at filing time so the slice
    /// survives later ring eviction.
    pub explanation: Explanation,
}

impl Incident {
    /// The index entry: everything except the (potentially large)
    /// embedded explanation. Deterministic.
    pub fn summary_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"node\":\"{}\",\"epoch\":{},\"kind\":\"{}\",\"at_us\":{},\
             \"target\":{},\"slice_events\":{},\"truncated\":{}",
            self.seq,
            self.node,
            self.epoch,
            self.kind,
            self.at.as_micros(),
            self.target.0,
            self.explanation.slice.events.len(),
            self.explanation.slice.truncated,
        );
        out.push_str(",\"orphaned_guesses\":[");
        for (i, op) in self.orphaned_guesses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(op));
        }
        out.push_str("]}");
        out
    }

    /// The full durable record: the summary plus the embedded
    /// explanation (its slice, plan, and Perfetto rendering).
    pub fn to_json(&self) -> String {
        let mut out = self.summary_json();
        out.pop(); // drop the closing brace; extend the same object
        out.push_str(",\"explanation\":");
        out.push_str(&self.explanation.to_json());
        out.push('}');
        out
    }

    /// The text post-mortem: an incident header on top of the
    /// explanation's annotated timeline.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "incident #{}: {} on {} (epoch {}) at {}\n",
            self.seq, self.kind, self.node, self.epoch, self.at
        );
        if !self.orphaned_guesses.is_empty() {
            out.push_str(&format!("orphaned guesses: {}\n", self.orphaned_guesses.join(", ")));
        }
        out.push_str(&self.explanation.render_text());
        out
    }
}

/// The bounded in-memory incident log. Sequence numbers are dense and
/// survive eviction (like flight ids), so a durable sink keyed by
/// `(node, epoch, seq)` dedups across drains and process restarts.
#[derive(Debug, Default)]
pub struct IncidentLog {
    ring: VecDeque<Incident>,
    capacity: usize,
    next_seq: u64,
    /// Guess ids that already produced a guess-deadline incident, so
    /// repeated sweeps do not file duplicates.
    flagged_guesses: BTreeSet<u64>,
}

impl IncidentLog {
    /// A log retaining the most recent `capacity` incidents.
    pub fn new(capacity: usize) -> Self {
        IncidentLog {
            ring: VecDeque::new(),
            capacity,
            next_seq: 0,
            flagged_guesses: BTreeSet::new(),
        }
    }

    /// File an incident; returns its sequence number. Evicts the oldest
    /// retained incident when full (the seq still counts).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        node: NodeId,
        epoch: u64,
        kind: IncidentKind,
        at: SimTime,
        target: FlightId,
        orphaned_guesses: Vec<String>,
        explanation: Explanation,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            return seq;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(Incident {
            seq,
            node,
            epoch,
            kind,
            at,
            target,
            orphaned_guesses,
            explanation,
        });
        seq
    }

    /// Mark a guess id as having produced a deadline incident. Returns
    /// `true` the first time (i.e. the incident should be filed).
    pub fn flag_guess(&mut self, guess: u64) -> bool {
        self.flagged_guesses.insert(guess)
    }

    /// Look up a retained incident (`None` if evicted or never filed).
    pub fn get(&self, seq: u64) -> Option<&Incident> {
        let first = self.first_retained();
        if seq < first || seq >= self.next_seq {
            return None;
        }
        self.ring.get((seq - first) as usize)
    }

    /// Retained incidents, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Incident> {
        self.ring.iter()
    }

    /// Incidents filed over the run's lifetime, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// The seq of the oldest retained incident (equals
    /// [`IncidentLog::total_recorded`] when nothing is retained).
    pub fn first_retained(&self) -> u64 {
        self.ring.front().map_or(self.next_seq, |i| i.seq)
    }

    /// Number of retained incidents.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The `/incidents` index body: totals plus one summary per
    /// retained incident, oldest first. Deterministic.
    pub fn index_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"total_recorded\":{},\"first_retained\":{},\"incidents\":[",
            self.ring.len(),
            self.next_seq,
            self.first_retained()
        );
        for (i, inc) in self.ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&inc.summary_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::CausalSlice;
    use crate::plan::FaultPlan;
    use crate::span::SpanStore;

    fn incident_parts() -> Explanation {
        let slice = CausalSlice {
            target: FlightId(3),
            events: Vec::new(),
            truncated: false,
            missing_ancestors: 0,
            total_recorded: 10,
        };
        Explanation::new(7, slice, FaultPlan::none(), SpanStore::new())
    }

    #[test]
    fn seqs_are_dense_and_survive_eviction() {
        let mut log = IncidentLog::new(2);
        for i in 0..3 {
            let seq = log.push(
                NodeId(1),
                0,
                IncidentKind::ChaosCrash,
                SimTime::from_micros(i),
                FlightId(i),
                Vec::new(),
                incident_parts(),
            );
            assert_eq!(seq, i);
        }
        assert_eq!(log.total_recorded(), 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.first_retained(), 1);
        assert!(log.get(0).is_none(), "evicted");
        assert_eq!(log.get(2).unwrap().seq, 2);
    }

    #[test]
    fn guess_flags_dedup() {
        let mut log = IncidentLog::new(8);
        assert!(log.flag_guess(5));
        assert!(!log.flag_guess(5), "second sweep must not refile");
    }

    #[test]
    fn index_and_record_json_are_wellformed() {
        let mut log = IncidentLog::new(8);
        log.push(
            NodeId(2),
            1,
            IncidentKind::PanicCrash,
            SimTime::from_micros(42),
            FlightId(3),
            vec!["cart.put".to_owned()],
            incident_parts(),
        );
        let index = log.index_json();
        assert!(index.contains("\"count\":1"), "{index}");
        assert!(index.contains("\"kind\":\"panic-crash\""), "{index}");
        assert!(index.contains("\"orphaned_guesses\":[\"cart.put\"]"), "{index}");
        let full = log.get(0).unwrap().to_json();
        assert!(full.contains("\"explanation\":{\"seed\":7"), "{full}");
        let text = log.get(0).unwrap().render_text();
        assert!(text.contains("incident #0: panic-crash on n2 (epoch 1)"), "{text}");
        assert!(text.contains("orphaned guesses: cart.put"), "{text}");
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in [IncidentKind::PanicCrash, IncidentKind::ChaosCrash, IncidentKind::GuessDeadline] {
            assert_eq!(IncidentKind::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(IncidentKind::from_str_opt("nope"), None);
    }
}
