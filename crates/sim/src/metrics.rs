//! Lightweight metrics for simulation runs.
//!
//! Actors record counters and latency samples through
//! [`crate::actor::Context`]; the experiment harness reads them back from
//! [`MetricSet`] after the run. Histograms keep every sample — simulation
//! runs record at most a few hundred thousand values, and exact
//! percentiles keep the experiment tables honest.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram of `f64` samples with exact percentiles.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Exact percentile by nearest-rank (`p` in `[0, 100]`), or 0.0 when
    /// empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.values.len() as f64 - 1.0)).round() as usize;
        self.values[rank.min(self.values.len() - 1)]
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        self.values.last().copied().unwrap_or(0.0)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN recorded in histogram"));
            self.sorted = true;
        }
    }
}

/// A named collection of counters and histograms for one simulation run.
#[derive(Debug, Default)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// An empty metric set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Add `by` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Increment the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Read a counter; absent counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a sample into the named histogram, creating it if absent.
    pub fn record(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Mutable access to a histogram (for percentile queries); creates an
    /// empty one if absent so report code never has to branch.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Iterate over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate over all histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name:<40} {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "{name:<40} n={} mean={:.2}", h.count(), h.mean())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricSet::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(50.0), 51.0); // nearest-rank on 0..=99
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_handles_interleaved_record_and_query() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.max(), 5.0);
        h.record(9.0); // un-sorts
        assert_eq!(h.max(), 9.0);
        h.record(1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn empty_histogram_reads_as_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn metric_set_records_into_named_histograms() {
        let mut m = MetricSet::new();
        m.record("lat", 1.0);
        m.record("lat", 3.0);
        assert_eq!(m.histogram("lat").count(), 2);
        assert!((m.histogram("lat").mean() - 2.0).abs() < 1e-9);
        let names: Vec<_> = m.histogram_names().collect();
        assert_eq!(names, vec!["lat"]);
    }
}
