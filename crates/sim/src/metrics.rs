//! Lightweight metrics for simulation runs.
//!
//! Actors record counters, gauges, and latency samples through
//! [`crate::actor::Context`]; the experiment harness reads them back from
//! [`MetricSet`] after the run. Histograms keep every sample — simulation
//! runs record at most a few hundred thousand values, and exact
//! percentiles keep the experiment tables honest.
//!
//! Counters and gauges can carry **labels** (`inc_with("dynamo.put",
//! &[("node", "n3")])`): the unlabeled name always holds the aggregate
//! across labels, so per-node attribution never costs the reader the
//! total. [`MetricSet::to_json`] exports everything for the bench
//! reporter.

use std::collections::BTreeMap;
use std::fmt;

use crate::json;

/// A histogram of `f64` samples with exact percentiles.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

/// A point-in-time digest of one histogram (what reports print).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of all samples.
    pub sum: f64,
}

fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = (p / 100.0) * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Exact percentile (`p` in `[0, 100]`) with linear interpolation
    /// between adjacent ranks, or 0.0 when empty. `percentile(50.0)` of
    /// the samples `1..=100` is therefore `50.5`, matching the mean of a
    /// uniform grid rather than the nearest-rank artefact `51`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.ensure_sorted();
        percentile_of_sorted(&self.values, p)
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        self.values.last().copied().unwrap_or(0.0)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The raw samples, in recording order (used to merge histograms
    /// across runs, e.g. when a chaos sweep aggregates ledgers).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Digest of the current samples. Works on `&self` (sorts a copy if
    /// needed) so `Display` and JSON export can use it.
    pub fn summary(&self) -> HistogramSummary {
        if self.values.is_empty() {
            return HistogramSummary {
                count: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                min: 0.0,
                max: 0.0,
                sum: 0.0,
            };
        }
        let sorted: Vec<f64> = if self.sorted {
            self.values.clone()
        } else {
            let mut v = self.values.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("NaN recorded in histogram"));
            v
        };
        HistogramSummary {
            count: sorted.len(),
            mean: self.mean(),
            p50: percentile_of_sorted(&sorted, 50.0),
            p90: percentile_of_sorted(&sorted, 90.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            sum: self.sum(),
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("NaN recorded in histogram"));
            self.sorted = true;
        }
    }
}

impl HistogramSummary {
    /// One deterministic JSON object for this digest.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"min\": {}, \"max\": {}, \"sum\": {}}}",
            self.count,
            json::float(self.mean),
            json::float(self.p50),
            json::float(self.p90),
            json::float(self.p99),
            json::float(self.min),
            json::float(self.max),
            json::float(self.sum),
        )
    }
}

/// Canonical `name{k=v,k2=v2}` key for a labeled series.
fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// A named collection of counters, gauges, and histograms for one
/// simulation run.
#[derive(Debug, Default, Clone)]
pub struct MetricSet {
    counters: BTreeMap<String, u64>,
    labeled_counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    labeled_gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricSet {
    /// An empty metric set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Add `by` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, by: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += by;
        } else {
            self.counters.insert(name.to_owned(), by);
        }
    }

    /// Increment the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Add `by` to a labeled counter. The unlabeled `name` counter is
    /// bumped too, so it always reads as the aggregate across labels.
    pub fn add_with(&mut self, name: &str, by: u64, labels: &[(&str, &str)]) {
        self.add(name, by);
        let key = labeled_key(name, labels);
        if let Some(c) = self.labeled_counters.get_mut(&key) {
            *c += by;
        } else {
            self.labeled_counters.insert(key, by);
        }
    }

    /// Increment a labeled counter by one (and the unlabeled aggregate).
    pub fn inc_with(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.add_with(name, 1, labels);
    }

    /// Read a counter; absent counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a labeled counter (label order does not matter); absent
    /// series read as zero.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.labeled_counters.get(&labeled_key(name, labels)).copied().unwrap_or(0)
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Set a labeled gauge (the unlabeled name is set too, as the most
    /// recent write across labels).
    pub fn set_gauge_with(&mut self, name: &str, v: f64, labels: &[(&str, &str)]) {
        self.set_gauge(name, v);
        self.labeled_gauges.insert(labeled_key(name, labels), v);
    }

    /// Read a gauge; absent gauges read as zero.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Record a sample into the named histogram, creating it if absent.
    pub fn record(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(v);
        } else {
            let mut h = Histogram::new();
            h.record(v);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Mutable access to a histogram (for percentile queries); creates an
    /// empty one if absent so report code never has to branch.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Iterate over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate over all labeled counter series (canonical
    /// `name{k=v}` keys) in key order.
    pub fn labeled_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.labeled_counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate over all gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate over all labeled gauge series (canonical `name{k=v}`
    /// keys) in key order.
    pub fn labeled_gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.labeled_gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate over all histogram names in order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Iterate over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// JSON export of the whole set: counters (plain and labeled),
    /// gauges, and per-histogram summaries. Deterministic key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(k), v));
        }
        out.push_str("\n  },\n  \"labeled_counters\": {");
        for (i, (k, v)) in self.labeled_counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let all_gauges = self.gauges.iter().chain(self.labeled_gauges.iter());
        for (i, (k, v)) in all_gauges.enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(k), json::float(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(k), h.summary().to_json()));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl fmt::Display for MetricSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "{name:<40} {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "{name:<40} {v:.2}")?;
        }
        for (name, h) in &self.histograms {
            let s = h.summary();
            writeln!(
                f,
                "{name:<40} n={} mean={:.2} p50={:.2} p99={:.2} max={:.2}",
                s.count, s.mean, s.p50, s.p99, s.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricSet::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(0.0), 1.0);
        // Linear interpolation between ranks 49 and 50 of 0..=99.
        assert_eq!(h.percentile(50.0), 50.5);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let mut h = Histogram::new();
        h.record(10.0);
        h.record(20.0);
        assert_eq!(h.percentile(50.0), 15.0);
        assert_eq!(h.percentile(25.0), 12.5);
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(100.0), 20.0);
    }

    #[test]
    fn histogram_handles_interleaved_record_and_query() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.max(), 5.0);
        h.record(9.0); // un-sorts
        assert_eq!(h.max(), 9.0);
        h.record(1.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn empty_histogram_reads_as_zero() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert!(h.is_empty());
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn metric_set_records_into_named_histograms() {
        let mut m = MetricSet::new();
        m.record("lat", 1.0);
        m.record("lat", 3.0);
        assert_eq!(m.histogram("lat").count(), 2);
        assert!((m.histogram("lat").mean() - 2.0).abs() < 1e-9);
        let names: Vec<_> = m.histogram_names().collect();
        assert_eq!(names, vec!["lat"]);
    }

    #[test]
    fn labeled_counters_keep_the_aggregate() {
        let mut m = MetricSet::new();
        m.inc_with("dynamo.put", &[("node", "n1")]);
        m.inc_with("dynamo.put", &[("node", "n2")]);
        m.add_with("dynamo.put", 3, &[("node", "n1")]);
        assert_eq!(m.counter("dynamo.put"), 5, "aggregate across labels");
        assert_eq!(m.counter_with("dynamo.put", &[("node", "n1")]), 4);
        assert_eq!(m.counter_with("dynamo.put", &[("node", "n2")]), 1);
        assert_eq!(m.counter_with("dynamo.put", &[("node", "n9")]), 0);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut m = MetricSet::new();
        m.inc_with("x", &[("b", "2"), ("a", "1")]);
        assert_eq!(m.counter_with("x", &[("a", "1"), ("b", "2")]), 1);
        let keys: Vec<_> = m.labeled_counters().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(keys, vec!["x{a=1,b=2}"]);
    }

    #[test]
    fn gauges_read_back_last_write() {
        let mut m = MetricSet::new();
        assert_eq!(m.gauge("depth"), 0.0);
        m.set_gauge("depth", 3.0);
        m.set_gauge_with("depth", 7.0, &[("node", "n0")]);
        assert_eq!(m.gauge("depth"), 7.0);
    }

    #[test]
    fn display_includes_percentiles() {
        let mut m = MetricSet::new();
        for v in 1..=100 {
            m.record("lat_us", v as f64);
        }
        let text = m.to_string();
        assert!(text.contains("p50=50.50"), "{text}");
        assert!(text.contains("p99=99.01"), "{text}");
        assert!(text.contains("max=100.00"), "{text}");
    }

    #[test]
    fn json_export_is_wellformed_and_complete() {
        let mut m = MetricSet::new();
        m.inc("a.count");
        m.inc_with("b.count", &[("node", "n0")]);
        m.set_gauge("c.gauge", 1.5);
        m.record("d.lat", 2.0);
        let j = m.to_json();
        assert!(j.contains("\"a.count\": 1"), "{j}");
        assert!(j.contains("\"b.count{node=n0}\": 1"), "{j}");
        assert!(j.contains("\"c.gauge\": 1.5"), "{j}");
        assert!(j.contains("\"p50\": 2.0"), "{j}");
        // Balanced braces (cheap well-formedness check without a parser).
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }
}
