//! Actors: the unit of failure in a simulation.
//!
//! Every process in the reproduced systems — a Tandem disk process, a log
//! shipper, a Dynamo storage node, a client retrying requests — is an
//! [`Actor`]. The simulator delivers messages and timer expirations to it
//! and injects fail-fast crashes (§2.2 of the paper: a component either
//! functions correctly or stops; no Byzantine behaviour).
//!
//! Crash semantics mirror real fail-fast hardware: on crash the actor's
//! *volatile* state must be considered gone (the actor's `on_crash` hook
//! is where it wipes in-memory fields), while anything the actor modelled
//! as durable (its "disk" fields) survives to `on_restart`. Messages and
//! timers addressed to a crashed actor are silently dropped — exactly the
//! window in which work gets "stuck in the primary" (§4.2).

use std::any::Any;

use crate::flight::{FlightId, FlightKind, FlightRecorder};
use crate::ledger::{GuessId, GuessOutcome, Ledger};
use crate::metrics::MetricSet;
use crate::rng::SimRng;
use crate::span::{SpanId, SpanStatus, SpanStore};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Identifies a node (actor) in a simulation. Assigned densely by
/// [`crate::world::Simulation::add_node`] starting from zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle for a pending timer, usable with
/// [`Context::cancel_timer`].
///
/// A timer id encodes the node that armed it. Cancelling is only
/// meaningful for the owner: a *foreign* cancel (an id that crossed
/// node boundaries, e.g. inside a message) is a documented no-op on
/// every engine, counted under `sim.foreign_timer_cancel_ignored`.
/// Cancelling an already-fired timer is likewise a no-op.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerId {
    pub(crate) owner: NodeId,
    pub(crate) seq: u64,
}

impl TimerId {
    /// The node that armed this timer.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The run-unique sequence number of this timer.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// A simulated process.
///
/// `M` is the simulation's message type — each subsystem crate defines one
/// enum covering all of its protocol messages. The `Any` supertrait lets
/// the experiment harness downcast actors back to their concrete types to
/// read their final state after a run.
pub trait Actor<M>: Any {
    /// Called once when the simulation starts (after every node has been
    /// added), in `NodeId` order. Schedule initial timers and sends here.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// A message has arrived from `from`.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] has fired. `tag` is the
    /// value given at arming time.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}

    /// The node has crashed (fail-fast). Wipe volatile state; keep fields
    /// that model durable storage. No `Context` is available — a crashed
    /// node cannot send.
    fn on_crash(&mut self, _now: SimTime) {}

    /// The node has been restarted after a crash. Recover from durable
    /// state and re-arm timers.
    fn on_restart(&mut self, _ctx: &mut Context<'_, M>) {}
}

/// Deferred effects produced by an actor during one callback. Sends and
/// timer arms carry the span that was ambient when they were issued, so
/// causality propagates without the actor doing anything.
///
/// Public because both engines — the simulator's event loop and the
/// wall-clock runtime's workers — apply these through their own clock
/// and transport after [`crate::engine::EngineCore::run_callback`]
/// returns them. Actors never see this type.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to `to`, under the span ambient at issue time.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
        /// Ambient span at issue time (parents the `net.hop`).
        span: Option<SpanId>,
    },
    /// Arm a one-shot timer on the issuing node.
    SetTimer {
        /// The timer's handle (owner = issuing node).
        id: TimerId,
        /// Relative delay until it fires.
        delay: SimDuration,
        /// Tag delivered to [`Actor::on_timer`].
        tag: u64,
        /// Ambient span at issue time (the callback runs under it).
        span: Option<SpanId>,
    },
    /// Cancel a previously armed timer (no-op if fired or foreign).
    CancelTimer {
        /// The handle being cancelled.
        id: TimerId,
    },
}

/// The actor's window into the simulation during a callback: clock,
/// randomness, metrics, spans, and the ability to send messages and arm
/// timers.
///
/// Effects are applied by the simulator after the callback returns, in
/// the order they were issued.
///
/// ## Causal spans
///
/// A callback runs with an *ambient span*: the span under which the
/// triggering message or timer was issued (`None` for uninstrumented
/// paths). [`Context::start_span`] opens a child of the ambient span and
/// makes it ambient; every [`Context::send`] and [`Context::set_timer`]
/// issued afterwards inherits it, so the operation's causal tree is
/// stitched together across nodes and hops automatically. See
/// [`crate::span`] for the full model.
pub struct Context<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a mut MetricSet,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) spans: &'a mut SpanStore,
    pub(crate) current_span: Option<SpanId>,
    pub(crate) trace: &'a mut Option<Trace>,
    pub(crate) flight: &'a mut Option<FlightRecorder>,
    pub(crate) ledger: &'a mut Ledger,
    /// The flight event being dispatched when this callback runs — the
    /// causal predecessor of everything the callback records.
    pub(crate) cause: Option<FlightId>,
}

impl<M> Context<'_, M> {
    /// This actor's own node id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The run-wide metric set.
    pub fn metrics(&mut self) -> &mut MetricSet {
        self.metrics
    }

    /// Send `msg` to `to` over the simulated network. Latency, loss,
    /// duplication, and partitions are applied by the network model. The
    /// delivery inherits the ambient span (as a `net.hop` child).
    pub fn send(&mut self, to: NodeId, msg: M) {
        let span = self.current_span;
        self.actions.push(Action::Send { to, msg, span });
    }

    /// Arm a one-shot timer that fires on this actor after `delay`,
    /// delivering `tag` to [`Actor::on_timer`]. Timers do not survive a
    /// crash. The timer callback runs under the span that is ambient now.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId { owner: self.me, seq: *self.next_timer_id };
        *self.next_timer_id += 1;
        let span = self.current_span;
        self.actions.push(Action::SetTimer { id, delay, tag, span });
        id
    }

    /// Cancel a timer armed earlier by **this** node. Cancelling an
    /// already-fired timer is a no-op; cancelling a foreign timer (an
    /// id minted by another node) is a documented no-op on both
    /// engines, counted under `sim.foreign_timer_cancel_ignored`.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    // ---- causal spans -------------------------------------------------

    /// The ambient span, if any: the span this callback is causally under.
    pub fn current_span(&self) -> Option<SpanId> {
        self.current_span
    }

    /// Open a named span as a child of the ambient span (or as a new
    /// trace root if none) and make it ambient for the rest of the
    /// callback. Names follow `<crate>.<operation>`.
    pub fn start_span(&mut self, name: &str) -> SpanId {
        let id = self.spans.open_span(name, Some(self.me), self.current_span, self.now);
        self.current_span = Some(id);
        id
    }

    /// Open a named span under an explicit parent (`None` roots a fresh
    /// trace) without changing the ambient span — for operations tracked
    /// across callbacks (e.g. a request held in a pending table), where
    /// making the span ambient would mis-attribute the rest of the
    /// callback.
    pub fn child_span(&mut self, parent: Option<SpanId>, name: &str) -> SpanId {
        self.spans.open_span(name, Some(self.me), parent, self.now)
    }

    /// Replace the ambient span — for resuming an operation whose span
    /// was stashed in actor state (e.g. a coordinator picking a pending
    /// request back up when its quorum completes). Pass `None` to detach.
    pub fn set_current_span(&mut self, span: Option<SpanId>) {
        self.current_span = span;
    }

    /// Finish a span successfully. If it is the ambient span, the ambient
    /// reverts to its parent.
    pub fn finish_span(&mut self, id: SpanId) {
        self.finish_span_with(id, SpanStatus::Ok);
    }

    /// Finish a span with an explicit status. Finishing an
    /// already-finished span (e.g. one closed by a crash) is a no-op.
    pub fn finish_span_with(&mut self, id: SpanId, status: SpanStatus) {
        if self.current_span == Some(id) {
            self.current_span = self.spans.get(id).and_then(|s| s.parent);
        }
        self.spans.finish_span(id, self.now, status);
    }

    /// Attach a key/value field to a span (shows up in both exporters).
    pub fn span_field(&mut self, id: SpanId, key: &str, value: impl ToString) {
        self.spans.add_field(id, key, value.to_string());
    }

    /// Record a structured application event into the trace ring (if
    /// tracing is enabled), stamped with the ambient span so it can be
    /// joined against the span tree. Names follow `<crate>.<event>`.
    pub fn trace_event(&mut self, name: &str, fields: &[(&str, String)]) {
        if let Some(t) = self.trace {
            let fields = fields.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect();
            t.record(TraceEvent::app(
                self.now,
                self.me,
                self.current_span,
                name.to_owned(),
                fields,
            ));
        }
        let span = self.current_span;
        let fields = fields.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect();
        self.record_flight(FlightKind::App, span, Some(name.to_owned()), fields);
    }

    /// Record a flight-recorder event caused by the event whose callback
    /// this is. No-op when the flight recorder is disabled.
    fn record_flight(
        &mut self,
        kind: FlightKind,
        span: Option<SpanId>,
        label: Option<String>,
        fields: Vec<(String, String)>,
    ) {
        if let Some(f) = self.flight.as_mut() {
            f.record(self.now, kind, Some(self.me), None, span, self.cause, label, fields);
        }
    }

    // ---- guesses and apologies ----------------------------------------

    /// Begin measuring a guess: this node is acting on local knowledge
    /// (the paper's memories/guesses/apologies cycle, §5) and will learn
    /// later whether the guess held. Opens a `guess.outstanding` span
    /// under the ambient span; keep the id in actor state and resolve it
    /// with [`Context::resolve_guess`].
    pub fn begin_guess(&mut self, op: &str) -> SpanId {
        self.begin_guess_basis(op, "local-state")
    }

    /// [`Context::begin_guess`] with an explicit **memory basis**: the
    /// local knowledge the guess stands on, in the instrumenter's words
    /// (`"2-of-3 write quorum"`, `"view from last GET"`). The basis is
    /// stamped on the span, the audit-[`crate::ledger::Ledger`] row, and
    /// the flight-recorder `guess?` marker.
    pub fn begin_guess_basis(&mut self, op: &str, basis: &str) -> SpanId {
        let id =
            self.spans.open_span("guess.outstanding", Some(self.me), self.current_span, self.now);
        self.spans.add_field(id, "op", op.to_owned());
        self.spans.add_field(id, "basis", basis.to_owned());
        self.ledger.open_for_span(op, Some(self.me), basis, self.now, id);
        self.record_flight(
            FlightKind::GuessOpen,
            Some(id),
            Some(op.to_owned()),
            vec![("basis".to_owned(), basis.to_owned())],
        );
        id
    }

    /// Resolve a guess begun with [`Context::begin_guess`]: `confirmed`
    /// means the rest of the system agreed; `false` means an apology is
    /// owed. Records the outstanding window into the
    /// `guess.outstanding_us` histogram and bumps `guess.confirmed` /
    /// `guess.apologies` (labeled by node).
    pub fn resolve_guess(&mut self, id: SpanId, confirmed: bool) {
        let Some(rec) = self.spans.get(id) else { return };
        if rec.status != SpanStatus::Open {
            return; // e.g. closed by a crash; the window is not honest
        }
        let outstanding = self.now.saturating_since(rec.start).as_micros() as f64;
        self.metrics.record("guess.outstanding_us", outstanding);
        let node = self.me.to_string();
        let (counter, status) = if confirmed {
            ("guess.confirmed", SpanStatus::Ok)
        } else {
            ("guess.apologies", SpanStatus::Failed)
        };
        self.metrics.inc_with(counter, &[("node", node.as_str())]);
        self.spans.add_field(
            id,
            "resolution",
            if confirmed { "confirmed" } else { "apology" }.to_owned(),
        );
        let outcome = if confirmed { GuessOutcome::Confirmed } else { GuessOutcome::Apologized };
        self.ledger.resolve_span(id, self.now, outcome);
        self.record_flight(
            FlightKind::GuessResolve,
            Some(id),
            None,
            vec![("outcome".to_owned(), outcome.as_str().to_owned())],
        );
        self.finish_span_with(id, status);
    }

    /// Open a **durable** guess: one whose memory basis survives a crash
    /// (a hint parked on disk, a WAL entry). Unlike
    /// [`Context::begin_guess`] it has no span and is *not* orphaned when
    /// this node crashes — it stays open in the
    /// [`crate::ledger::Ledger`] until something resolves it, and an
    /// unresolved durable guess after quiescence is a real finding.
    pub fn open_durable_guess(&mut self, op: &str, basis: &str) -> GuessId {
        let id = self.ledger.open(op, Some(self.me), basis, self.now);
        self.record_flight(
            FlightKind::GuessOpen,
            self.current_span,
            Some(op.to_owned()),
            vec![
                ("basis".to_owned(), basis.to_owned()),
                ("durable".to_owned(), "true".to_owned()),
                ("guess".to_owned(), id.0.to_string()),
            ],
        );
        id
    }

    /// Resolve a durable guess opened with
    /// [`Context::open_durable_guess`]. The first verdict stands;
    /// resolving twice is a no-op.
    pub fn resolve_durable_guess(&mut self, id: GuessId, confirmed: bool) {
        let Some(rec) = self.ledger.get(id) else { return };
        if !rec.is_open() {
            return;
        }
        let op = rec.op.clone();
        let outcome = if confirmed { GuessOutcome::Confirmed } else { GuessOutcome::Apologized };
        self.ledger.resolve(id, self.now, outcome);
        self.record_flight(
            FlightKind::GuessResolve,
            self.current_span,
            Some(op),
            vec![
                ("outcome".to_owned(), outcome.as_str().to_owned()),
                ("guess".to_owned(), id.0.to_string()),
            ],
        );
    }
}
