//! Actors: the unit of failure in a simulation.
//!
//! Every process in the reproduced systems — a Tandem disk process, a log
//! shipper, a Dynamo storage node, a client retrying requests — is an
//! [`Actor`]. The simulator delivers messages and timer expirations to it
//! and injects fail-fast crashes (§2.2 of the paper: a component either
//! functions correctly or stops; no Byzantine behaviour).
//!
//! Crash semantics mirror real fail-fast hardware: on crash the actor's
//! *volatile* state must be considered gone (the actor's `on_crash` hook
//! is where it wipes in-memory fields), while anything the actor modelled
//! as durable (its "disk" fields) survives to `on_restart`. Messages and
//! timers addressed to a crashed actor are silently dropped — exactly the
//! window in which work gets "stuck in the primary" (§4.2).

use std::any::Any;

use crate::metrics::MetricSet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a node (actor) in a simulation. Assigned densely by
/// [`crate::world::Simulation::add_node`] starting from zero.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle for a pending timer, usable with
/// [`Context::cancel_timer`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

/// A simulated process.
///
/// `M` is the simulation's message type — each subsystem crate defines one
/// enum covering all of its protocol messages. The `Any` supertrait lets
/// the experiment harness downcast actors back to their concrete types to
/// read their final state after a run.
pub trait Actor<M>: Any {
    /// Called once when the simulation starts (after every node has been
    /// added), in `NodeId` order. Schedule initial timers and sends here.
    fn on_start(&mut self, _ctx: &mut Context<'_, M>) {}

    /// A message has arrived from `from`.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// A timer set via [`Context::set_timer`] has fired. `tag` is the
    /// value given at arming time.
    fn on_timer(&mut self, _ctx: &mut Context<'_, M>, _tag: u64) {}

    /// The node has crashed (fail-fast). Wipe volatile state; keep fields
    /// that model durable storage. No `Context` is available — a crashed
    /// node cannot send.
    fn on_crash(&mut self, _now: SimTime) {}

    /// The node has been restarted after a crash. Recover from durable
    /// state and re-arm timers.
    fn on_restart(&mut self, _ctx: &mut Context<'_, M>) {}
}

/// Deferred effects produced by an actor during one callback.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: TimerId, delay: SimDuration, tag: u64 },
    CancelTimer { id: TimerId },
}

/// The actor's window into the simulation during a callback: clock,
/// randomness, metrics, and the ability to send messages and arm timers.
///
/// Effects are applied by the simulator after the callback returns, in
/// the order they were issued.
pub struct Context<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) metrics: &'a mut MetricSet,
    pub(crate) actions: Vec<Action<M>>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<M> Context<'_, M> {
    /// This actor's own node id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The run-wide metric set.
    pub fn metrics(&mut self) -> &mut MetricSet {
        self.metrics
    }

    /// Send `msg` to `to` over the simulated network. Latency, loss,
    /// duplication, and partitions are applied by the network model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Arm a one-shot timer that fires on this actor after `delay`,
    /// delivering `tag` to [`Actor::on_timer`]. Timers do not survive a
    /// crash.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancel a timer armed earlier. Cancelling an already-fired timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }
}
