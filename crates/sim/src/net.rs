//! The simulated message network.
//!
//! Links are unreliable in exactly the ways the paper cares about: they
//! add latency (which is why synchronous checkpointing "at a distance"
//! becomes unpalatable, §4.1), they drop messages (so retries and
//! idempotence matter, §2.1), they may duplicate (so uniquifiers matter,
//! §5.4), and they can be partitioned (so replicas proceed on local
//! knowledge, §6). Per-link overrides let one simulation model a fast
//! local bus between process pairs and a slow WAN to the backup
//! datacenter at the same time.

use std::collections::{HashMap, HashSet};

use rand::Rng;

use crate::actor::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Delivery characteristics of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Minimum one-way delivery latency.
    pub latency_min: SimDuration,
    /// Maximum one-way delivery latency; actual latency is uniform in
    /// `[latency_min, latency_max]`.
    pub latency_max: SimDuration,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (at independently sampled
    /// latencies).
    pub duplicate_prob: f64,
}

impl LinkConfig {
    /// A perfectly reliable link with fixed latency — the local
    /// interconnect of a Tandem-style box.
    pub fn reliable(latency: SimDuration) -> Self {
        LinkConfig {
            latency_min: latency,
            latency_max: latency,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }

    /// A link with latency uniform in `[min, max]` and the given drop
    /// probability.
    pub fn lossy(min: SimDuration, max: SimDuration, drop_prob: f64) -> Self {
        LinkConfig { latency_min: min, latency_max: max, drop_prob, duplicate_prob: 0.0 }
    }

    /// Add a duplication probability to an existing config.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }
}

impl Default for LinkConfig {
    /// 1ms fixed latency, fully reliable.
    fn default() -> Self {
        LinkConfig::reliable(SimDuration::from_millis(1))
    }
}

/// The fate of one send attempt, decided by [`Network::plan_delivery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after each listed delay (normally one entry; two when the
    /// link duplicated the message).
    Deliver(Vec<SimDuration>),
    /// The message was dropped (loss or partition).
    Dropped,
}

/// The simulated network: a default link plus per-pair overrides and an
/// active partition set.
#[derive(Debug, Default)]
pub struct Network {
    default_link: LinkConfig,
    overrides: HashMap<(NodeId, NodeId), LinkConfig>,
    /// Ordered pairs currently blocked. Partitioning (a, b) blocks both
    /// directions; both orderings are stored.
    blocked: HashSet<(NodeId, NodeId)>,
}

impl Network {
    /// A network where every link uses `default_link`.
    pub fn new(default_link: LinkConfig) -> Self {
        Network { default_link, overrides: HashMap::new(), blocked: HashSet::new() }
    }

    /// Override the link in *both* directions between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.overrides.insert((a, b), cfg);
        self.overrides.insert((b, a), cfg);
    }

    /// Override the link in one direction only.
    pub fn set_link_oneway(&mut self, from: NodeId, to: NodeId, cfg: LinkConfig) {
        self.overrides.insert((from, to), cfg);
    }

    /// The override (if any) installed for `from → to`. Used to snapshot a
    /// link before degrading it so the degradation can be undone exactly.
    pub fn link_override(&self, from: NodeId, to: NodeId) -> Option<LinkConfig> {
        self.overrides.get(&(from, to)).copied()
    }

    /// Remove the override for `from → to`, restoring the default link.
    pub fn clear_link_oneway(&mut self, from: NodeId, to: NodeId) {
        self.overrides.remove(&(from, to));
    }

    /// Remove the overrides in both directions between `a` and `b`.
    pub fn clear_link(&mut self, a: NodeId, b: NodeId) {
        self.overrides.remove(&(a, b));
        self.overrides.remove(&(b, a));
    }

    /// The config that will be used for `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkConfig {
        self.overrides.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    /// Block traffic in both directions between `a` and `b`.
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert((a, b));
        self.blocked.insert((b, a));
    }

    /// Partition the network into two groups: every cross-group pair is
    /// blocked, intra-group traffic is unaffected.
    pub fn partition_groups(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                self.partition_pair(a, b);
            }
        }
    }

    /// Block traffic in one direction only: `from → to` is dropped while
    /// `to → from` still flows. This is the asymmetric partition of §6 —
    /// a replica that can hear the world but not answer it.
    pub fn partition_oneway(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// One-way group partition: every `from-group → to-group` message is
    /// dropped; the reverse direction is unaffected.
    pub fn partition_groups_oneway(&mut self, from: &[NodeId], to: &[NodeId]) {
        for &a in from {
            for &b in to {
                self.partition_oneway(a, b);
            }
        }
    }

    /// Heal every cross-group pair between `left` and `right`, in both
    /// directions. Blocks internal to either group, or involving nodes
    /// outside both, are untouched.
    pub fn heal_groups(&mut self, left: &[NodeId], right: &[NodeId]) {
        for &a in left {
            for &b in right {
                self.heal_pair(a, b);
            }
        }
    }

    /// Remove every partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Unblock one pair (both directions).
    pub fn heal_pair(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&(a, b));
        self.blocked.remove(&(b, a));
    }

    /// True if traffic `from → to` is currently blocked.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.blocked.contains(&(from, to))
    }

    /// Decide the fate of one message. Self-sends are delivered reliably
    /// after the link's minimum latency (a node can always talk to
    /// itself).
    pub fn plan_delivery(&self, rng: &mut SimRng, from: NodeId, to: NodeId) -> Delivery {
        let cfg = self.link(from, to);
        if from == to {
            return Delivery::Deliver(vec![cfg.latency_min]);
        }
        if self.is_blocked(from, to) {
            return Delivery::Dropped;
        }
        if cfg.drop_prob > 0.0 && rng.gen_bool(cfg.drop_prob.clamp(0.0, 1.0)) {
            return Delivery::Dropped;
        }
        let mut delays = vec![self.sample_latency(rng, cfg)];
        if cfg.duplicate_prob > 0.0 && rng.gen_bool(cfg.duplicate_prob.clamp(0.0, 1.0)) {
            delays.push(self.sample_latency(rng, cfg));
        }
        Delivery::Deliver(delays)
    }

    fn sample_latency(&self, rng: &mut SimRng, cfg: LinkConfig) -> SimDuration {
        let lo = cfg.latency_min.as_micros();
        let hi = cfg.latency_max.as_micros();
        if hi <= lo {
            return cfg.latency_min;
        }
        SimDuration::from_micros(rng.gen_range(lo..=hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn default_link_applies_everywhere() {
        let net = Network::new(LinkConfig::reliable(SimDuration::from_millis(2)));
        let mut rng = SimRng::new(1);
        match net.plan_delivery(&mut rng, n(0), n(1)) {
            Delivery::Deliver(d) => assert_eq!(d, vec![SimDuration::from_millis(2)]),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn overrides_are_bidirectional_and_oneway() {
        let mut net = Network::new(LinkConfig::default());
        let fast = LinkConfig::reliable(SimDuration::from_micros(10));
        net.set_link(n(0), n(1), fast);
        assert_eq!(net.link(n(0), n(1)).latency_min, fast.latency_min);
        assert_eq!(net.link(n(1), n(0)).latency_min, fast.latency_min);

        let slow = LinkConfig::reliable(SimDuration::from_millis(100));
        net.set_link_oneway(n(2), n(3), slow);
        assert_eq!(net.link(n(2), n(3)).latency_min, slow.latency_min);
        assert_ne!(net.link(n(3), n(2)).latency_min, slow.latency_min);
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut net = Network::new(LinkConfig::default());
        let mut rng = SimRng::new(2);
        net.partition_groups(&[n(0), n(1)], &[n(2)]);
        assert!(net.is_blocked(n(0), n(2)));
        assert!(net.is_blocked(n(2), n(1)));
        assert!(!net.is_blocked(n(0), n(1)));
        assert_eq!(net.plan_delivery(&mut rng, n(0), n(2)), Delivery::Dropped);
        net.heal_pair(n(0), n(2));
        assert!(!net.is_blocked(n(0), n(2)));
        assert!(net.is_blocked(n(1), n(2)));
        net.heal_all();
        assert!(!net.is_blocked(n(1), n(2)));
    }

    #[test]
    fn oneway_partitions_block_a_single_direction() {
        let mut net = Network::new(LinkConfig::default());
        net.partition_groups_oneway(&[n(0), n(1)], &[n(2)]);
        assert!(net.is_blocked(n(0), n(2)));
        assert!(net.is_blocked(n(1), n(2)));
        assert!(!net.is_blocked(n(2), n(0)));
        assert!(!net.is_blocked(n(2), n(1)));
        net.heal_groups(&[n(0), n(1)], &[n(2)]);
        assert!(!net.is_blocked(n(0), n(2)));
    }

    #[test]
    fn link_overrides_snapshot_and_clear() {
        let mut net = Network::new(LinkConfig::default());
        assert!(net.link_override(n(0), n(1)).is_none());
        let slow = LinkConfig::reliable(SimDuration::from_millis(50));
        net.set_link(n(0), n(1), slow);
        assert_eq!(net.link_override(n(0), n(1)).unwrap().latency_min, slow.latency_min);
        assert_eq!(net.link_override(n(1), n(0)).unwrap().latency_min, slow.latency_min);
        net.clear_link_oneway(n(0), n(1));
        assert!(net.link_override(n(0), n(1)).is_none());
        assert!(net.link_override(n(1), n(0)).is_some());
        net.clear_link(n(0), n(1));
        assert!(net.link_override(n(1), n(0)).is_none());
        assert_eq!(net.link(n(0), n(1)).latency_min, LinkConfig::default().latency_min);
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let net = Network::new(LinkConfig::lossy(
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
            0.5,
        ));
        let mut rng = SimRng::new(3);
        let dropped = (0..10_000)
            .filter(|_| net.plan_delivery(&mut rng, n(0), n(1)) == Delivery::Dropped)
            .count();
        assert!((4_000..6_000).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn duplicates_produce_two_delays() {
        let net =
            Network::new(LinkConfig::reliable(SimDuration::from_millis(1)).with_duplicates(1.0));
        let mut rng = SimRng::new(4);
        match net.plan_delivery(&mut rng, n(0), n(1)) {
            Delivery::Deliver(d) => assert_eq!(d.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn self_sends_always_deliver_even_when_lossy_or_partitioned() {
        let mut net = Network::new(LinkConfig::lossy(
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
            1.0,
        ));
        net.partition_pair(n(0), n(0));
        let mut rng = SimRng::new(5);
        assert!(matches!(net.plan_delivery(&mut rng, n(0), n(0)), Delivery::Deliver(_)));
    }

    #[test]
    fn latency_is_sampled_within_bounds() {
        let net = Network::new(LinkConfig::lossy(
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
            0.0,
        ));
        let mut rng = SimRng::new(6);
        for _ in 0..1000 {
            if let Delivery::Deliver(delays) = net.plan_delivery(&mut rng, n(0), n(1)) {
                for d in delays {
                    assert!(d >= SimDuration::from_millis(1) && d <= SimDuration::from_millis(5));
                }
            }
        }
    }
}
