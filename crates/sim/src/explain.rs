//! The explain engine: rendering a [`CausalSlice`] as something a human
//! (or a CI artifact reviewer) can actually read.
//!
//! The flight recorder (see [`crate::flight`]) can extract the minimal
//! happens-before slice behind any event. This module turns that slice
//! into an [`Explanation`]:
//!
//! - an **annotated text timeline** — one line per slice event, laid out
//!   in per-node lanes, with the active [`FaultPlan`]'s clauses
//!   interleaved at their onset and end times and guess markers
//!   (`guess?` / `guess!`) called out where optimism was extended and
//!   where the verdict landed;
//! - a **filtered Perfetto trace** (Chrome `trace_event` JSON) holding
//!   only the spans and events the slice touches, so loading it shows
//!   the story without the other ten thousand spans of the run.
//!
//! Renderings are pure functions of the slice, plan, and span store —
//! same seed, byte-identical artifacts. Chaos sweeps write them next to
//! failing seeds as `explain-<seed>.txt` / `explain-<seed>.json` (see
//! [`crate::chaos::ChaosRun::artifacts_into`]).

use std::collections::BTreeSet;

use crate::chaos::FaultPlan;
use crate::flight::{CausalSlice, FlightEvent, FlightKind};
use crate::json;
use crate::span::SpanStore;
use crate::time::SimTime;

/// A rendered forensic explanation of one event: the causal slice, the
/// fault plan that was active, and the invariants the run violated.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The sweep seed the run was driven by.
    pub seed: u64,
    /// The minimal happens-before slice explaining the target event.
    pub slice: CausalSlice,
    /// The fault plan active during the run.
    pub plan: FaultPlan,
    /// The run's span store (used for lane context and the filtered
    /// Perfetto export).
    pub spans: SpanStore,
    /// Names of the invariants the run violated (empty when the
    /// explanation was requested out of curiosity rather than failure).
    pub violations: Vec<String>,
}

impl Explanation {
    /// Package a slice with the plan and spans that produced it.
    pub fn new(seed: u64, slice: CausalSlice, plan: FaultPlan, spans: SpanStore) -> Self {
        Explanation { seed, slice, plan, spans, violations: Vec::new() }
    }

    /// Attach the violated invariant names (builder-style).
    pub fn with_violations(mut self, violations: Vec<String>) -> Self {
        self.violations = violations;
        self
    }

    /// Every span id the slice touches, including ancestors — the filter
    /// set for the Perfetto export.
    fn slice_spans(&self) -> BTreeSet<u64> {
        let mut keep = BTreeSet::new();
        for ev in &self.slice.events {
            let mut span = ev.span;
            while let Some(s) = span {
                if !keep.insert(s.0) {
                    break;
                }
                span = self.spans.get(s).and_then(|rec| rec.parent);
            }
        }
        keep
    }

    /// The annotated text timeline. One lane per node (columns shift
    /// right with the node id), fault clauses interleaved at onset and
    /// end, guess markers flagged in the margin.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let pct = self.slice.fraction_of_total() * 100.0;
        out.push_str(&format!(
            "causal slice for {} — {} of {} recorded events ({:.1}%)\n",
            self.slice.target,
            self.slice.events.len(),
            self.slice.total_recorded,
            pct
        ));
        out.push_str(&format!("seed: {}\n", self.seed));
        if !self.violations.is_empty() {
            out.push_str(&format!("violated: {}\n", self.violations.join(", ")));
        }
        if self.slice.truncated {
            out.push_str(&format!(
                "TRUNCATED: {} causal ancestor(s) evicted from the flight ring\n",
                self.slice.missing_ancestors
            ));
        }
        if self.plan.is_empty() {
            out.push_str("fault plan: (no faults)\n");
        } else {
            out.push_str(&format!("fault plan ({} clause(s)):\n", self.plan.len()));
            for f in &self.plan.faults {
                out.push_str(&format!("  {f}\n"));
            }
        }
        out.push_str("timeline (one lane per node):\n");
        // Interleave fault-clause markers with the slice events by time.
        // Markers sort before events at the same instant: the fault is
        // the cause, the events are the effect.
        let mut markers: Vec<(SimTime, String)> = Vec::new();
        for f in &self.plan.faults {
            markers.push((f.at(), format!("---- fault onset: {f} ----")));
            if f.ends_at() > f.at() {
                markers.push((f.ends_at(), format!("---- fault ends:  {f} ----")));
            }
        }
        markers.sort_by_key(|(at, _)| *at);
        let mut mi = 0;
        for ev in &self.slice.events {
            while mi < markers.len() && markers[mi].0 <= ev.at {
                out.push_str(&format!("{:>11} {}\n", markers[mi].0.to_string(), markers[mi].1));
                mi += 1;
            }
            out.push_str(&self.render_event_line(ev));
        }
        for (at, m) in &markers[mi..] {
            out.push_str(&format!("{:>11} {m}\n", at.to_string()));
        }
        out
    }

    fn render_event_line(&self, ev: &FlightEvent) -> String {
        let lane = ev.node.map_or(0, |n| n.0);
        let mut line = format!("{:>11} {}", ev.at.to_string(), "  ".repeat(lane));
        match ev.kind {
            FlightKind::GuessOpen => line.push_str("(?) "),
            FlightKind::GuessResolve => line.push_str("(!) "),
            _ => {}
        }
        if let Some(n) = ev.node {
            line.push_str(&format!("{n}| "));
        } else {
            line.push_str("-| ");
        }
        line.push_str(&format!("{} {}", ev.id, ev.kind));
        if let Some(label) = &ev.label {
            line.push_str(&format!(" {label}"));
        }
        if let Some(from) = ev.from {
            line.push_str(&format!(" (from {from})"));
        }
        if let Some(span) = ev.span {
            line.push_str(&format!(" [{span}]"));
        }
        if let Some(cause) = ev.cause {
            line.push_str(&format!(" <- {cause}"));
        }
        for (k, v) in &ev.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push('\n');
        line
    }

    /// The filtered Perfetto trace: Chrome `trace_event` JSON holding
    /// only the spans the slice touches (as complete/instant events, as
    /// in [`SpanStore::to_chrome_trace`]) plus each slice event as an
    /// instant event on its node's track, with its cause edge in `args`.
    pub fn perfetto_json(&self) -> String {
        let keep = self.slice_spans();
        let mut out = String::from("[\n");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        for s in self.spans.spans() {
            if !keep.contains(&s.id.0) {
                continue;
            }
            let tid = s.node.map(|n| n.0 as i64).unwrap_or(-1);
            let mut args = format!(
                "\"span\":\"{}\",\"trace\":\"{}\",\"status\":\"{}\"",
                s.id, s.trace, s.status
            );
            if let Some(p) = s.parent {
                args.push_str(&format!(",\"parent\":\"{p}\""));
            }
            for (k, v) in &s.fields {
                args.push(',');
                args.push_str(&json::string(k));
                args.push(':');
                args.push_str(&json::string(v));
            }
            let rendered = match s.end {
                Some(end) => format!(
                    "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
                    json::string(&s.name),
                    s.start.as_micros(),
                    end.saturating_since(s.start).as_micros(),
                    tid,
                    args
                ),
                None => format!(
                    "{{\"name\":{},\"cat\":\"span\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{{}}}}}",
                    json::string(&s.name),
                    s.start.as_micros(),
                    tid,
                    args
                ),
            };
            push(rendered, &mut first);
        }
        for ev in &self.slice.events {
            let tid = ev.node.map(|n| n.0 as i64).unwrap_or(-1);
            let name = match &ev.label {
                Some(l) => format!("{} {}", ev.kind, l),
                None => ev.kind.to_string(),
            };
            let mut args = format!("\"id\":\"{}\"", ev.id);
            if let Some(c) = ev.cause {
                args.push_str(&format!(",\"cause\":\"{c}\""));
            }
            if let Some(s) = ev.span {
                args.push_str(&format!(",\"span\":\"{s}\""));
            }
            for (k, v) in &ev.fields {
                args.push(',');
                args.push_str(&json::string(k));
                args.push(':');
                args.push_str(&json::string(v));
            }
            let rendered = format!(
                "{{\"name\":{},\"cat\":\"flight\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{{}}}}}",
                json::string(&name),
                ev.at.as_micros(),
                tid,
                args
            );
            push(rendered, &mut first);
        }
        out.push_str("\n]\n");
        out
    }

    /// The full forensic record as one deterministic JSON object: seed,
    /// violations, fault plan, slice events, and the embedded Perfetto
    /// trace.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seed\":{},\"target\":{}", self.seed, self.slice.target.0);
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(v));
        }
        out.push_str(&format!(
            "],\"truncated\":{},\"missing_ancestors\":{},\"total_recorded\":{},\"plan\":{}",
            self.slice.truncated,
            self.slice.missing_ancestors,
            self.slice.total_recorded,
            self.plan.to_json()
        ));
        out.push_str(",\"events\":[");
        for (i, ev) in self.slice.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&ev.to_json());
        }
        out.push_str("],\"perfetto\":");
        out.push_str(self.perfetto_json().trim_end());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::NodeId;
    use crate::chaos::Fault;
    use crate::flight::FlightRecorder;
    use crate::span::SpanStatus;

    fn build() -> Explanation {
        let mut spans = SpanStore::new();
        let op = spans.open_span("guess.outstanding", Some(NodeId(1)), None, SimTime::ZERO);
        spans.finish_span(op, SimTime::from_micros(400), SpanStatus::Ok);
        let mut fr = FlightRecorder::new(64);
        let root = fr.record(
            SimTime::from_micros(100),
            FlightKind::Timer,
            Some(NodeId(0)),
            None,
            None,
            None,
            None,
            Vec::new(),
        );
        fr.record(
            SimTime::from_micros(150),
            FlightKind::GuessOpen,
            Some(NodeId(1)),
            None,
            Some(op),
            Some(root),
            Some("cart.put".to_owned()),
            vec![("basis".to_owned(), "view".to_owned())],
        );
        let target = fr.record(
            SimTime::from_micros(400),
            FlightKind::GuessResolve,
            Some(NodeId(1)),
            None,
            Some(op),
            Some(root),
            None,
            vec![("outcome".to_owned(), "confirmed".to_owned())],
        );
        let slice = fr.slice(target, &spans);
        let plan = FaultPlan::from_faults(vec![Fault::Crash {
            at: SimTime::from_micros(200),
            node: NodeId(2),
            restart_at: Some(SimTime::from_micros(300)),
        }]);
        Explanation::new(7, slice, plan, spans)
            .with_violations(vec!["eventual-convergence".to_owned()])
    }

    #[test]
    fn text_interleaves_faults_and_marks_guesses() {
        let e = build();
        let text = e.render_text();
        assert!(text.contains("violated: eventual-convergence"), "{text}");
        assert!(text.contains("fault onset: crash[n2]"), "{text}");
        assert!(text.contains("fault ends:"), "{text}");
        assert!(text.contains("(?)"), "guess-open marker: {text}");
        assert!(text.contains("(!)"), "guess-resolve marker: {text}");
        assert!(text.contains("cart.put"), "{text}");
        // Fault onset (t=200us) lands between the open (150) and the
        // resolve (400).
        let open_ix = text.find("(?)").unwrap();
        let fault_ix = text.find("fault onset").unwrap();
        let resolve_ix = text.find("(!)").unwrap();
        assert!(open_ix < fault_ix && fault_ix < resolve_ix, "{text}");
    }

    #[test]
    fn perfetto_is_filtered_to_slice_spans() {
        let mut e = build();
        // A span the slice never touches must not be exported.
        e.spans.open_span("noise.op", Some(NodeId(3)), None, SimTime::from_micros(9));
        let p = e.perfetto_json();
        assert!(p.starts_with("[\n") && p.trim_end().ends_with(']'), "{p}");
        assert!(p.contains("guess.outstanding"), "{p}");
        assert!(!p.contains("noise.op"), "filtered: {p}");
        assert!(p.contains("\"cat\":\"flight\""), "{p}");
        assert!(p.contains("\"cause\":\"E0\""), "{p}");
    }

    #[test]
    fn renderings_are_deterministic() {
        let e = build();
        assert_eq!(e.render_text(), build().render_text());
        assert_eq!(e.to_json(), build().to_json());
        assert!(e.to_json().contains("\"perfetto\":["), "{}", e.to_json());
    }

    #[test]
    fn truncated_slices_say_so_in_text() {
        let mut e = build();
        e.slice.truncated = true;
        e.slice.missing_ancestors = 3;
        assert!(e.render_text().contains("TRUNCATED: 3 causal ancestor(s)"));
    }
}
