//! Deterministic randomness for simulations.
//!
//! Every run of a simulation with the same seed produces the same event
//! sequence, which is what makes failure-injection experiments replayable
//! and the experiment tables in EXPERIMENTS.md regenerable. [`SimRng`]
//! wraps [`rand::rngs::StdRng`] (seedable, portable) and adds `fork`, which
//! deterministically derives an independent child stream — used to give
//! each workload generator its own stream so adding one generator does not
//! perturb the draws seen by another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, forkable random-number generator.
///
/// Implements [`rand::RngCore`], so all of the [`rand::Rng`] extension
/// methods (`gen_range`, `gen_bool`, ...) are available on it directly.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Deterministically derive an independent child generator.
    ///
    /// Consumes one draw from `self`, so sibling forks are decorrelated.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.gen::<u64>();
        SimRng::new(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Sample an exponentially distributed duration with the given mean,
    /// in microseconds. Used for Poisson arrival processes in workloads.
    pub fn exp_micros(&mut self, mean_micros: f64) -> u64 {
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        (-u.ln() * mean_micros) as u64
    }

    /// Sample a lognormally distributed value (e.g. check amounts in the
    /// banking experiments). `mu`/`sigma` parameterize the underlying
    /// normal, sampled via Box-Muller.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }

    /// Sample an index in `0..n` from a Zipf-like distribution with
    /// exponent `s` (`s = 0` is uniform; larger is more skewed). Used for
    /// hot-key workloads. `n` must be nonzero.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over an empty domain");
        if s == 0.0 {
            return self.inner.gen_range(0..n);
        }
        // Inverse-CDF over the (small) discrete domain; n is at most a few
        // thousand in our workloads so the linear scan is fine.
        let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let mut target = self.inner.gen_range(0.0..norm);
        for k in 1..=n {
            let w = 1.0 / (k as f64).powf(s);
            if target < w {
                return k - 1;
            }
            target -= w;
        }
        n - 1
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let mut parent1 = SimRng::new(42);
        let mut parent2 = SimRng::new(42);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        // The fork consumed one parent draw; parents still agree.
        assert_eq!(parent1.next_u64(), parent2.next_u64());
    }

    #[test]
    fn exp_micros_has_roughly_the_right_mean() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exp_micros(1_000.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((800.0..1200.0).contains(&mean), "mean was {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            assert!(rng.lognormal(3.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.2)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "counts: {counts:?}");
    }

    #[test]
    fn zipf_uniform_when_s_is_zero() {
        let mut rng = SimRng::new(13);
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[rng.zipf(4, 0.0)] += 1;
        }
        for c in counts {
            assert!((1500..2500).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn gen_range_is_usable_via_rng_trait() {
        let mut rng = SimRng::new(17);
        for _ in 0..100 {
            let x = rng.gen_range(0..10);
            assert!(x < 10);
        }
    }
}
