//! The engine core shared by the deterministic simulator and the
//! wall-clock runtime.
//!
//! *Building on Quicksand*'s whole argument is that the application
//! protocol, not the substrate, carries the guarantees — so the same
//! actor code must run unchanged under simulated time **and** on real
//! threads. The risk in having two engines is drift: if each one
//! hand-rolls how a callback's effects (sends, timer arms and cancels,
//! span/metric/ledger bookkeeping) are applied, their semantics will
//! diverge one bugfix at a time.
//!
//! [`EngineCore`] eliminates that drift by construction. It owns every
//! piece of callback state that is engine-independent — the RNG, the
//! metric registry, the span store, the optional trace and flight
//! recorders, the guess/apology ledger, and the timer-id allocator —
//! and exposes the bookkeeping transitions (deliver, drop-to-down,
//! timer fire, crash, restart) as methods. The simulator drives it from
//! its event loop ([`crate::world::Simulation`]); the `quicksand-runtime`
//! crate drives the identical methods from worker threads. What stays
//! engine-specific is only *when* events happen (virtual clock vs wall
//! clock) and *how* messages travel (network model vs channels/TCP).
//!
//! Determinism is a property of the driver, not of this core: under the
//! simulator one seed replays bit-for-bit; under the runtime the OS
//! scheduler orders callbacks, and only outcome-level guarantees
//! (op-set union convergence, zero lost acked work) are promised.

use crate::actor::{Action, Context, NodeId, TimerId};
use crate::explain::Explanation;
use crate::flight::{FlightId, FlightKind, FlightRecorder};
use crate::incident::{IncidentKind, IncidentLog};
use crate::ledger::{GuessId, GuessOutcome, Ledger};
use crate::metrics::MetricSet;
use crate::plan::FaultPlan;
use crate::rng::SimRng;
use crate::span::{SpanId, SpanStatus, SpanStore};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent, TraceKind};

/// How many incidents [`EngineCore`] retains by default.
pub const DEFAULT_INCIDENT_CAP: usize = 64;

/// What a fail-fast crash left behind: the crash flight event (when the
/// recorder is enabled) and the ops of the volatile guesses it
/// orphaned. Returned by [`EngineCore::crash_bookkeeping`] so the
/// engine driving the crash can file the incident.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// The recorded [`FlightKind::Crash`] event, when the flight
    /// recorder is on.
    pub flight: Option<FlightId>,
    /// Ops of the volatile guesses the crash orphaned — promises whose
    /// owed apology died with the node's memory.
    pub orphaned: Vec<String>,
}

/// The engine-independent half of an actor engine: all run-wide
/// observability state plus the rules for applying callback effects.
///
/// Both engines hold exactly one of these per run. Fields are public so
/// harnesses can read metrics, spans, and the ledger after a run ends.
pub struct EngineCore {
    /// The seed the run was driven by (stamped into every explanation
    /// and incident, so artifacts are replayable).
    pub seed: u64,
    /// The run's random source. Seeded deterministically under the
    /// simulator; seeded from OS entropy by the runtime (unless pinned
    /// for a cross-validation run).
    pub rng: SimRng,
    /// The run-wide metric registry.
    pub metrics: MetricSet,
    /// Every causal span recorded during the run.
    pub spans: SpanStore,
    /// The bounded event trace, when enabled.
    pub trace: Option<Trace>,
    /// The forensic flight recorder, when enabled.
    pub flight: Option<FlightRecorder>,
    /// The guess/apology ledger. Always on.
    pub ledger: Ledger,
    /// The fault plan active during the run (empty when none is
    /// attached). Set by `FaultPlan::apply` under the simulator and by
    /// the runtime builder's chaos hook, so explanations render the
    /// clauses that were actually in force.
    pub plan: FaultPlan,
    /// The bounded incident log — the run's black box. Always on;
    /// incidents are only *filed* when the flight recorder is enabled
    /// (an incident without a slice explains nothing).
    pub incidents: IncidentLog,
    /// Timer-id sequence allocator (ids are globally unique per run).
    pub(crate) next_timer_id: u64,
}

impl EngineCore {
    /// A fresh core seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        EngineCore {
            seed,
            rng: SimRng::new(seed),
            metrics: MetricSet::new(),
            spans: SpanStore::new(),
            trace: None,
            flight: None,
            ledger: Ledger::new(),
            plan: FaultPlan::none(),
            incidents: IncidentLog::new(DEFAULT_INCIDENT_CAP),
            next_timer_id: 0,
        }
    }

    /// Run one actor callback with a fresh [`Context`] (ambient span =
    /// `ambient`, causal predecessor = `cause`) and return the
    /// callback's result together with the effects it issued, in issue
    /// order. The caller applies the effects through its own clock and
    /// transport — that split is the entire sim/runtime contract.
    pub fn run_callback<M, R>(
        &mut self,
        me: NodeId,
        now: SimTime,
        ambient: Option<SpanId>,
        cause: Option<FlightId>,
        f: impl FnOnce(&mut Context<'_, M>) -> R,
    ) -> (R, Vec<Action<M>>) {
        let mut ctx = Context {
            me,
            now,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
            actions: Vec::new(),
            next_timer_id: &mut self.next_timer_id,
            spans: &mut self.spans,
            current_span: ambient,
            trace: &mut self.trace,
            flight: &mut self.flight,
            ledger: &mut self.ledger,
            cause,
        };
        let r = f(&mut ctx);
        (r, ctx.actions)
    }

    /// Record one engine event into the trace ring, if enabled.
    pub fn record_trace(
        &mut self,
        now: SimTime,
        kind: TraceKind,
        node: Option<NodeId>,
        from: Option<NodeId>,
    ) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent::sim(now, kind, node, from));
        }
    }

    /// Record one engine event into the flight recorder, if enabled.
    /// Returns the new event's id (the `cause` for whatever the event's
    /// callback records).
    pub fn record_flight(
        &mut self,
        now: SimTime,
        kind: FlightKind,
        node: Option<NodeId>,
        from: Option<NodeId>,
        span: Option<SpanId>,
        cause: Option<FlightId>,
    ) -> Option<FlightId> {
        self.flight.as_mut().map(|f| f.record(now, kind, node, from, span, cause, None, Vec::new()))
    }

    /// Open the `net.hop` span for one physical delivery of a send
    /// issued under `parent`. Duplicated messages get one hop each, so
    /// duplication is visible in the span tree.
    pub fn plan_hop(&mut self, parent: Option<SpanId>, to: NodeId, now: SimTime) -> Option<SpanId> {
        parent.map(|p| {
            let h = self.spans.open_span("net.hop", None, Some(p), now);
            self.spans.add_field(h, "to", to.to_string());
            h
        })
    }

    /// Close a delivery's hop span with the given status. Safe on
    /// `None` and on already-finished spans.
    pub fn finish_hop(&mut self, hop: Option<SpanId>, now: SimTime, status: SpanStatus) {
        if let Some(h) = hop {
            self.spans.finish_span(h, now, status);
        }
    }

    /// A send that the transport dropped before delivery (partition,
    /// loss, dead connection): the hop — opened fresh if the send had a
    /// span but no hop yet — closes as dropped and the loss is counted.
    pub fn drop_send(&mut self, parent: Option<SpanId>, to: NodeId, now: SimTime) {
        let hop = self.plan_hop(parent, to, now);
        self.finish_hop(hop, now, SpanStatus::Dropped);
        self.metrics.inc("sim.messages_dropped");
    }

    /// Bookkeeping for a message arriving at a live node. Returns the
    /// flight cause the receiving callback should run under.
    pub fn deliver_bookkeeping(
        &mut self,
        to: NodeId,
        from: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        now: SimTime,
    ) -> Option<FlightId> {
        self.finish_hop(hop, now, SpanStatus::Ok);
        self.record_trace(now, TraceKind::Deliver, Some(to), Some(from));
        self.record_flight(now, FlightKind::Deliver, Some(to), Some(from), hop, cause)
    }

    /// Bookkeeping for a message addressed to a down node: the delivery
    /// silently vanishes — exactly the §4.2 "stuck in the primary"
    /// window — but the loss is visible in spans and metrics.
    pub fn dropped_to_down(
        &mut self,
        to: NodeId,
        from: NodeId,
        hop: Option<SpanId>,
        cause: Option<FlightId>,
        now: SimTime,
    ) {
        self.finish_hop(hop, now, SpanStatus::Dropped);
        self.metrics.inc("sim.dropped_to_down_node");
        self.record_trace(now, TraceKind::DropDown, Some(to), Some(from));
        self.record_flight(now, FlightKind::DropDown, Some(to), Some(from), hop, cause);
    }

    /// Bookkeeping for a live timer firing. Returns the flight cause
    /// the timer callback should run under.
    pub fn timer_bookkeeping(
        &mut self,
        node: NodeId,
        span: Option<SpanId>,
        cause: Option<FlightId>,
        now: SimTime,
    ) -> Option<FlightId> {
        self.record_trace(now, TraceKind::Timer, Some(node), None);
        self.record_flight(now, FlightKind::Timer, Some(node), None, span, cause)
    }

    /// Bookkeeping for a fail-fast crash (§2.2), run *after* the
    /// actor's `on_crash` hook: every span still open on the node
    /// closes as crashed (fail-fast means nothing keeps running), and
    /// the node's volatile guesses are orphaned — the memory that owed
    /// the apology is gone, which is itself an auditable event. The
    /// returned [`CrashOutcome`] is what
    /// [`EngineCore::record_crash_incident`] files.
    pub fn crash_bookkeeping(&mut self, node: NodeId, now: SimTime) -> CrashOutcome {
        self.spans.close_node_spans(node, now);
        self.metrics.inc("sim.crashes");
        self.record_trace(now, TraceKind::Crash, Some(node), None);
        let fid = self.record_flight(now, FlightKind::Crash, Some(node), None, None, None);
        let mut orphaned = Vec::new();
        for (span, op) in self.ledger.orphan_node(node, now) {
            if let Some(f) = &mut self.flight {
                f.record(
                    now,
                    FlightKind::GuessResolve,
                    Some(node),
                    None,
                    Some(span),
                    fid,
                    Some(op.clone()),
                    vec![("outcome".to_owned(), "orphaned".to_owned())],
                );
            }
            orphaned.push(op);
        }
        CrashOutcome { flight: fid, orphaned }
    }

    /// Bookkeeping for a node restarting after a crash. Returns the
    /// flight cause `on_restart` should run under, so effects of the
    /// recovery (e.g. re-armed gossip timers) are causally downstream
    /// of the restart.
    pub fn restart_bookkeeping(&mut self, node: NodeId, now: SimTime) -> Option<FlightId> {
        self.metrics.inc("sim.restarts");
        self.record_trace(now, TraceKind::Restart, Some(node), None);
        self.record_flight(now, FlightKind::Restart, Some(node), None, None, None)
    }

    /// Whether a [`Context::cancel_timer`] effect issued by `node` may
    /// take effect. Cancelling a *foreign* timer — one armed by a
    /// different node — is a documented no-op on every engine (timer
    /// ids encode their owner); the attempt is counted so a protocol
    /// accidentally shipping timer ids across nodes shows up in
    /// metrics rather than as engine-dependent behaviour.
    pub fn cancel_allowed(&mut self, node: NodeId, id: TimerId) -> bool {
        if id.owner() != node {
            self.metrics.inc("sim.foreign_timer_cancel_ignored");
            return false;
        }
        true
    }

    /// Engine-agnostic [`Explanation`] construction — the one shared
    /// path both engines render post-mortems through. Snapshots the
    /// O(ancestors) causal slice behind `target` together with the
    /// active plan and span store. `None` when the flight recorder is
    /// disabled.
    pub fn explain_target(&self, target: FlightId) -> Option<Explanation> {
        let flight = self.flight.as_ref()?;
        let slice = flight.slice(target, &self.spans);
        Some(Explanation::new(self.seed, slice, self.plan.clone(), self.spans.clone()))
    }

    /// Explain the most forensically interesting event: the last
    /// unresolved guess, falling back to the most recent event. `None`
    /// when the flight recorder is disabled or empty.
    pub fn explain_latest(&self) -> Option<Explanation> {
        let flight = self.flight.as_ref()?;
        let target = flight.last_unresolved_guess().or_else(|| flight.last_matching(|_| true))?;
        self.explain_target(target)
    }

    /// The flight event where guess `id` was opened, when retained:
    /// durable guesses are found by their stamped `guess` field,
    /// volatile ones through their `guess.outstanding` span.
    fn guess_open_event(&self, id: GuessId) -> Option<FlightId> {
        let flight = self.flight.as_ref()?;
        let rec = self.ledger.get(id)?;
        let key = id.0.to_string();
        flight
            .last_matching(|e| {
                e.kind == FlightKind::GuessOpen
                    && e.fields.iter().any(|(k, v)| k == "guess" && *v == key)
            })
            .or_else(|| {
                let span = rec.span?;
                flight
                    .events_for_span(span)
                    .into_iter()
                    .find(|e| e.kind == FlightKind::GuessOpen)
                    .map(|e| e.id)
            })
    }

    /// Explain one guess from the ledger: the slice behind its open
    /// event. `None` when the guess is unknown, the recorder is off, or
    /// the open has been evicted.
    pub fn explain_guess(&self, id: GuessId) -> Option<Explanation> {
        self.explain_target(self.guess_open_event(id)?)
    }

    /// File a crash incident from a [`CrashOutcome`]. Returns the
    /// incident's seq, or `None` when the flight recorder is off (no
    /// slice to file). The explanation is extracted *now*, so later
    /// ring eviction cannot hollow out the record.
    pub fn record_crash_incident(
        &mut self,
        node: NodeId,
        epoch: u64,
        kind: IncidentKind,
        now: SimTime,
        outcome: &CrashOutcome,
    ) -> Option<u64> {
        let target = outcome.flight?;
        let explanation = self.explain_target(target)?;
        let seq = self.incidents.push(
            node,
            epoch,
            kind,
            now,
            target,
            outcome.orphaned.clone(),
            explanation,
        );
        self.metrics.inc_with("incident.recorded", &[("kind", kind.as_str())]);
        Some(seq)
    }

    /// Sweep the ledger for guesses open longer than `deadline` and
    /// file one guess-deadline incident per newly overdue guess
    /// (sweeps are idempotent: a guess is filed at most once).
    /// `epoch_of` supplies each node's current crash epoch — the
    /// runtime reads its status board, the simulator its node slots.
    /// Returns the seqs filed this sweep.
    pub fn sweep_overdue_guesses(
        &mut self,
        now: SimTime,
        deadline: SimDuration,
        epoch_of: impl Fn(NodeId) -> u64,
    ) -> Vec<u64> {
        if self.flight.is_none() {
            return Vec::new();
        }
        let overdue: Vec<(GuessId, Option<NodeId>, String)> = self
            .ledger
            .records()
            .iter()
            .filter(|r| r.is_open() && now.saturating_since(r.opened_at) >= deadline)
            .map(|r| (r.id, r.node, r.op.clone()))
            .collect();
        let mut filed = Vec::new();
        for (id, node, op) in overdue {
            // An overdue guess with no recorded owner lands on n0's lane
            // rather than vanishing from the black box.
            let node = node.unwrap_or(NodeId(0));
            let Some(target) = self.guess_open_event(id) else { continue };
            if !self.incidents.flag_guess(id.0) {
                continue;
            }
            let Some(explanation) = self.explain_target(target) else { continue };
            let seq = self.incidents.push(
                node,
                epoch_of(node),
                IncidentKind::GuessDeadline,
                now,
                target,
                vec![op],
                explanation,
            );
            self.metrics
                .inc_with("incident.recorded", &[("kind", IncidentKind::GuessDeadline.as_str())]);
            filed.push(seq);
        }
        filed
    }

    /// Export the ledger's accounting into the metric registry (call
    /// once, after the run, before reading metrics).
    pub fn export_ledger_metrics(&mut self) {
        self.ledger.export_metrics(&mut self.metrics);
    }

    /// Resolve a still-open guess span at final settlement — for
    /// harnesses whose ground truth is only knowable at report time.
    /// Mirrors [`Context::resolve_guess`]; no-op on spans already
    /// closed (e.g. by a crash).
    pub fn settle_guess(&mut self, span: SpanId, confirmed: bool, now: SimTime) {
        let Some(rec) = self.spans.get(span) else { return };
        if rec.status != SpanStatus::Open {
            return;
        }
        let node = rec.node;
        let outstanding = now.saturating_since(rec.start).as_micros() as f64;
        self.metrics.record("guess.outstanding_us", outstanding);
        let label = node.map_or_else(|| "?".to_owned(), |n| n.to_string());
        let (counter, status) = if confirmed {
            ("guess.confirmed", SpanStatus::Ok)
        } else {
            ("guess.apologies", SpanStatus::Failed)
        };
        self.metrics.inc_with(counter, &[("node", label.as_str())]);
        self.spans.add_field(
            span,
            "resolution",
            if confirmed { "confirmed" } else { "apology" }.to_owned(),
        );
        let outcome = if confirmed { GuessOutcome::Confirmed } else { GuessOutcome::Apologized };
        self.ledger.resolve_span(span, now, outcome);
        if let Some(f) = self.flight.as_mut() {
            f.record(
                now,
                FlightKind::GuessResolve,
                node,
                None,
                Some(span),
                None,
                None,
                vec![
                    ("outcome".to_owned(), outcome.as_str().to_owned()),
                    ("settled".to_owned(), "end-of-run".to_owned()),
                ],
            );
        }
        self.spans.finish_span(span, now, status);
    }
}
