//! Causal spans: following one operation through the simulation.
//!
//! *Building on Quicksand* reasons about where time goes — how long a
//! write sits "stuck in the primary" (§4.2), how long a system acts on a
//! guess before the apology arrives (§5). Counters can say *how often*;
//! only causal attribution can say *where*. This module gives every
//! instrumented operation a [`SpanId`] and stitches the causal tree
//! together automatically:
//!
//! - [`crate::actor::Context::start_span`] opens a span under whatever
//!   span is currently ambient (the one the triggering message or timer
//!   was sent under), allocating ids deterministically from the
//!   simulation — same seed, same tree, byte for byte.
//! - Every `Context::send` issued while a span is ambient produces a
//!   `net.hop` child span whose duration is that message's simulated
//!   network latency (or a zero-length `dropped` span when the network
//!   eats it), so per-hop latency falls out of the tree.
//! - `Context::set_timer` propagates the ambient span into the timer's
//!   callback, covering retry/checkpoint loops.
//! - When a node crashes fail-fast, every span it still has open is
//!   closed with [`SpanStatus::Crashed`] — in-flight work is visible,
//!   not leaked.
//!
//! The **guess-outstanding** span (`Context::begin_guess` /
//! `Context::resolve_guess`) makes the paper's memories/guesses/apologies
//! cycle a measured quantity: it runs from the moment a node acts on
//! local knowledge to the moment the guess is confirmed or apologized
//! for, and lands in the `guess.outstanding_us` histogram.
//!
//! Span names follow `<crate>.<operation>` (`dynamo.put`,
//! `tandem.checkpoint`, `bank.clear_check`); see README.md's
//! Observability section. Export with [`SpanStore::to_jsonl`] (one span
//! per line) or [`SpanStore::to_chrome_trace`] (loadable in Perfetto /
//! `about://tracing`).

use std::fmt;

use crate::actor::NodeId;
use crate::json;
use crate::time::SimTime;

/// Identifies one causal tree (assigned to each root span).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies one span. Allocated densely and deterministically by the
/// simulation, so ids are stable across same-seed runs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// How a span ended (or that it hasn't).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SpanStatus {
    /// Still running.
    Open,
    /// Finished normally.
    Ok,
    /// Finished with an application-level failure.
    Failed,
    /// Closed by the simulator because its owning node crashed.
    Crashed,
    /// A network hop that was dropped (loss, partition, or dead
    /// receiver).
    Dropped,
}

impl SpanStatus {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanStatus::Open => "open",
            SpanStatus::Ok => "ok",
            SpanStatus::Failed => "failed",
            SpanStatus::Crashed => "crashed",
            SpanStatus::Dropped => "dropped",
        }
    }
}

impl fmt::Display for SpanStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One span: a named interval of simulated time on one node, with a
/// causal parent and free-form string fields.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// The causal tree it belongs to.
    pub trace: TraceId,
    /// The span it is causally under, if any.
    pub parent: Option<SpanId>,
    /// Operation name (`<crate>.<operation>`, or `net.hop`).
    pub name: String,
    /// The node that owns the span (`None` for network hops).
    pub node: Option<NodeId>,
    /// When it started.
    pub start: SimTime,
    /// When it finished (`None` while open).
    pub end: Option<SimTime>,
    /// How it ended.
    pub status: SpanStatus,
    /// Extra key/value context (kept in insertion order).
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Duration, if finished.
    pub fn duration_us(&self) -> Option<u64> {
        self.end.map(|e| e.saturating_since(self.start).as_micros())
    }

    /// This span as one Chrome `trace_event` object (the element
    /// [`SpanStore::to_chrome_trace`] emits per span, no trailing
    /// separator). Public so the runtime's telemetry endpoint can
    /// stream a bounded tail of spans in the identical schema.
    pub fn to_chrome_event(&self) -> String {
        let tid = self.node.map(|n| n.0 as i64).unwrap_or(-1);
        let mut args = format!(
            "\"span\":\"{}\",\"trace\":\"{}\",\"status\":\"{}\"",
            self.id, self.trace, self.status
        );
        if let Some(p) = self.parent {
            args.push_str(&format!(",\"parent\":\"{p}\""));
        }
        for (k, v) in &self.fields {
            args.push(',');
            args.push_str(&json::string(k));
            args.push(':');
            args.push_str(&json::string(v));
        }
        match self.end {
            Some(end) => format!(
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
                json::string(&self.name),
                self.start.as_micros(),
                end.saturating_since(self.start).as_micros(),
                tid,
                args
            ),
            None => format!(
                "{{\"name\":{},\"cat\":\"span\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{{}}}}}",
                json::string(&self.name),
                self.start.as_micros(),
                tid,
                args
            ),
        }
    }

    /// One JSON object describing this span (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"span\":\"{}\",\"trace\":\"{}\",\"parent\":{},\"name\":{},\"node\":{},\"start_us\":{},\"end_us\":{},\"status\":\"{}\"",
            self.id,
            self.trace,
            match self.parent {
                Some(p) => format!("\"{p}\""),
                None => "null".to_owned(),
            },
            json::string(&self.name),
            match self.node {
                Some(n) => format!("\"{n}\""),
                None => "null".to_owned(),
            },
            self.start.as_micros(),
            match self.end {
                Some(e) => e.as_micros().to_string(),
                None => "null".to_owned(),
            },
            self.status,
        ));
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(k));
                out.push(':');
                out.push_str(&json::string(v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// All spans recorded by one simulation run, in allocation order.
#[derive(Debug, Default, Clone)]
pub struct SpanStore {
    spans: Vec<SpanRecord>,
    next_trace: u64,
    /// Ids of spans not yet finished, kept sorted for deterministic
    /// crash-close order.
    open: Vec<u64>,
}

impl SpanStore {
    /// An empty store.
    pub fn new() -> Self {
        SpanStore::default()
    }

    /// Open a new span. `parent: None` makes it a root of a fresh trace.
    ///
    /// Actor code should go through [`crate::actor::Context`] (which
    /// handles ambient propagation); this is public for round-based
    /// harnesses that model time themselves.
    pub fn open_span(
        &mut self,
        name: &str,
        node: Option<NodeId>,
        parent: Option<SpanId>,
        start: SimTime,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u64);
        let trace = match parent {
            Some(p) => self.spans[p.0 as usize].trace,
            None => {
                let t = TraceId(self.next_trace);
                self.next_trace += 1;
                t
            }
        };
        self.spans.push(SpanRecord {
            id,
            trace,
            parent,
            name: name.to_owned(),
            node,
            start,
            end: None,
            status: SpanStatus::Open,
            fields: Vec::new(),
        });
        self.open.push(id.0);
        id
    }

    /// Finish `id` (idempotent: finishing a finished span is a no-op, so
    /// a crash-closed span keeps its `crashed` status).
    pub fn finish_span(&mut self, id: SpanId, end: SimTime, status: SpanStatus) {
        let rec = &mut self.spans[id.0 as usize];
        if rec.status != SpanStatus::Open {
            return;
        }
        rec.end = Some(end);
        rec.status = status;
        if let Ok(i) = self.open.binary_search(&id.0) {
            self.open.remove(i);
        }
    }

    /// Append a field to `id`.
    pub fn add_field(&mut self, id: SpanId, key: &str, value: String) {
        self.spans[id.0 as usize].fields.push((key.to_owned(), value));
    }

    /// Close every open span owned by `node` with `Crashed` status.
    pub(crate) fn close_node_spans(&mut self, node: NodeId, at: SimTime) {
        let to_close: Vec<u64> = self
            .open
            .iter()
            .copied()
            .filter(|&i| self.spans[i as usize].node == Some(node))
            .collect();
        for i in to_close {
            self.finish_span(SpanId(i), at, SpanStatus::Crashed);
        }
    }

    /// All spans in allocation order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Look up one span.
    pub fn get(&self, id: SpanId) -> Option<&SpanRecord> {
        self.spans.get(id.0 as usize)
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans still open (e.g. in-flight at the end of the run).
    pub fn open_spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.open.iter().map(|&i| &self.spans[i as usize])
    }

    /// Direct children of `id`, in allocation order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(id))
    }

    /// The roots (spans with no parent), in allocation order.
    pub fn roots(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// JSONL export: one span object per line, allocation order.
    /// Byte-identical across same-seed runs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (the legacy format Perfetto and
    /// `about://tracing` load). Each finished span becomes a complete
    /// (`"ph":"X"`) event on the track of its owning node; open spans
    /// are emitted as instant events so nothing is silently missing.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&s.to_chrome_event());
        }
        out.push_str("\n]\n");
        out
    }

    /// Render the subtree under `id` as an indented text tree with
    /// per-span duration — the thing to print when debugging a latency.
    pub fn render_tree(&self, id: SpanId) -> String {
        let mut out = String::new();
        self.render_into(id, 0, &mut out);
        out
    }

    fn render_into(&self, id: SpanId, depth: usize, out: &mut String) {
        let Some(s) = self.get(id) else { return };
        for _ in 0..depth {
            out.push_str("  ");
        }
        match s.duration_us() {
            Some(d) => out.push_str(&format!("{} [{}] {}us ({})\n", s.name, s.id, d, s.status)),
            None => out.push_str(&format!("{} [{}] open\n", s.name, s.id)),
        }
        let children: Vec<SpanId> = self.children(id).map(|c| c.id).collect();
        for c in children {
            self.render_into(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_get_fresh_traces_and_children_inherit() {
        let mut st = SpanStore::new();
        let a = st.open_span("op.a", Some(NodeId(0)), None, SimTime::ZERO);
        let b = st.open_span("op.b", Some(NodeId(1)), Some(a), SimTime::from_micros(5));
        let c = st.open_span("op.c", Some(NodeId(2)), None, SimTime::from_micros(9));
        assert_eq!(st.get(a).unwrap().trace, st.get(b).unwrap().trace);
        assert_ne!(st.get(a).unwrap().trace, st.get(c).unwrap().trace);
        assert_eq!(st.children(a).count(), 1);
        assert_eq!(st.roots().count(), 2);
    }

    #[test]
    fn finish_is_idempotent_and_keeps_first_status() {
        let mut st = SpanStore::new();
        let a = st.open_span("op", Some(NodeId(0)), None, SimTime::ZERO);
        st.finish_span(a, SimTime::from_micros(3), SpanStatus::Crashed);
        st.finish_span(a, SimTime::from_micros(9), SpanStatus::Ok);
        let rec = st.get(a).unwrap();
        assert_eq!(rec.status, SpanStatus::Crashed);
        assert_eq!(rec.duration_us(), Some(3));
    }

    #[test]
    fn close_node_spans_only_touches_that_node() {
        let mut st = SpanStore::new();
        let a = st.open_span("op.a", Some(NodeId(0)), None, SimTime::ZERO);
        let b = st.open_span("op.b", Some(NodeId(1)), None, SimTime::ZERO);
        st.close_node_spans(NodeId(0), SimTime::from_micros(7));
        assert_eq!(st.get(a).unwrap().status, SpanStatus::Crashed);
        assert_eq!(st.get(b).unwrap().status, SpanStatus::Open);
        assert_eq!(st.open_spans().count(), 1);
    }

    #[test]
    fn exports_are_wellformed() {
        let mut st = SpanStore::new();
        let a = st.open_span("dynamo.put", Some(NodeId(0)), None, SimTime::ZERO);
        st.add_field(a, "key", "\"k1\"".to_owned());
        st.finish_span(a, SimTime::from_micros(42), SpanStatus::Ok);
        st.open_span("net.hop", None, Some(a), SimTime::from_micros(1));
        let jsonl = st.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"name\":\"dynamo.put\""), "{jsonl}");
        assert!(jsonl.contains("\\\"k1\\\""), "escaping: {jsonl}");
        let chrome = st.to_chrome_trace();
        assert!(chrome.starts_with('[') && chrome.trim_end().ends_with(']'));
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"ph\":\"i\""), "open span as instant: {chrome}");
    }

    #[test]
    fn render_tree_shows_nesting() {
        let mut st = SpanStore::new();
        let a = st.open_span("cart.edit", Some(NodeId(0)), None, SimTime::ZERO);
        let h = st.open_span("net.hop", None, Some(a), SimTime::from_micros(1));
        st.finish_span(h, SimTime::from_micros(4), SpanStatus::Ok);
        st.finish_span(a, SimTime::from_micros(9), SpanStatus::Ok);
        let tree = st.render_tree(a);
        assert!(tree.contains("cart.edit"), "{tree}");
        assert!(tree.contains("  net.hop"), "{tree}");
    }
}
