//! The guess/apology audit ledger — §5 of the paper as accounting.
//!
//! *Building on Quicksand* says every loosely-coupled system runs on
//! **memories, guesses, and apologies**: a node acts on its local memory
//! (a guess), and when the rest of the system catches up the guess is
//! either confirmed or apologized for. The substrates in this workspace
//! all make such guesses — a Tandem primary acks a WRITE before the
//! checkpoint lands, a log-shipping primary acks a commit before the
//! backup has the tail, a Dynamo store parks a hint promising to deliver
//! it, a bank branch clears a check against a stale balance, an
//! inventory replica sells from an escrowed share.
//!
//! This module gives every one of those guesses a row in one [`Ledger`]:
//! the operation, the node, the **memory basis** the guess stood on, and
//! — once known — its outcome. Accounting comes out the other side:
//! open/confirmed/apologized/orphaned counts and apology latency
//! percentiles, broken down per substrate, exported through the metrics
//! registry and as deterministic JSON (`--ledger-json` on the bench
//! bins).
//!
//! Two guess lifetimes exist, mirroring the durability split in
//! [`crate::actor::Actor`]:
//!
//! - **Volatile** guesses (opened via `Context::begin_guess*`) live in
//!   the guessing node's memory; a crash orphans them — the node that
//!   owed the apology forgot it owed one, which the ledger records as
//!   [`GuessOutcome::Orphaned`] rather than pretending the question was
//!   answered.
//! - **Durable** guesses (opened via `Context::open_durable_guess` or
//!   [`Ledger::open`] directly) survive crashes, like a hint parked on
//!   disk; they stay open until something resolves them, and an
//!   unresolved durable guess after quiescence is a real finding.

use std::collections::BTreeMap;
use std::fmt;

use crate::actor::NodeId;
use crate::json;
use crate::metrics::{Histogram, MetricSet};
use crate::span::SpanId;
use crate::time::SimTime;

/// Identifies one guess in a [`Ledger`] (dense, in open order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GuessId(pub u64);

/// How a guess ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuessOutcome {
    /// The rest of the system agreed; no apology owed.
    Confirmed,
    /// The guess was wrong; an apology was issued.
    Apologized,
    /// The guessing node crashed with the guess in volatile memory —
    /// the question was never answered.
    Orphaned,
}

impl GuessOutcome {
    /// Short stable label (used in JSON and rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            GuessOutcome::Confirmed => "confirmed",
            GuessOutcome::Apologized => "apologized",
            GuessOutcome::Orphaned => "orphaned",
        }
    }
}

impl fmt::Display for GuessOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One guess: an optimistic action taken on local memory, awaiting the
/// system's verdict.
#[derive(Debug, Clone)]
pub struct GuessRecord {
    /// The guess's id.
    pub id: GuessId,
    /// The operation, named `<substrate>.<op>` (e.g. `tandem.write_ack`).
    pub op: String,
    /// The node that guessed.
    pub node: Option<NodeId>,
    /// The memory the guess stood on, in the instrumenter's words
    /// (e.g. `"w-of-n quorum"`, `"local balance as of round 12"`).
    pub basis: String,
    /// When the guess was made.
    pub opened_at: SimTime,
    /// When the verdict arrived (`None` while open).
    pub resolved_at: Option<SimTime>,
    /// The verdict (`None` while open).
    pub outcome: Option<GuessOutcome>,
    /// The `guess.outstanding` span tracking it, for volatile guesses.
    pub span: Option<SpanId>,
}

impl GuessRecord {
    /// The substrate prefix of `op` (the part before the first `.`).
    pub fn substrate(&self) -> &str {
        self.op.split('.').next().unwrap_or(&self.op)
    }

    /// True while the verdict is pending.
    pub fn is_open(&self) -> bool {
        self.outcome.is_none()
    }

    /// One JSON object describing this guess.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"op\":{},\"basis\":{},\"opened_at_us\":{}",
            self.id.0,
            json::string(&self.op),
            json::string(&self.basis),
            self.opened_at.as_micros()
        );
        if let Some(n) = self.node {
            out.push_str(&format!(",\"node\":\"{n}\""));
        }
        if let Some(at) = self.resolved_at {
            out.push_str(&format!(",\"resolved_at_us\":{}", at.as_micros()));
        }
        if let Some(o) = self.outcome {
            out.push_str(&format!(",\"outcome\":\"{o}\""));
        }
        out.push('}');
        out
    }
}

/// Accounting for one substrate's guesses inside a
/// [`LedgerAccounting`].
#[derive(Debug, Clone, Default)]
pub struct SubstrateAccount {
    /// Guesses opened.
    pub opened: u64,
    /// Guesses confirmed.
    pub confirmed: u64,
    /// Guesses apologized for.
    pub apologized: u64,
    /// Guesses orphaned by crashes.
    pub orphaned: u64,
    /// Guesses still open.
    pub open: u64,
    /// Open→confirm windows, µs.
    pub confirm_latency_us: Histogram,
    /// Open→apology windows, µs.
    pub apology_latency_us: Histogram,
}

impl SubstrateAccount {
    fn absorb(&mut self, other: &SubstrateAccount) {
        self.opened += other.opened;
        self.confirmed += other.confirmed;
        self.apologized += other.apologized;
        self.orphaned += other.orphaned;
        self.open += other.open;
        for v in other.confirm_latency_us.values() {
            self.confirm_latency_us.record(v);
        }
        for v in other.apology_latency_us.values() {
            self.apology_latency_us.record(v);
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"opened\":{},\"confirmed\":{},\"apologized\":{},\"orphaned\":{},\"open\":{},\
             \"confirm_latency_us\":{},\"apology_latency_us\":{}}}",
            self.opened,
            self.confirmed,
            self.apologized,
            self.orphaned,
            self.open,
            self.confirm_latency_us.summary().to_json(),
            self.apology_latency_us.summary().to_json()
        )
    }
}

/// End-to-end guess accounting: totals plus a per-substrate breakdown.
/// Mergeable across runs (a chaos sweep aggregates one per seed) and
/// rendered as deterministic JSON.
#[derive(Debug, Clone, Default)]
pub struct LedgerAccounting {
    /// Per-substrate accounts, keyed by the op's substrate prefix.
    pub per_substrate: BTreeMap<String, SubstrateAccount>,
}

impl LedgerAccounting {
    /// Guesses opened, across every substrate.
    pub fn opened(&self) -> u64 {
        self.per_substrate.values().map(|a| a.opened).sum()
    }

    /// Guesses confirmed, across every substrate.
    pub fn confirmed(&self) -> u64 {
        self.per_substrate.values().map(|a| a.confirmed).sum()
    }

    /// Guesses apologized for, across every substrate.
    pub fn apologized(&self) -> u64 {
        self.per_substrate.values().map(|a| a.apologized).sum()
    }

    /// Guesses orphaned by crashes, across every substrate.
    pub fn orphaned(&self) -> u64 {
        self.per_substrate.values().map(|a| a.orphaned).sum()
    }

    /// Guesses still open — after quiescence this should be zero; a
    /// non-zero count means somebody promised and never reconciled.
    pub fn open(&self) -> u64 {
        self.per_substrate.values().map(|a| a.open).sum()
    }

    /// True when no guess is left open.
    pub fn is_settled(&self) -> bool {
        self.open() == 0
    }

    /// Merge another accounting into this one (sweep aggregation).
    pub fn merge(&mut self, other: &LedgerAccounting) {
        for (k, v) in &other.per_substrate {
            self.per_substrate.entry(k.clone()).or_default().absorb(v);
        }
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"opened\":{},\"confirmed\":{},\"apologized\":{},\"orphaned\":{},\"open\":{},\
             \"per_substrate\":{{",
            self.opened(),
            self.confirmed(),
            self.apologized(),
            self.orphaned(),
            self.open()
        );
        for (i, (k, v)) in self.per_substrate.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::string(k));
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for LedgerAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ledger: {} opened, {} confirmed, {} apologized, {} orphaned, {} open",
            self.opened(),
            self.confirmed(),
            self.apologized(),
            self.orphaned(),
            self.open()
        )?;
        for (k, v) in &self.per_substrate {
            writeln!(
                f,
                "  {k}: {} opened, {} confirmed, {} apologized, {} orphaned, {} open, \
                 apology p99 {:.0}us",
                v.opened,
                v.confirmed,
                v.apologized,
                v.orphaned,
                v.open,
                v.apology_latency_us.summary().p99
            )?;
        }
        Ok(())
    }
}

/// The audit ledger for one run: every guess, its basis, and its
/// verdict.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    records: Vec<GuessRecord>,
    /// Span id → guess index, for volatile guesses resolved by span.
    by_span: BTreeMap<u64, usize>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Open a durable guess (no span; survives crashes). Round-based
    /// harnesses without a [`crate::world::Simulation`] feed the ledger
    /// through this directly.
    pub fn open(&mut self, op: &str, node: Option<NodeId>, basis: &str, at: SimTime) -> GuessId {
        self.open_inner(op, node, basis, at, None)
    }

    /// Open a volatile guess tracked by its `guess.outstanding` span.
    pub(crate) fn open_for_span(
        &mut self,
        op: &str,
        node: Option<NodeId>,
        basis: &str,
        at: SimTime,
        span: SpanId,
    ) -> GuessId {
        let id = self.open_inner(op, node, basis, at, Some(span));
        self.by_span.insert(span.0, id.0 as usize);
        id
    }

    fn open_inner(
        &mut self,
        op: &str,
        node: Option<NodeId>,
        basis: &str,
        at: SimTime,
        span: Option<SpanId>,
    ) -> GuessId {
        let id = GuessId(self.records.len() as u64);
        self.records.push(GuessRecord {
            id,
            op: op.to_owned(),
            node,
            basis: basis.to_owned(),
            opened_at: at,
            resolved_at: None,
            outcome: None,
            span,
        });
        id
    }

    /// Record the verdict on a guess. Resolving an already-resolved
    /// guess is a no-op (the first verdict stands).
    pub fn resolve(&mut self, id: GuessId, at: SimTime, outcome: GuessOutcome) {
        if let Some(rec) = self.records.get_mut(id.0 as usize) {
            if rec.outcome.is_none() {
                rec.resolved_at = Some(at);
                rec.outcome = Some(outcome);
            }
        }
    }

    /// Resolve the volatile guess tracked by `span`, if one is open.
    pub(crate) fn resolve_span(&mut self, span: SpanId, at: SimTime, outcome: GuessOutcome) {
        if let Some(&ix) = self.by_span.get(&span.0) {
            self.resolve(GuessId(ix as u64), at, outcome);
        }
    }

    /// Orphan every open **volatile** guess held by `node` — called on
    /// crash, because the guess lived in the node's memory and the
    /// memory is gone. Durable (span-less) guesses survive. Returns the
    /// span and op of each orphaned guess so the caller can mark the
    /// orphaning in the flight recorder.
    pub(crate) fn orphan_node(&mut self, node: NodeId, at: SimTime) -> Vec<(SpanId, String)> {
        let mut orphaned = Vec::new();
        for rec in &mut self.records {
            if rec.node == Some(node) && rec.outcome.is_none() {
                if let Some(span) = rec.span {
                    rec.resolved_at = Some(at);
                    rec.outcome = Some(GuessOutcome::Orphaned);
                    orphaned.push((span, rec.op.clone()));
                }
            }
        }
        orphaned
    }

    /// Every guess, in open order.
    pub fn records(&self) -> &[GuessRecord] {
        &self.records
    }

    /// Look up one guess.
    pub fn get(&self, id: GuessId) -> Option<&GuessRecord> {
        self.records.get(id.0 as usize)
    }

    /// Guesses recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no guess was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Guesses still awaiting a verdict.
    pub fn open_count(&self) -> u64 {
        self.records.iter().filter(|r| r.is_open()).count() as u64
    }

    /// True when every guess has a verdict — the post-quiescence
    /// invariant every substrate must satisfy.
    pub fn is_settled(&self) -> bool {
        self.open_count() == 0
    }

    /// Roll the ledger up into per-substrate accounting.
    pub fn accounting(&self) -> LedgerAccounting {
        let mut acc = LedgerAccounting::default();
        for rec in &self.records {
            let entry = acc.per_substrate.entry(rec.substrate().to_owned()).or_default();
            entry.opened += 1;
            match rec.outcome {
                Some(GuessOutcome::Confirmed) => {
                    entry.confirmed += 1;
                    if let Some(at) = rec.resolved_at {
                        entry
                            .confirm_latency_us
                            .record(at.saturating_since(rec.opened_at).as_micros() as f64);
                    }
                }
                Some(GuessOutcome::Apologized) => {
                    entry.apologized += 1;
                    if let Some(at) = rec.resolved_at {
                        entry
                            .apology_latency_us
                            .record(at.saturating_since(rec.opened_at).as_micros() as f64);
                    }
                }
                Some(GuessOutcome::Orphaned) => entry.orphaned += 1,
                None => entry.open += 1,
            }
        }
        acc
    }

    /// Export the accounting into the run's metric registry:
    /// `ledger.opened` / `.confirmed` / `.apologized` / `.orphaned` /
    /// `.open` counters labeled by substrate, plus the
    /// `ledger.confirm_latency_us` and `ledger.apology_latency_us`
    /// histograms.
    pub fn export_metrics(&self, metrics: &mut MetricSet) {
        let acc = self.accounting();
        for (substrate, a) in &acc.per_substrate {
            let labels = [("substrate", substrate.as_str())];
            metrics.add_with("ledger.opened", a.opened, &labels);
            metrics.add_with("ledger.confirmed", a.confirmed, &labels);
            metrics.add_with("ledger.apologized", a.apologized, &labels);
            metrics.add_with("ledger.orphaned", a.orphaned, &labels);
            metrics.add_with("ledger.open", a.open, &labels);
            for v in a.confirm_latency_us.values() {
                metrics.record("ledger.confirm_latency_us", v);
            }
            for v in a.apology_latency_us.values() {
                metrics.record("ledger.apology_latency_us", v);
            }
        }
    }

    /// Deterministic JSON: the accounting plus every record.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"accounting\":{},\"records\":[", self.accounting().to_json());
        for (i, rec) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rec.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn lifecycle_counts_and_latencies() {
        let mut l = Ledger::new();
        let a = l.open("tandem.write_ack", Some(NodeId(1)), "primary memory", t(10));
        let b = l.open("tandem.write_ack", Some(NodeId(1)), "primary memory", t(20));
        let c = l.open("bank.clear_check", Some(NodeId(2)), "local balance", t(30));
        l.resolve(a, t(110), GuessOutcome::Confirmed);
        l.resolve(b, t(520), GuessOutcome::Apologized);
        assert!(!l.is_settled());
        let acc = l.accounting();
        assert_eq!(acc.opened(), 3);
        assert_eq!(acc.confirmed(), 1);
        assert_eq!(acc.apologized(), 1);
        assert_eq!(acc.open(), 1);
        let tandem = &acc.per_substrate["tandem"];
        assert_eq!(tandem.apology_latency_us.summary().max, 500.0);
        l.resolve(c, t(600), GuessOutcome::Confirmed);
        assert!(l.is_settled());
    }

    #[test]
    fn first_verdict_stands() {
        let mut l = Ledger::new();
        let g = l.open("dynamo.hint_handoff", Some(NodeId(0)), "parked hint", t(1));
        l.resolve(g, t(2), GuessOutcome::Confirmed);
        l.resolve(g, t(3), GuessOutcome::Apologized);
        assert_eq!(l.get(g).unwrap().outcome, Some(GuessOutcome::Confirmed));
    }

    #[test]
    fn crash_orphans_volatile_but_not_durable_guesses() {
        let mut l = Ledger::new();
        let volatile =
            l.open_for_span("logship.commit_ack", Some(NodeId(3)), "wal", t(5), SpanId(9));
        let durable = l.open("dynamo.hint_handoff", Some(NodeId(3)), "parked hint", t(6));
        l.orphan_node(NodeId(3), t(50));
        assert_eq!(l.get(volatile).unwrap().outcome, Some(GuessOutcome::Orphaned));
        assert!(l.get(durable).unwrap().is_open(), "durable guesses survive the crash");
    }

    #[test]
    fn merge_aggregates_across_runs() {
        let mut a = Ledger::new();
        let g = a.open("cart.put", Some(NodeId(0)), "view", t(1));
        a.resolve(g, t(2), GuessOutcome::Confirmed);
        let mut b = Ledger::new();
        b.open("cart.put", Some(NodeId(1)), "view", t(3));
        let mut total = a.accounting();
        total.merge(&b.accounting());
        assert_eq!(total.opened(), 2);
        assert_eq!(total.open(), 1);
        assert!(!total.is_settled());
    }

    #[test]
    fn json_is_deterministic() {
        let mut l = Ledger::new();
        let g = l.open("bank.clear_check", Some(NodeId(1)), "balance", t(4));
        l.resolve(g, t(9), GuessOutcome::Apologized);
        assert_eq!(l.to_json(), l.to_json());
        assert!(l.to_json().contains("\"apologized\":1"), "{}", l.to_json());
    }
}
