//! Log-bucketed histograms for wall-clock latencies.
//!
//! The simulator's [`crate::metrics::Histogram`] keeps every sample and
//! answers exact percentiles — affordable because a deterministic run
//! records a bounded number of values and is read once, after the run.
//! A wall-clock runtime serving live traffic breaks both assumptions:
//! samples arrive forever, and the operator endpoint reads percentiles
//! *while* recording continues. [`LogHistogram`] is the runtime-shaped
//! answer, in the HDR-histogram tradition:
//!
//! - **Bounded memory**: a fixed array of buckets whose boundaries grow
//!   geometrically (several sub-buckets per power of two), so any
//!   microsecond latency from 1µs to ~years lands in one of a few
//!   hundred `u64` counters with a bounded relative error.
//! - **Mergeable**: two histograms with the same layout add bucket-wise
//!   ([`LogHistogram::merge`]) — `loadgen` and `serve` can each keep
//!   their own and still report one shape, and a sweep can aggregate
//!   per-thread recordings without keeping raw samples.
//! - **Subtractable**: counts only ever grow, so
//!   [`LogHistogram::delta_since`] recovers "the last 10 seconds" from
//!   two periodic snapshots — the windowed p99 the telemetry endpoint
//!   serves is a first-class derived value, not a second recording path.
//!
//! Percentiles interpolate linearly inside the winning bucket, so the
//! quantization error is bounded by the bucket's relative width
//! (`2^(1/SUB_BUCKETS)` ≈ 9%), which is the honest precision to claim
//! for wall-clock numbers anyway.

use crate::json;
use crate::metrics::Histogram;

/// Sub-buckets per power of two. 8 gives bucket boundaries every
/// `2^(1/8)` ≈ 1.09x — sub-10% relative error, 50-year range in 376
/// buckets.
const SUB_BUCKETS: usize = 8;

/// Powers of two covered (microsecond values up to `2^47`µs ≈ 4.5
/// years; larger samples clamp into the last bucket).
const OCTAVES: usize = 47;

/// Total bucket count: one underflow bucket for values `< 1.0`, then
/// `OCTAVES * SUB_BUCKETS` geometric buckets.
const BUCKETS: usize = 1 + OCTAVES * SUB_BUCKETS;

/// A fixed-layout log-bucketed histogram of non-negative `f64` samples
/// (by convention: microseconds). See the module docs for why this
/// exists next to the exact [`Histogram`].
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.total)
            .field("p50", &self.clone().percentile(50.0))
            .field("p99", &self.clone().percentile(99.0))
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Index of the bucket `v` lands in.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 {
        // NaN and sub-1.0 samples (including negatives) share the
        // underflow bucket: the layout's floor is 1µs.
        return 0;
    }
    // `as usize` saturates (infinity -> usize::MAX), so add with
    // saturation too before clamping into the top bucket.
    let idx = (v.log2() * SUB_BUCKETS as f64).floor() as usize;
    idx.saturating_add(1).min(BUCKETS - 1)
}

/// Lower bound of bucket `i` (0 for the underflow bucket).
fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        2f64.powf((i - 1) as f64 / SUB_BUCKETS as f64)
    }
}

/// Upper bound of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    2f64.powf(i as f64 / SUB_BUCKETS as f64)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { counts: Box::new([0u64; BUCKETS]), total: 0 }
    }

    /// Build one from an exact [`Histogram`]'s samples — the bridge
    /// that lets a run recorded through the shared `MetricSet` be
    /// reported in the runtime's bucketed shape.
    pub fn from_exact(h: &Histogram) -> Self {
        let mut lh = LogHistogram::new();
        for v in h.values() {
            lh.record(v);
        }
        lh
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples.
    pub fn record_n(&mut self, v: f64, n: u64) {
        self.counts[bucket_index(v)] += n;
        self.total += n;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Add another histogram's counts into this one (same fixed layout,
    /// so merging is exact).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The samples recorded since `earlier` was captured, assuming
    /// `earlier` is a past snapshot of this histogram (counts are
    /// monotone, so bucket-wise saturating subtraction is exact). This
    /// is what turns two periodic snapshots into "p99 over the last
    /// window".
    pub fn delta_since(&self, earlier: &LogHistogram) -> LogHistogram {
        let mut d = LogHistogram::new();
        for (i, (a, b)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            d.counts[i] = a.saturating_sub(*b);
            d.total += d.counts[i];
        }
        d
    }

    /// Estimated percentile (`p` in `[0, 100]`): find the bucket holding
    /// the target rank and interpolate linearly inside it. Returns 0.0
    /// when empty. Error is bounded by the bucket width (≈9% relative).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0) * self.total as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c;
            if (next as f64) >= target {
                let into = (target - seen as f64).max(0.0) / c as f64;
                let (lo, hi) = (bucket_lower(i), bucket_upper(i));
                return lo + (hi - lo) * into;
            }
            seen = next;
        }
        // Rounding pushed the target past the last sample: the highest
        // non-empty bucket's upper bound is the honest answer.
        bucket_upper(self.counts.iter().rposition(|&c| c > 0).unwrap_or(0))
    }

    /// Upper bound of the highest non-empty bucket (≈ max sample), or
    /// 0.0 when empty.
    pub fn max_bound(&self) -> f64 {
        match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => bucket_upper(i),
            None => 0.0,
        }
    }

    /// Lower bound of the lowest non-empty bucket (≈ min sample), or
    /// 0.0 when empty.
    pub fn min_bound(&self) -> f64 {
        match self.counts.iter().position(|&c| c > 0) {
            Some(i) => bucket_lower(i),
            None => 0.0,
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs —
    /// the shape a Prometheus-style cumulative exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }

    /// One deterministic JSON object: count plus the quantiles a
    /// dashboard line needs.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"n\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"min\": {}, \"max\": {}}}",
            self.total,
            json::float(round2(self.percentile(50.0))),
            json::float(round2(self.percentile(90.0))),
            json::float(round2(self.percentile(99.0))),
            json::float(round2(self.min_bound())),
            json::float(round2(self.max_bound())),
        )
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_within_bucket_error() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v as f64);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.10, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.10, "p99 {p99}");
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3.0, 700.0, 12_000.0] {
            a.record(v);
            both.record(v);
        }
        for v in [9.0, 90.0, 900_000.0] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), both.percentile(p), "p{p}");
        }
    }

    #[test]
    fn delta_recovers_the_window() {
        let mut h = LogHistogram::new();
        h.record(100.0);
        h.record(200.0);
        let snap = h.clone();
        h.record(50_000.0);
        h.record(60_000.0);
        let window = h.delta_since(&snap);
        assert_eq!(window.count(), 2);
        let p50 = window.percentile(50.0);
        assert!(p50 > 40_000.0, "window p50 sees only the new samples: {p50}");
    }

    #[test]
    fn from_exact_matches_direct_recording() {
        let mut exact = Histogram::new();
        let mut log = LogHistogram::new();
        for v in [1.0, 17.0, 450.0, 88_123.0] {
            exact.record(v);
            log.record(v);
        }
        let converted = LogHistogram::from_exact(&exact);
        assert_eq!(converted.count(), log.count());
        assert_eq!(converted.percentile(99.0), log.percentile(99.0));
    }

    #[test]
    fn underflow_overflow_and_empty_are_tame() {
        let mut h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.max_bound(), 0.0);
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(1e300); // clamps into the last bucket
        assert_eq!(h.count(), 4);
        assert!(h.percentile(0.0) >= 0.0);
        assert!(h.max_bound() > 0.0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_complete() {
        let mut h = LogHistogram::new();
        for v in [2.0, 2.1, 300.0, 4_000.0] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, 4);
        let mut prev = 0;
        for (bound, cum) in &buckets {
            assert!(*cum >= prev);
            assert!(*bound > 0.0);
            prev = *cum;
        }
    }

    #[test]
    fn delta_across_an_empty_window_is_empty() {
        let mut h = LogHistogram::new();
        h.record(42.0);
        h.record(7_000.0);
        let snap = h.clone();
        // Nothing recorded between the snapshots: the window histogram
        // must be truly empty, not echo the base counts.
        let window = h.delta_since(&snap);
        assert!(window.is_empty());
        assert_eq!(window.count(), 0);
        assert_eq!(window.percentile(50.0), 0.0);
        assert_eq!(window.percentile(99.0), 0.0);
        assert_eq!(window.max_bound(), 0.0);
        assert!(window.cumulative_buckets().is_empty());
        // Two empty snapshots behave the same way.
        let empty = LogHistogram::new();
        assert!(empty.delta_since(&LogHistogram::new()).is_empty());
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges_keeps_both_tails() {
        // `low` lives entirely in single-digit microseconds, `high`
        // entirely in the tens of seconds — no shared bucket.
        let mut low = LogHistogram::new();
        for _ in 0..99 {
            low.record(2.0);
        }
        let mut high = LogHistogram::new();
        high.record(30_000_000.0);
        assert!(low.max_bound() < high.min_bound(), "ranges must be disjoint");

        low.merge(&high);
        assert_eq!(low.count(), 100);
        // The low tail still reads like the low cluster...
        let p50 = low.percentile(50.0);
        assert!((1.0..4.0).contains(&p50), "p50 {p50}");
        // ...and the single high sample owns the extreme tail.
        let p100 = low.percentile(100.0);
        assert!(p100 > 20_000_000.0, "p100 {p100}");
        assert!(low.max_bound() > 20_000_000.0);
        // Bucket-wise the merge is exact: cumulative total is the sum.
        assert_eq!(low.cumulative_buckets().last().unwrap().1, 100);
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        // Everything past 2^47 µs lands in the last bucket; wildly
        // different magnitudes up there become indistinguishable (and
        // infinity joins them) rather than panicking or wrapping.
        let mut h = LogHistogram::new();
        h.record(1e30);
        h.record(1e300);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 1, "all three share the saturated top bucket");
        assert_eq!(buckets[0].1, 3);
        // The reported bound is the layout's ceiling, not the sample.
        assert_eq!(h.max_bound(), h.min_bound() * 2f64.powf(1.0 / 8.0));
        assert!(h.max_bound() < 1e30, "bound comes from the layout, not the sample");
        // Percentiles stay inside the bucket instead of extrapolating.
        assert!(h.percentile(99.0) <= h.max_bound());
        assert!(h.percentile(0.0) >= h.min_bound());
    }

    #[test]
    fn json_is_deterministic_and_complete() {
        let mut h = LogHistogram::new();
        h.record(10.0);
        h.record(1000.0);
        assert_eq!(h.to_json(), h.to_json());
        for key in ["\"n\": 2", "\"p50\":", "\"p99\":", "\"max\":"] {
            assert!(h.to_json().contains(key), "{}", h.to_json());
        }
    }
}
