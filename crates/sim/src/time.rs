//! Virtual time for the discrete-event simulator.
//!
//! All simulated clocks are driven by the event loop in
//! [`crate::world::Simulation`]; nothing in the workspace reads the wall
//! clock. Time is measured in integer microseconds, which is fine-grained
//! enough to express sub-millisecond bus hops (the Tandem interconnect)
//! and coarse enough to sweep multi-second anti-entropy intervals without
//! overflow: `u64` microseconds covers ~584,000 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in microseconds since the start of
/// the run.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event a simulation will ever schedule.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// An instant `us` microseconds after the start of the run.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// An instant `ms` milliseconds after the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// An instant `s` seconds after the start of the run.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the start of the run, as a float (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the start of the run, as a float (for reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Length of the span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length of the span in milliseconds, as a float (for reports).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is a legitimate case.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + SimDuration::ZERO, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }

    #[test]
    fn display_picks_natural_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7ms");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
