//! The application process: generates OLTP transactions, drives the
//! WRITE → flush → commit protocol, retries across failures, and reacts
//! to takeovers the way §3 describes — transparently under DP1, by
//! accepting an abort under DP2.

use std::collections::BTreeSet;

use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration, SimTime};

use crate::msg::TandemMsg;
use crate::types::{Mode, TxnId, WriteId};

const TAG_KIND_SHIFT: u64 = 48;
const TAG_NEXT_TXN: u64 = 1;
const TAG_RETRY: u64 = 2;

fn tag(kind: u64, seq: u64) -> u64 {
    (kind << TAG_KIND_SHIFT) | (seq & ((1 << TAG_KIND_SHIFT) - 1))
}

fn tag_kind(t: u64) -> u64 {
    t >> TAG_KIND_SHIFT
}

fn tag_seq(t: u64) -> u64 {
    t & ((1 << TAG_KIND_SHIFT) - 1)
}

/// Routing entry for one disk-process pair as the application sees it.
#[derive(Debug, Clone)]
pub struct DpRoute {
    /// The configured primary.
    pub primary: NodeId,
    /// The configured backup.
    pub backup: NodeId,
    /// Where requests go right now; takeover notices update it, so the
    /// pair can fail over (and, after reintegration, fail back).
    pub current: NodeId,
}

impl DpRoute {
    fn target(&self) -> NodeId {
        self.current
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Writing,
    Flushing,
    CommitWait,
}

#[derive(Debug)]
struct TxnRun {
    id: TxnId,
    started: SimTime,
    /// Planned writes: (dp index, key, value).
    writes: Vec<(usize, u64, u64)>,
    next_write: usize,
    write_sent_at: SimTime,
    dirtied: BTreeSet<usize>,
    flush_waiting: BTreeSet<usize>,
    phase: Phase,
}

/// An OLTP application process.
#[derive(Debug)]
pub struct AppProc {
    /// This process's id (the `app` half of its transaction ids).
    pub id: u32,
    routes: Vec<DpRoute>,
    adp: NodeId,
    txns_total: u64,
    writes_per_txn: u32,
    mean_interarrival: SimDuration,
    retry_timeout: SimDuration,
    key_space: u64,

    seq: u64,
    current: Option<TxnRun>,
    /// Transactions this process saw commit (durably acknowledged).
    pub committed: Vec<TxnId>,
    /// Transactions this process aborted.
    pub aborted: Vec<TxnId>,
}

impl AppProc {
    /// Build an application process that will run `txns_total`
    /// transactions of `writes_per_txn` writes each.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        routes: Vec<DpRoute>,
        adp: NodeId,
        txns_total: u64,
        writes_per_txn: u32,
        mean_interarrival: SimDuration,
        retry_timeout: SimDuration,
    ) -> Self {
        AppProc {
            id,
            routes,
            adp,
            txns_total,
            writes_per_txn,
            mean_interarrival,
            retry_timeout,
            key_space: 1024,
            seq: 0,
            current: None,
            committed: Vec::new(),
            aborted: Vec::new(),
        }
    }

    /// Transactions neither committed nor aborted when the run ended.
    pub fn unresolved(&self) -> u64 {
        self.seq - self.committed.len() as u64 - self.aborted.len() as u64
    }

    fn schedule_next(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        if self.seq >= self.txns_total {
            return;
        }
        let mean = self.mean_interarrival.as_micros() as f64;
        let delay = SimDuration::from_micros(ctx.rng().exp_micros(mean));
        ctx.set_timer(delay, tag(TAG_NEXT_TXN, self.seq));
    }

    fn start_txn(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        debug_assert!(self.current.is_none());
        let id = TxnId { app: self.id, seq: self.seq };
        self.seq += 1;
        let n_dps = self.routes.len();
        let mut writes = Vec::with_capacity(self.writes_per_txn as usize);
        let mut dirtied = BTreeSet::new();
        for _ in 0..self.writes_per_txn {
            let key = ctx.rng().gen_range(0..self.key_space);
            let value = ctx.rng().gen::<u64>();
            let dp = (key % n_dps as u64) as usize;
            dirtied.insert(dp);
            writes.push((dp, key, value));
        }
        self.current = Some(TxnRun {
            id,
            started: ctx.now(),
            writes,
            next_write: 0,
            write_sent_at: ctx.now(),
            dirtied,
            flush_waiting: BTreeSet::new(),
            phase: Phase::Writing,
        });
        self.send_current_write(ctx);
        self.arm_retry(ctx);
    }

    fn arm_retry(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        if let Some(txn) = &self.current {
            ctx.set_timer(self.retry_timeout, tag(TAG_RETRY, txn.id.seq));
        }
    }

    fn send_current_write(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        let me = ctx.me();
        let Some(txn) = &mut self.current else { return };
        let (dp, key, value) = txn.writes[txn.next_write];
        let write = WriteId { txn: txn.id, idx: txn.next_write as u32 };
        txn.write_sent_at = ctx.now();
        let target = self.routes[dp].target();
        ctx.send(target, TandemMsg::WriteReq { write, key, value, resp_to: me });
    }

    fn begin_flush(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        let me = ctx.me();
        let Some(txn) = &mut self.current else { return };
        txn.phase = Phase::Flushing;
        txn.flush_waiting = txn.dirtied.clone();
        let id = txn.id;
        let targets: Vec<NodeId> =
            txn.flush_waiting.iter().map(|dp| self.routes[*dp].target()).collect();
        for t in targets {
            ctx.send(t, TandemMsg::FlushReq { txn: id, resp_to: me });
        }
    }

    fn send_commit(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        let me = ctx.me();
        let Some(txn) = &mut self.current else { return };
        txn.phase = Phase::CommitWait;
        ctx.send(self.adp, TandemMsg::CommitRecord { txn: txn.id, resp_to: me });
    }

    fn abort_current(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        let Some(txn) = self.current.take() else { return };
        for dp in &txn.dirtied {
            let target = self.routes[*dp].target();
            ctx.send(target, TandemMsg::AbortTxn { txn: txn.id });
        }
        ctx.metrics().inc("tandem.txns_aborted");
        self.aborted.push(txn.id);
        self.schedule_next(ctx);
    }
}

impl Actor<TandemMsg> for AppProc {
    fn on_start(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TandemMsg>, t: u64) {
        match tag_kind(t) {
            TAG_NEXT_TXN if self.current.is_none() && tag_seq(t) == self.seq => {
                self.start_txn(ctx);
            }
            TAG_NEXT_TXN => {}
            TAG_RETRY => {
                let Some(txn) = &self.current else { return };
                if txn.id.seq != tag_seq(t) {
                    return; // stale timer from a finished transaction
                }
                match txn.phase {
                    Phase::Writing => self.send_current_write(ctx),
                    Phase::Flushing => {
                        let me = ctx.me();
                        let id = txn.id;
                        let targets: Vec<NodeId> =
                            txn.flush_waiting.iter().map(|dp| self.routes[*dp].target()).collect();
                        for t in targets {
                            ctx.send(t, TandemMsg::FlushReq { txn: id, resp_to: me });
                        }
                    }
                    Phase::CommitWait => {
                        let me = ctx.me();
                        ctx.send(self.adp, TandemMsg::CommitRecord { txn: txn.id, resp_to: me });
                    }
                }
                self.arm_retry(ctx);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TandemMsg>, _from: NodeId, msg: TandemMsg) {
        match msg {
            TandemMsg::WriteAck { write } => {
                let Some(txn) = &mut self.current else { return };
                if write.txn != txn.id
                    || txn.phase != Phase::Writing
                    || write.idx != txn.next_write as u32
                {
                    return; // stale or duplicate ack
                }
                let lat = ctx.now().saturating_since(txn.write_sent_at);
                ctx.metrics().record("tandem.write_ack_us", lat.as_micros() as f64);
                txn.next_write += 1;
                if txn.next_write < txn.writes.len() {
                    self.send_current_write(ctx);
                } else {
                    self.begin_flush(ctx);
                }
            }
            TandemMsg::FlushDone { txn: id, dp } => {
                let n_dps = self.routes.len();
                let Some(txn) = &mut self.current else { return };
                if txn.id != id || txn.phase != Phase::Flushing {
                    return;
                }
                let _ = n_dps;
                // Map DpId back to route index (they coincide by layout).
                txn.flush_waiting.remove(&(dp.0 as usize));
                if txn.flush_waiting.is_empty() {
                    self.send_commit(ctx);
                }
            }
            TandemMsg::CommitDurable { txn: id } => {
                let Some(txn) = &self.current else { return };
                if txn.id != id {
                    return;
                }
                let now = ctx.now();
                let lat = now.saturating_since(txn.started);
                ctx.metrics().record("tandem.commit_us", lat.as_micros() as f64);
                ctx.metrics().record("tandem.commit_at_us", now.as_micros() as f64);
                ctx.metrics().inc("tandem.txns_committed");
                self.committed.push(id);
                self.current = None;
                self.schedule_next(ctx);
            }
            TandemMsg::TakeoverNotice { dp, mode, new_primary } => {
                let dp_idx = dp.0 as usize;
                if let Some(route) = self.routes.get_mut(dp_idx) {
                    route.current = new_primary;
                }
                let Some(txn) = &self.current else { return };
                if !txn.dirtied.contains(&dp_idx) {
                    return;
                }
                match (mode, txn.phase) {
                    // DP2: the buffered writes died with the primary —
                    // the transaction aborts (unless already past flush,
                    // in which case its records are durable).
                    (Mode::Dp2, Phase::Writing) | (Mode::Dp2, Phase::Flushing) => {
                        self.abort_current(ctx);
                    }
                    // DP1: everything acknowledged is at the backup;
                    // re-drive the current step there. (The retry timer
                    // would do this anyway; reacting now is faster.)
                    (Mode::Dp1, Phase::Writing) => self.send_current_write(ctx),
                    (Mode::Dp1, Phase::Flushing) => {
                        let me = ctx.me();
                        let id = txn.id;
                        let targets: Vec<NodeId> =
                            txn.flush_waiting.iter().map(|d| self.routes[*d].target()).collect();
                        for t in targets {
                            ctx.send(t, TandemMsg::FlushReq { txn: id, resp_to: me });
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
