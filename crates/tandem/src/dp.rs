//! The disk process pair: primary and backup actors implementing both
//! the 1984 (DP1) and 1986 (DP2) fault-tolerance strategies.
//!
//! A pair manages one partition of the database. The primary serves
//! WRITEs; the backup absorbs state across the failure boundary — per
//! WRITE under DP1 ([`Mode::Dp1`]), per log batch under DP2
//! ([`Mode::Dp2`]). On promotion, the backup continues service from
//! whatever state crossed the boundary before the crash, which is
//! exactly where the two generations differ:
//!
//! - DP1: every acknowledged WRITE is at the backup → in-flight
//!   transactions continue transparently.
//! - DP2: acknowledged WRITEs may still be "lollygagging" in the dead
//!   primary's buffer → in-flight transactions that dirtied the pair are
//!   aborted (an "acceptable erosion of behavior", §3.3); committed
//!   transactions are safe because commit forced their records through
//!   the backup to the ADP first.

use std::collections::HashMap;

use sim::{Actor, Context, NodeId, SimTime, SpanId};

use crate::msg::TandemMsg;
use crate::types::{DpId, LogRecord, Lsn, Mode, TandemConfig, TxnId, WriteId, WriteImage};

/// Timer tag: ship the DP2 log buffer down the chain.
const TAG_GROUP_PUSH: u64 = 1;

/// Role within a process pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serving WRITEs.
    Primary,
    /// Absorbing checkpoints / log batches; promotable.
    Backup,
}

/// One half of a disk-process pair.
#[derive(Debug)]
pub struct DiskProc {
    /// Which partition this pair manages.
    pub dp: DpId,
    mode: Mode,
    role: Role,
    peer: NodeId,
    adp: NodeId,
    apps: Vec<NodeId>,
    peer_up: bool,
    group_push: sim::SimDuration,

    // --- volatile state (lost on crash) ---
    /// The database image.
    kv: HashMap<u64, u64>,
    /// Next LSN to assign (primary) / next LSN expected (backup).
    lsn: Lsn,
    /// Records generated/received but not yet shipped down the chain.
    unshipped: Vec<LogRecord>,
    /// Every record this CPU has applied that is not yet known durable
    /// at the ADP, in LSN order. Shipping hands a record to the *peer*,
    /// not to the disk — if the peer's CPU then fails, the record must
    /// be re-shipped from here or it is lost. Pruned as the durable
    /// watermark advances.
    retained: Vec<LogRecord>,
    /// Records whose ADP durability is confirmed, up to this LSN.
    durable_upto: Option<Lsn>,
    /// Writes already applied (retry collapsing).
    seen_writes: HashMap<WriteId, Lsn>,
    /// Per-transaction undo: (key, before-image), newest last.
    undo: HashMap<TxnId, Vec<(u64, u64)>>,
    /// DP1: WRITE acks parked until the backup confirms the checkpoint
    /// (with the `tandem.checkpoint` span covering the round trip).
    pending_ck: HashMap<Lsn, (NodeId, WriteId, SpanId)>,
    /// DP2: acked-but-not-ADP-durable writes — each ack is a guess that
    /// the record will survive; resolved when durability catches up.
    guesses: Vec<(Lsn, SpanId)>,
    /// Flush requests parked until `durable_upto` covers them.
    pending_flush: Vec<(TxnId, Lsn, NodeId)>,
    /// Backup: LSN up to which records were forwarded to the ADP.
    forwarded_upto: Option<Lsn>,
    /// Backup: in-flight ADP batches: batch_id → highest LSN inside.
    inflight: HashMap<u64, Lsn>,
    next_batch_id: u64,
}

impl DiskProc {
    /// Build one half of a pair. `peer` is the other half, `apps` is the
    /// set of application nodes to notify on takeover.
    pub fn new(
        dp: DpId,
        role: Role,
        mode: Mode,
        peer: NodeId,
        adp: NodeId,
        apps: Vec<NodeId>,
        cfg: &TandemConfig,
    ) -> Self {
        DiskProc {
            dp,
            mode,
            role,
            peer,
            adp,
            apps,
            peer_up: true,
            group_push: cfg.group_push_interval,
            kv: HashMap::new(),
            lsn: 0,
            unshipped: Vec::new(),
            retained: Vec::new(),
            durable_upto: None,
            seen_writes: HashMap::new(),
            undo: HashMap::new(),
            pending_ck: HashMap::new(),
            guesses: Vec::new(),
            pending_flush: Vec::new(),
            forwarded_upto: None,
            inflight: HashMap::new(),
            next_batch_id: 0,
        }
    }

    /// Current role (used by the harness to assert takeover).
    pub fn role(&self) -> Role {
        self.role
    }

    /// The database image (for state audits in tests).
    pub fn kv(&self) -> &HashMap<u64, u64> {
        &self.kv
    }

    /// Highest LSN known durable at the ADP.
    pub fn durable_upto(&self) -> Option<Lsn> {
        self.durable_upto
    }

    fn apply_record(&mut self, rec: &LogRecord) {
        let old = self.kv.insert(rec.key, rec.value).unwrap_or(0);
        debug_assert_eq!(old, rec.old, "before-image mismatch at {:?}", rec.write);
        self.undo.entry(rec.txn).or_default().push((rec.key, rec.old));
        self.seen_writes.insert(rec.write, rec.lsn);
    }

    fn handle_write(
        &mut self,
        ctx: &mut Context<'_, TandemMsg>,
        write: WriteId,
        key: u64,
        value: u64,
        resp_to: NodeId,
    ) {
        if self.role != Role::Primary {
            // Stale routing: the app will retry after the takeover notice.
            return;
        }
        if self.seen_writes.contains_key(&write) {
            // Retry of an applied write: collapse and re-ack. Under DP1
            // the original ack may still be parked on a checkpoint; in
            // that case the retry will be acked by the checkpoint path.
            if !self.pending_ck.values().any(|(_, w, _)| *w == write) {
                ctx.send(resp_to, TandemMsg::WriteAck { write });
            }
            return;
        }
        let lsn = self.lsn;
        self.lsn += 1;
        let old = self.kv.get(&key).copied().unwrap_or(0);
        let rec =
            LogRecord::new(lsn, WriteImage { dp: self.dp, txn: write.txn, write, key, value, old });
        self.kv.insert(key, value);
        self.undo.entry(write.txn).or_default().push((key, old));
        self.seen_writes.insert(write, lsn);
        self.unshipped.push(rec.clone());
        self.retained.push(rec.clone());
        match self.mode {
            Mode::Dp1 if self.peer_up => {
                // Synchronous checkpoint: the ack waits for the backup.
                ctx.metrics().inc("tandem.checkpoint_msgs");
                let ck = ctx.child_span(ctx.current_span(), "tandem.checkpoint");
                ctx.span_field(ck, "lsn", lsn);
                ctx.set_current_span(Some(ck));
                ctx.send(self.peer, TandemMsg::Checkpoint { rec });
                self.pending_ck.insert(lsn, (resp_to, write, ck));
            }
            _ => {
                // DP2 (or a degraded DP1 pair): ack immediately; the
                // record lollygags in `unshipped`. The ack is a guess —
                // the write could still die with this CPU — outstanding
                // until ADP durability covers its LSN.
                let g = ctx.begin_guess_basis("tandem.write_ack", "local log, below ADP watermark");
                self.guesses.push((lsn, g));
                ctx.send(resp_to, TandemMsg::WriteAck { write });
            }
        }
    }

    /// Ship everything unshipped down the chain: to the backup first,
    /// then (from the backup) to the ADP — or directly to the ADP when
    /// the pair is degraded.
    fn ship(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        if self.unshipped.is_empty() {
            return;
        }
        let recs = std::mem::take(&mut self.unshipped);
        ctx.metrics().inc("tandem.log_batches");
        if self.peer_up && self.role == Role::Primary {
            ctx.send(self.peer, TandemMsg::LogBatch { recs });
        } else {
            // Degraded: straight to the ADP; we correlate the ack
            // ourselves.
            let batch_id = self.next_batch_id;
            self.next_batch_id += 1;
            let upto = recs.last().expect("nonempty").lsn;
            self.inflight.insert(batch_id, upto);
            ctx.send(self.adp, TandemMsg::AdpAppend { batch_id, recs, resp_to: ctx.me() });
        }
    }

    fn resolve_flushes(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        let durable = match self.durable_upto {
            Some(l) => l,
            None => return,
        };
        let dp = self.dp;
        let mut still = Vec::new();
        for (txn, required, resp_to) in self.pending_flush.drain(..) {
            if required <= durable {
                ctx.send(resp_to, TandemMsg::FlushDone { txn, dp });
            } else {
                still.push((txn, required, resp_to));
            }
        }
        self.pending_flush = still;
    }

    /// Rebuild the ship buffer from every retained record above the
    /// durable watermark and push it down the (possibly degraded)
    /// chain. Used when the chain may have swallowed records: a backup
    /// died holding them, or a reloaded backup needs them re-sent. The
    /// ADP suppresses duplicates by LSN, so over-shipping is safe.
    fn reship_retained(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        let floor = self.durable_upto;
        self.unshipped =
            self.retained.iter().filter(|r| floor.is_none_or(|d| r.lsn > d)).cloned().collect();
        self.ship(ctx);
    }

    fn mark_durable(&mut self, ctx: &mut Context<'_, TandemMsg>, upto: Lsn) {
        let watermark = self.durable_upto.map_or(upto, |d| d.max(upto));
        self.durable_upto = Some(watermark);
        self.retained.retain(|r| r.lsn > watermark);
        // Every acked write at or below the watermark: guess confirmed.
        let mut still = Vec::new();
        for (lsn, g) in std::mem::take(&mut self.guesses) {
            if lsn <= upto {
                ctx.resolve_guess(g, true);
            } else {
                still.push((lsn, g));
            }
        }
        self.guesses = still;
        self.resolve_flushes(ctx);
    }
}

impl Actor<TandemMsg> for DiskProc {
    fn on_start(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        if self.role == Role::Primary && self.mode == Mode::Dp2 {
            ctx.set_timer(self.group_push, TAG_GROUP_PUSH);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TandemMsg>, tag: u64) {
        if tag == TAG_GROUP_PUSH && self.role == Role::Primary {
            self.ship(ctx);
            ctx.set_timer(self.group_push, TAG_GROUP_PUSH);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TandemMsg>, from: NodeId, msg: TandemMsg) {
        match msg {
            TandemMsg::WriteReq { write, key, value, resp_to } => {
                self.handle_write(ctx, write, key, value, resp_to);
            }

            // --- DP1 checkpoint path (backup side) ---
            TandemMsg::Checkpoint { rec } => {
                if rec.lsn >= self.lsn {
                    self.lsn = rec.lsn + 1;
                    self.apply_record(&rec);
                    // The backup keeps its own copy for the ADP flush
                    // path after a takeover.
                    self.unshipped.push(rec.clone());
                    self.retained.push(rec.clone());
                }
                ctx.send(from, TandemMsg::CheckpointAck { lsn: rec.lsn });
            }
            TandemMsg::CheckpointAck { lsn } => {
                if let Some((resp_to, write, ck)) = self.pending_ck.remove(&lsn) {
                    ctx.set_current_span(Some(ck));
                    ctx.send(resp_to, TandemMsg::WriteAck { write });
                    ctx.finish_span(ck);
                }
            }

            // --- DP2 log chain ---
            TandemMsg::LogBatch { recs } => {
                // Backup: absorb, then forward the novel suffix to the ADP.
                let mut to_forward = Vec::new();
                for rec in recs {
                    if rec.lsn >= self.lsn {
                        self.lsn = rec.lsn + 1;
                        self.apply_record(&rec);
                        self.retained.push(rec.clone());
                    }
                    let already = self.forwarded_upto.is_some_and(|f| rec.lsn <= f);
                    if !already {
                        to_forward.push(rec);
                    }
                }
                if let Some(last) = to_forward.last() {
                    let upto = last.lsn;
                    self.forwarded_upto = Some(upto);
                    let batch_id = self.next_batch_id;
                    self.next_batch_id += 1;
                    self.inflight.insert(batch_id, upto);
                    ctx.send(
                        self.adp,
                        TandemMsg::AdpAppend { batch_id, recs: to_forward, resp_to: ctx.me() },
                    );
                }
            }
            TandemMsg::AdpAck { batch_id } => {
                if let Some(upto) = self.inflight.remove(&batch_id) {
                    self.mark_durable(ctx, upto);
                    if self.role == Role::Backup && self.peer_up {
                        ctx.send(self.peer, TandemMsg::LogBatchDurable { upto });
                    }
                }
            }
            TandemMsg::LogBatchDurable { upto } => {
                self.mark_durable(ctx, upto);
            }

            // --- commit ---
            TandemMsg::FlushReq { txn, resp_to } => {
                if self.role != Role::Primary {
                    return;
                }
                if self.lsn == 0 {
                    // Never wrote anything: vacuously durable.
                    ctx.send(resp_to, TandemMsg::FlushDone { txn, dp: self.dp });
                    return;
                }
                let required = self.lsn - 1;
                if self.durable_upto.is_some_and(|d| d >= required) {
                    ctx.send(resp_to, TandemMsg::FlushDone { txn, dp: self.dp });
                } else {
                    if !self
                        .pending_flush
                        .iter()
                        .any(|(t, r, n)| *t == txn && *r >= required && *n == resp_to)
                    {
                        self.pending_flush.push((txn, required, resp_to));
                    }
                    self.ship(ctx);
                }
            }
            TandemMsg::AbortTxn { txn } => {
                // Undo by *compensation records* through the normal log
                // chain (operation logging, like the escrow sidebar):
                // rewriting the before-images as fresh log records keeps
                // the backup's replay order identical to the primary's
                // apply order, so the pair never diverges.
                if self.role != Role::Primary {
                    return;
                }
                let Some(mut undo) = self.undo.remove(&txn) else { return };
                let mut idx = 0x8000_0000u32; // synthetic write ids
                while let Some((key, old)) = undo.pop() {
                    let lsn = self.lsn;
                    self.lsn += 1;
                    let current = self.kv.get(&key).copied().unwrap_or(0);
                    let rec = LogRecord::new(
                        lsn,
                        WriteImage {
                            dp: self.dp,
                            txn,
                            write: WriteId { txn, idx },
                            key,
                            value: old,
                            old: current,
                        },
                    );
                    idx += 1;
                    self.kv.insert(key, old);
                    self.seen_writes.insert(rec.write, lsn);
                    self.unshipped.push(rec.clone());
                    self.retained.push(rec.clone());
                    if self.mode == Mode::Dp1 && self.peer_up {
                        // DP1 checkpoints compensation like any write
                        // (no application ack is parked on it).
                        ctx.metrics().inc("tandem.checkpoint_msgs");
                        ctx.send(self.peer, TandemMsg::Checkpoint { rec });
                    }
                }
            }

            // --- takeover ---
            TandemMsg::Promote => {
                if self.role == Role::Backup {
                    self.role = Role::Primary;
                    self.peer_up = false;
                    let span = ctx.start_span("tandem.takeover");
                    ctx.span_field(span, "dp", format!("{:?}", self.dp));
                    ctx.metrics().inc("tandem.takeovers");
                    let me = ctx.me();
                    for app in self.apps.clone() {
                        ctx.send(
                            app,
                            TandemMsg::TakeoverNotice {
                                dp: self.dp,
                                mode: self.mode,
                                new_primary: me,
                            },
                        );
                    }
                    if self.mode == Mode::Dp2 {
                        ctx.set_timer(self.group_push, TAG_GROUP_PUSH);
                    }
                    // Anything absorbed but not yet ADP-durable should
                    // move promptly now that we serve reads and flushes.
                    self.ship(ctx);
                    ctx.finish_span(span);
                }
            }

            TandemMsg::PeerDown => {
                // The backup's CPU failed under a serving primary (a
                // second failure in the same pair, after a reload
                // restored it). Drop to degraded single-CPU service.
                if self.role != Role::Primary || !self.peer_up {
                    // Either we are the backup (our copy of this
                    // failure is the Promote above) or we already knew.
                    return;
                }
                self.peer_up = false;
                ctx.metrics().inc("tandem.peer_down_notices");
                // DP1 checkpoints parked on the dead backup will never
                // be acknowledged. Ack the writes now — each ack
                // becomes a guess, outstanding until the re-shipped
                // record is ADP-durable, exactly like a degraded-pair
                // write taken after this point.
                let mut parked: Vec<(Lsn, (NodeId, WriteId, SpanId))> =
                    self.pending_ck.drain().collect();
                parked.sort_by_key(|(lsn, _)| *lsn);
                for (lsn, (resp_to, write, ck)) in parked {
                    ctx.set_current_span(Some(ck));
                    let g =
                        ctx.begin_guess_basis("tandem.write_ack", "checkpoint died with backup");
                    self.guesses.push((lsn, g));
                    ctx.send(resp_to, TandemMsg::WriteAck { write });
                    ctx.finish_span(ck);
                }
                // Records handed to the dead backup died with it;
                // re-ship everything not yet durable straight to the
                // ADP (peer_up is now false, so ship() goes direct).
                self.reship_retained(ctx);
            }

            // --- pair reintegration ---
            TandemMsg::SyncReq { resp_to } => {
                if self.role != Role::Primary {
                    return;
                }
                // Snapshot and re-arm mirroring in the same event: every
                // record from `next_lsn` onward flows through the normal
                // chain behind this (FIFO) snapshot message.
                let kv: Vec<(u64, u64)> = self.kv.iter().map(|(k, v)| (*k, *v)).collect();
                ctx.send(
                    resp_to,
                    TandemMsg::SyncState {
                        kv,
                        next_lsn: self.lsn,
                        durable_upto: self.durable_upto,
                    },
                );
                self.peer_up = true;
                ctx.metrics().inc("tandem.reintegrations");
                // Checkpoints parked on the peer's *previous*
                // incarnation were lost with its CPU, but the snapshot
                // just sent covers every applied write — the DP1
                // contract ("the backup has it") holds, so ack them.
                let mut parked: Vec<(Lsn, (NodeId, WriteId, SpanId))> =
                    self.pending_ck.drain().collect();
                parked.sort_by_key(|(lsn, _)| *lsn);
                for (_, (resp_to, write, ck)) in parked {
                    ctx.set_current_span(Some(ck));
                    ctx.send(resp_to, TandemMsg::WriteAck { write });
                    ctx.finish_span(ck);
                }
                // Likewise any record the dead incarnation swallowed
                // before crashing: re-ship it down the restored chain
                // (snapshot first, then the batch — FIFO keeps the
                // rejoined backup consistent; it forwards to the ADP).
                self.reship_retained(ctx);
            }
            TandemMsg::SyncState { kv, next_lsn, durable_upto } => {
                if self.role != Role::Backup {
                    return;
                }
                self.kv = kv.into_iter().collect();
                self.lsn = next_lsn;
                self.durable_upto = durable_upto;
                // Forwarding floor: anything at or below the durable
                // watermark never needs re-forwarding to the ADP; records
                // above it will arrive through the log chain.
                self.forwarded_upto = durable_upto;
            }

            // Not addressed to disk processes.
            TandemMsg::WriteAck { .. }
            | TandemMsg::FlushDone { .. }
            | TandemMsg::TakeoverNotice { .. }
            | TandemMsg::AdpAppend { .. }
            | TandemMsg::CommitRecord { .. }
            | TandemMsg::CommitDurable { .. } => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        // CPU reload: rejoin the pair as the backup and ask the current
        // primary (our old peer, promoted at takeover) to catch us up.
        self.role = Role::Backup;
        self.peer_up = true;
        let me = ctx.me();
        ctx.send(self.peer, TandemMsg::SyncReq { resp_to: me });
    }

    fn on_crash(&mut self, _now: SimTime) {
        // Fail fast: the whole process state is volatile. (The durable
        // "disk" of the system is the ADP's audit trail; a real reload
        // would rebuild from it — our experiments end takeovers at the
        // surviving half, which is what §3 analyses.)
        self.kv.clear();
        self.unshipped.clear();
        self.retained.clear();
        self.pending_ck.clear();
        self.pending_flush.clear();
        self.inflight.clear();
        self.guesses.clear();
        self.undo.clear();
        self.seen_writes.clear();
        self.lsn = 0;
        self.durable_upto = None;
        self.forwarded_upto = None;
    }
}
