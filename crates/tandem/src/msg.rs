//! The message protocol spoken on the simulated NonStop interconnect.

use sim::NodeId;

use crate::types::{DpId, LogRecord, Lsn, Mode, TxnId, WriteId};

/// Every message exchanged between application processes, disk-process
/// pairs, and the audit disk process.
#[derive(Debug, Clone)]
pub enum TandemMsg {
    // ----- application ↔ disk process -----
    /// Application WRITE to the (current) primary of a disk process.
    WriteReq {
        /// The write's identity (retries reuse it).
        write: WriteId,
        /// Key to write.
        key: u64,
        /// Value to write.
        value: u64,
        /// Where the ack should go.
        resp_to: NodeId,
    },
    /// The write is safe enough to acknowledge under the current mode
    /// (DP1: checkpointed to the backup; DP2: buffered in the primary).
    WriteAck {
        /// The acknowledged write.
        write: WriteId,
    },
    /// Commit step 1: make every record of `txn` durable (TMF asking the
    /// dirtied disk processes to flush to the ADP, §3.1).
    FlushReq {
        /// Transaction being committed.
        txn: TxnId,
        /// Where the confirmation should go.
        resp_to: NodeId,
    },
    /// The disk process's log covering `txn` is durable at the ADP.
    FlushDone {
        /// The flushed transaction.
        txn: TxnId,
        /// Which disk process finished.
        dp: DpId,
    },
    /// Abort: undo `txn`'s writes at this disk process (system rules
    /// allow aborts "without apparent cause", §3.3).
    AbortTxn {
        /// Transaction to undo.
        txn: TxnId,
    },

    // ----- process-pair internal -----
    /// DP1 per-WRITE checkpoint: primary → backup, carrying the state
    /// needed for transparent takeover (§3.1).
    Checkpoint {
        /// The record being checkpointed.
        rec: LogRecord,
    },
    /// Backup → primary: the checkpoint is applied; the WRITE may now be
    /// acknowledged to the application.
    CheckpointAck {
        /// LSN of the applied record.
        lsn: Lsn,
    },
    /// DP2 log shipment: primary → backup. "The log would first go to
    /// the backup, then to the ADP which would write it on disk." (§3.2)
    LogBatch {
        /// Records in LSN order.
        recs: Vec<LogRecord>,
    },
    /// Backup → primary: records up to `upto` are durable at the ADP.
    LogBatchDurable {
        /// Highest durable LSN.
        upto: Lsn,
    },
    /// Harness/Guardian: the backup must take over as primary.
    Promote,
    /// Harness/Guardian: your pair partner's CPU failed. Only the
    /// *primary* acts on this (the backup's copy of the same failure is
    /// the [`TandemMsg::Promote`] above — the Guardian sends both and
    /// the role guards pick the right one). The surviving primary drops
    /// to degraded single-CPU service: checkpoints parked on the dead
    /// backup are acknowledged as guesses, and every record the dead
    /// backup may have swallowed is re-shipped straight to the ADP.
    PeerDown,
    /// New primary → every application: the pair failed over. Under DP2
    /// the application must abort in-flight transactions that dirtied
    /// this disk process (their buffered log died with the primary).
    TakeoverNotice {
        /// The failed-over disk process.
        dp: DpId,
        /// The mode it runs (decides abort-vs-continue at the app).
        mode: Mode,
        /// Where the pair's requests must go from now on.
        new_primary: NodeId,
    },
    /// A reloaded processor rejoining its pair as backup asks the
    /// current primary for a state snapshot (the CPU-reload
    /// reintegration that restores the pair's redundancy).
    SyncReq {
        /// The rejoining node.
        resp_to: NodeId,
    },
    /// The primary's snapshot: database image and log watermarks. After
    /// applying it, the rejoined backup is caught up; every record from
    /// `next_lsn` onward flows through the normal checkpoint/log chain.
    SyncState {
        /// The database image.
        kv: Vec<(u64, u64)>,
        /// The primary's next LSN at snapshot time.
        next_lsn: Lsn,
        /// Highest LSN known durable at the ADP.
        durable_upto: Option<Lsn>,
    },

    // ----- audit disk process -----
    /// Append records to the audit trail.
    AdpAppend {
        /// Correlation id, unique per sender.
        batch_id: u64,
        /// The records.
        recs: Vec<LogRecord>,
        /// Who to ack.
        resp_to: NodeId,
    },
    /// The batch is on the audit disk.
    AdpAck {
        /// Correlation id from the append.
        batch_id: u64,
    },
    /// Commit record for `txn` (TMF's commit decision going durable).
    CommitRecord {
        /// The committing transaction.
        txn: TxnId,
        /// Who to notify.
        resp_to: NodeId,
    },
    /// The commit record is on the audit disk: the transaction is
    /// committed.
    CommitDurable {
        /// The committed transaction.
        txn: TxnId,
    },
}
