//! The Audit Disk Process: the centralized durable end of the log chain.
//!
//! "At transaction commit, all dirtied DPs are asked to flush their log
//! to a centralized ADP (Audit Disk Process)." (§3.1) The ADP owns the
//! audit disk (modelled as an IO service time per write) and is where the
//! group-commit economics of §3.2 live: with batching on, one disk IO
//! sweeps up every append and commit record that queued while the
//! previous IO was in flight — "a city bus sweeping up all the passengers
//! every five minutes or so" — with batching off, every append rides
//! alone ("a car per driver racing across town").

use std::collections::{HashMap, HashSet, VecDeque};

use sim::{Actor, Context, NodeId, SimDuration};

use crate::msg::TandemMsg;
use crate::types::{DpId, LogRecord, Lsn, TxnId};

/// Timer tag: the in-flight disk IO completes.
const TAG_IO_DONE: u64 = 1;

/// One queued item awaiting the audit disk.
#[derive(Debug)]
enum Pending {
    Batch { batch_id: u64, recs: Vec<LogRecord>, resp_to: NodeId },
    Commit { txn: TxnId, resp_to: NodeId },
}

/// The audit disk process actor.
#[derive(Debug)]
pub struct Adp {
    io_time: SimDuration,
    group_commit: bool,
    queue: VecDeque<Pending>,
    io_busy: bool,
    /// How many queued items the in-flight IO covers.
    io_covers: usize,
    /// The durable audit trail.
    log: Vec<LogRecord>,
    /// Durable commit records.
    commits: HashSet<TxnId>,
    /// Highest LSN applied per disk process (duplicate suppression for
    /// retried/re-shipped batches).
    applied_upto: HashMap<DpId, Lsn>,
}

impl Adp {
    /// An ADP whose disk takes `io_time` per write; `group_commit`
    /// selects bus-vs-car batching.
    pub fn new(io_time: SimDuration, group_commit: bool) -> Self {
        Adp {
            io_time,
            group_commit,
            queue: VecDeque::new(),
            io_busy: false,
            io_covers: 0,
            log: Vec::new(),
            commits: HashSet::new(),
            applied_upto: HashMap::new(),
        }
    }

    /// The durable audit trail (for post-run audits).
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Whether `txn`'s commit record is durable.
    pub fn is_committed(&self, txn: TxnId) -> bool {
        self.commits.contains(&txn)
    }

    /// Number of durable commit records.
    pub fn committed_count(&self) -> usize {
        self.commits.len()
    }

    fn maybe_start_io(&mut self, ctx: &mut Context<'_, TandemMsg>) {
        if !self.io_busy && !self.queue.is_empty() {
            self.io_busy = true;
            // The IO covers what is queued *now*; later arrivals wait for
            // the next bus (or car).
            self.io_covers = if self.group_commit { self.queue.len() } else { 1 };
            ctx.set_timer(self.io_time, TAG_IO_DONE);
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, TandemMsg>, item: Pending) {
        match item {
            Pending::Batch { batch_id, recs, resp_to } => {
                for rec in recs {
                    let upto = self.applied_upto.entry(rec.dp).or_insert(0);
                    // LSNs start at 0; use +1 encoding for "applied up to".
                    if rec.lsn + 1 > *upto {
                        *upto = rec.lsn + 1;
                        self.log.push(rec);
                        ctx.metrics().inc("tandem.adp_records");
                    }
                }
                ctx.send(resp_to, TandemMsg::AdpAck { batch_id });
            }
            Pending::Commit { txn, resp_to } => {
                self.commits.insert(txn);
                ctx.send(resp_to, TandemMsg::CommitDurable { txn });
            }
        }
    }
}

impl Actor<TandemMsg> for Adp {
    fn on_message(&mut self, ctx: &mut Context<'_, TandemMsg>, _from: NodeId, msg: TandemMsg) {
        match msg {
            TandemMsg::AdpAppend { batch_id, recs, resp_to } => {
                self.queue.push_back(Pending::Batch { batch_id, recs, resp_to });
                self.maybe_start_io(ctx);
            }
            TandemMsg::CommitRecord { txn, resp_to } => {
                if self.commits.contains(&txn) {
                    // Retry of a durable commit: ack without an IO.
                    ctx.send(resp_to, TandemMsg::CommitDurable { txn });
                } else {
                    self.queue.push_back(Pending::Commit { txn, resp_to });
                    self.maybe_start_io(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TandemMsg>, tag: u64) {
        if tag != TAG_IO_DONE {
            return;
        }
        ctx.metrics().inc("tandem.adp_ios");
        self.io_busy = false;
        let n = self.io_covers.min(self.queue.len());
        let items: Vec<Pending> = self.queue.drain(..n).collect();
        for item in items {
            self.complete(ctx, item);
        }
        self.maybe_start_io(ctx);
    }
}
