//! # tandem — the Tandem NonStop model of §3 of *Building on Quicksand*
//!
//! A protocol-faithful simulation of the system the paper uses to anchor
//! its history: a shared-nothing multiprocessor running process pairs,
//! with two generations of disk process:
//!
//! - **DP1 (circa 1984)**: "Work is actively checkpointed for each WRITE
//!   to ensure the backup is able to continue in the event of a failure
//!   of the primary disk processor." Every WRITE costs a synchronous
//!   round trip to the backup before the application sees the ack — and
//!   in exchange, a primary failure is *transparent*: the backup has
//!   everything and in-flight transactions simply continue.
//!
//! - **DP2 (circa 1986)**: "checkpointing and transaction logging were
//!   combined into one mechanism. The log would first go to the backup,
//!   then to the ADP which would write it on disk." WRITEs are
//!   acknowledged immediately; the log buffer lollygags in the primary
//!   and ships periodically (group commit). A primary failure now aborts
//!   the in-flight transactions that dirtied it — allowed by the system
//!   rules, hence an "acceptable erosion of behavior" (§3.3) — while
//!   committed transactions are safe because commit forces the log
//!   through the backup to the ADP first.
//!
//! The experiments E1–E3 (see EXPERIMENTS.md) regenerate the paper's
//! qualitative claims from this model: checkpoint message counts, WRITE
//! latency, abort-on-takeover behaviour, and the car-vs-bus economics of
//! group commit at the audit disk.
//!
//! ## Quick use
//!
//! ```
//! use tandem::{run, Mode, TandemConfig};
//! use sim::SimTime;
//!
//! let cfg = TandemConfig {
//!     mode: Mode::Dp2,
//!     txns_per_app: 10,
//!     horizon: SimTime::from_secs(10),
//!     ..TandemConfig::default()
//! };
//! let report = run(&cfg, 42);
//! assert_eq!(report.committed, 10 * cfg.n_apps as u64);
//! assert_eq!(report.lost_committed, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adp;
pub mod app;
pub mod dp;
pub mod harness;
pub mod msg;
pub mod types;

pub use adp::Adp;
pub use app::AppProc;
pub use dp::{DiskProc, Role};
pub use harness::{build, layout, run, Layout};
pub use msg::TandemMsg;
pub use types::{
    DpId, LogRecord, Lsn, Mode, TandemConfig, TandemReport, TxnId, WriteId, WriteImage,
};
