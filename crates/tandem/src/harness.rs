//! Builds a simulated NonStop cluster, runs a workload, injects failures,
//! and extracts the experiment report.
//!
//! Node layout (deterministic, so actors can be constructed with each
//! other's addresses before the simulation starts):
//!
//! ```text
//! 0 .. n_apps-1                      application processes
//! n_apps + 2i, n_apps + 2i + 1       primary/backup of disk process i
//! n_apps + 2*n_dps                   the ADP
//! ```

use sim::{LinkConfig, Network, NodeId, Simulation};

use crate::adp::Adp;
use crate::app::{AppProc, DpRoute};
use crate::dp::{DiskProc, Role};
use crate::msg::TandemMsg;
use crate::types::{DpId, TandemConfig, TandemReport, TxnId};

/// Node ids for a cluster under `cfg`'s sizing.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Application process nodes.
    pub apps: Vec<NodeId>,
    /// (primary, backup) per disk process.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// The audit disk process.
    pub adp: NodeId,
}

/// Compute the layout for a configuration.
pub fn layout(cfg: &TandemConfig) -> Layout {
    let apps = (0..cfg.n_apps).map(NodeId).collect();
    let pairs = (0..cfg.n_dps)
        .map(|i| (NodeId(cfg.n_apps + 2 * i), NodeId(cfg.n_apps + 2 * i + 1)))
        .collect();
    Layout { apps, pairs, adp: NodeId(cfg.n_apps + 2 * cfg.n_dps) }
}

/// Build the cluster into a fresh simulation.
pub fn build(cfg: &TandemConfig, seed: u64) -> (Simulation<TandemMsg>, Layout) {
    let lay = layout(cfg);
    let net = Network::new(LinkConfig::reliable(cfg.bus_latency));
    let mut sim = Simulation::with_network(seed, net);

    let routes: Vec<DpRoute> =
        lay.pairs.iter().map(|(p, b)| DpRoute { primary: *p, backup: *b, current: *p }).collect();

    for i in 0..cfg.n_apps {
        let id = sim.add_node(AppProc::new(
            i as u32,
            routes.clone(),
            lay.adp,
            cfg.txns_per_app,
            cfg.writes_per_txn,
            cfg.mean_interarrival,
            cfg.retry_timeout,
        ));
        debug_assert_eq!(id, lay.apps[i]);
    }
    for (i, (p, b)) in lay.pairs.iter().enumerate() {
        let dp = DpId(i as u32);
        let id = sim.add_node(DiskProc::new(
            dp,
            Role::Primary,
            cfg.mode,
            *b,
            lay.adp,
            lay.apps.clone(),
            cfg,
        ));
        debug_assert_eq!(id, *p);
        let id = sim.add_node(DiskProc::new(
            dp,
            Role::Backup,
            cfg.mode,
            *p,
            lay.adp,
            lay.apps.clone(),
            cfg,
        ));
        debug_assert_eq!(id, *b);
    }
    let id = sim.add_node(Adp::new(cfg.adp_io_time, cfg.adp_group_commit));
    debug_assert_eq!(id, lay.adp);

    if let Some(at) = cfg.crash_primary_at {
        let (primary, backup) = lay.pairs[0];
        sim.schedule_crash(at, primary);
        // Guardian detects the failure and promotes the backup.
        sim.inject_at(at + cfg.takeover_delay, backup, lay.adp, TandemMsg::Promote);
        if let Some(restart) = cfg.restart_primary_at {
            // CPU reload: the old primary rejoins its pair as backup.
            sim.schedule_restart(restart, primary);
            if let Some(crash2) = cfg.crash_new_primary_at {
                // Fail back: the promoted node dies; the reloaded
                // original takes over again.
                sim.schedule_crash(crash2, backup);
                sim.inject_at(crash2 + cfg.takeover_delay, primary, lay.adp, TandemMsg::Promote);
            }
        }
    }
    cfg.faults.apply(&mut sim);
    // A planned crash of a pair member triggers the Guardian's failure
    // notice to the surviving half. What the survivor must *do* depends
    // on its role at delivery time, which the harness cannot know (the
    // same node may have crashed before, swapping the pair's roles) —
    // so send both notices and let the role guards pick: Promote acts
    // only on a Backup (take over), PeerDown only on a serving Primary
    // (drop to degraded single-CPU service and re-ship). Repeated
    // clauses are safe for the same reason.
    for f in &cfg.faults.faults {
        if let sim::chaos::Fault::Crash { at, node, .. } = f {
            if let Some(&(p, b)) = lay.pairs.iter().find(|(p, b)| p == node || b == node) {
                let survivor = if p == *node { b } else { p };
                sim.inject_at(*at + cfg.takeover_delay, survivor, lay.adp, TandemMsg::Promote);
                sim.inject_at(*at + cfg.takeover_delay, survivor, lay.adp, TandemMsg::PeerDown);
            }
        }
    }
    (sim, lay)
}

/// Run the configured workload to completion (or the horizon) and report.
pub fn run(cfg: &TandemConfig, seed: u64) -> TandemReport {
    let (mut sim, lay) = build(cfg, seed);
    if cfg.flight {
        sim.enable_flight(1 << 16);
    }
    sim.run_until(cfg.horizon);

    let mut report = TandemReport::default();

    // Gather per-app outcomes and audit committed transactions.
    let mut all_committed: Vec<TxnId> = Vec::new();
    for app in &lay.apps {
        let a: &AppProc = sim.actor(*app);
        report.committed += a.committed.len() as u64;
        report.aborted += a.aborted.len() as u64;
        report.unresolved += a.unresolved();
        all_committed.extend(a.committed.iter().copied());
    }

    // Durability audit: every committed transaction must have all of its
    // log records AND its commit record on the audit disk.
    {
        let adp: &Adp = sim.actor(lay.adp);
        for txn in &all_committed {
            let recs = adp.log().iter().filter(|r| r.txn == *txn).count();
            let ok = adp.is_committed(*txn) && recs == cfg.writes_per_txn as usize;
            if !ok {
                report.lost_committed += 1;
            }
        }
    }

    let m = sim.metrics_mut();
    // Makespan: the run's clock always ends at the horizon, so measure
    // throughput against the last commit instead.
    report.sim_seconds = m.histogram("tandem.commit_at_us").max() / 1e6;
    report.write_ack_mean_ms = m.histogram("tandem.write_ack_us").mean() / 1000.0;
    report.write_ack_p99_ms = m.histogram("tandem.write_ack_us").percentile(99.0) / 1000.0;
    report.commit_mean_ms = m.histogram("tandem.commit_us").mean() / 1000.0;
    report.commit_p99_ms = m.histogram("tandem.commit_us").percentile(99.0) / 1000.0;
    report.checkpoint_msgs = m.counter("tandem.checkpoint_msgs");
    report.log_batches = m.counter("tandem.log_batches");
    report.adp_ios = m.counter("tandem.adp_ios");
    report.adp_records = m.counter("tandem.adp_records");
    report.messages = m.counter("sim.messages_sent");
    sim.export_ledger_metrics();
    report.ledger = sim.ledger().accounting();
    report.spans = sim.spans().clone();
    report.flight = sim.take_flight();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Mode;
    use sim::{SimDuration, SimTime};

    fn small(mode: Mode) -> TandemConfig {
        TandemConfig {
            mode,
            n_dps: 2,
            n_apps: 2,
            txns_per_app: 20,
            writes_per_txn: 3,
            mean_interarrival: SimDuration::from_millis(5),
            horizon: SimTime::from_secs(30),
            ..TandemConfig::default()
        }
    }

    #[test]
    fn dp1_workload_commits_everything() {
        let r = run(&small(Mode::Dp1), 7);
        assert_eq!(r.committed, 40);
        assert_eq!(r.aborted, 0);
        assert_eq!(r.unresolved, 0);
        assert_eq!(r.lost_committed, 0);
        assert!(r.checkpoint_msgs >= 40 * 3, "every WRITE checkpoints: {r:?}");
    }

    #[test]
    fn dp2_workload_commits_everything_without_per_write_checkpoints() {
        let r = run(&small(Mode::Dp2), 7);
        assert_eq!(r.committed, 40);
        assert_eq!(r.aborted, 0);
        assert_eq!(r.lost_committed, 0);
        assert_eq!(r.checkpoint_msgs, 0);
        assert!(r.log_batches > 0);
    }

    #[test]
    fn dp2_write_latency_beats_dp1() {
        let r1 = run(&small(Mode::Dp1), 11);
        let r2 = run(&small(Mode::Dp2), 11);
        assert!(
            r2.write_ack_mean_ms < r1.write_ack_mean_ms,
            "DP2 {:.3}ms should beat DP1 {:.3}ms",
            r2.write_ack_mean_ms,
            r1.write_ack_mean_ms
        );
    }

    #[test]
    fn dp1_takeover_is_transparent() {
        let mut cfg = small(Mode::Dp1);
        cfg.crash_primary_at = Some(SimTime::from_millis(30));
        let r = run(&cfg, 13);
        assert_eq!(r.committed, 40, "{r:?}");
        assert_eq!(r.aborted, 0, "DP1 takeover aborts nothing: {r:?}");
        assert_eq!(r.lost_committed, 0);
    }

    #[test]
    fn dp2_takeover_aborts_in_flight_but_loses_nothing_committed() {
        let mut cfg = small(Mode::Dp2);
        cfg.txns_per_app = 40;
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.crash_primary_at = Some(SimTime::from_millis(30));
        let r = run(&cfg, 13);
        assert_eq!(r.lost_committed, 0, "committed work must survive: {r:?}");
        assert_eq!(r.committed + r.aborted, 80, "{r:?}");
        assert!(r.aborted >= 1, "the takeover should abort in-flight txns: {r:?}");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&small(Mode::Dp2), 42);
        let b = run(&small(Mode::Dp2), 42);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.commit_mean_ms, b.commit_mean_ms);
    }

    #[test]
    fn reintegration_restores_the_mirror() {
        for mode in [Mode::Dp1, Mode::Dp2] {
            let mut cfg = small(mode);
            cfg.txns_per_app = 40;
            cfg.mean_interarrival = SimDuration::from_millis(2);
            cfg.crash_primary_at = Some(SimTime::from_millis(50));
            cfg.restart_primary_at = Some(SimTime::from_millis(150));
            let (mut sim, lay) = build(&cfg, 21);
            sim.run_until(cfg.horizon);
            // The reloaded node is a live backup again...
            let (old_primary, new_primary) = lay.pairs[0];
            assert_eq!(sim.actor::<DiskProc>(old_primary).role(), Role::Backup);
            assert_eq!(sim.actor::<DiskProc>(new_primary).role(), Role::Primary);
            assert_eq!(sim.metrics().counter("tandem.reintegrations"), 1);
            // ...and the mirror is bit-identical by the end of the run.
            let a = sim.actor::<DiskProc>(old_primary).kv().clone();
            let b = sim.actor::<DiskProc>(new_primary).kv().clone();
            assert_eq!(a, b, "pair diverged after reintegration ({mode})");
        }
    }

    #[test]
    fn fail_back_lands_on_the_reloaded_processor_without_losing_commits() {
        for mode in [Mode::Dp1, Mode::Dp2] {
            let mut cfg = small(mode);
            cfg.txns_per_app = 60;
            cfg.mean_interarrival = SimDuration::from_millis(2);
            cfg.crash_primary_at = Some(SimTime::from_millis(40));
            cfg.restart_primary_at = Some(SimTime::from_millis(120));
            cfg.crash_new_primary_at = Some(SimTime::from_millis(250));
            let r = run(&cfg, 22);
            assert_eq!(r.lost_committed, 0, "{mode}: {r:?}");
            assert_eq!(r.committed + r.aborted, 120, "{mode}: {r:?}");
            if mode == Mode::Dp1 {
                assert_eq!(r.aborted, 0, "DP1 is transparent through both failovers: {r:?}");
            }
        }
    }

    #[test]
    fn group_commit_uses_fewer_ios_under_load() {
        let mut bus = small(Mode::Dp2);
        bus.mean_interarrival = SimDuration::from_millis(1);
        bus.adp_group_commit = true;
        let mut car = bus.clone();
        car.adp_group_commit = false;
        let rb = run(&bus, 5);
        let rc = run(&car, 5);
        assert_eq!(rb.committed, 40);
        assert_eq!(rc.committed, 40);
        assert!(
            rb.adp_ios < rc.adp_ios,
            "bus {} IOs should beat car {} IOs",
            rb.adp_ios,
            rc.adp_ios
        );
    }
}
