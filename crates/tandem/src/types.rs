//! Shared identifiers, log records, configuration, and the experiment
//! report for the Tandem NonStop model.

use quicksand_core::wire::Framed;
use sim::chaos::FaultPlan;
use sim::{FlightRecorder, LedgerAccounting, SimDuration, SimTime, SpanStore};

/// Which disk-process generation the cluster runs (§3.1 vs §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Circa 1984: every WRITE is synchronously checkpointed to the
    /// backup disk process before the application sees the ack.
    Dp1,
    /// Circa 1986: the transaction log *is* the checkpoint. WRITEs are
    /// acknowledged immediately and the log buffer "lollygags" in the
    /// primary, shipped to the backup (and on to the ADP) periodically
    /// and at commit.
    Dp2,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Dp1 => write!(f, "DP1-1984"),
            Mode::Dp2 => write!(f, "DP2-1986"),
        }
    }
}

/// Identifies a disk-process pair (one partition of the database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DpId(pub u32);

/// A transaction id: (application process, local sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// The application process that owns the transaction.
    pub app: u32,
    /// Its sequence number within that process.
    pub seq: u64,
}

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.{}", self.app, self.seq)
    }
}

/// A write id, unique per WRITE attempt family (retries share it, which
/// is what lets a disk process collapse duplicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteId {
    /// The owning transaction.
    pub txn: TxnId,
    /// Index of this write within the transaction.
    pub idx: u32,
}

/// Log sequence number within one disk process's log.
pub type Lsn = u64;

/// The business content of one log record: a write with its before- and
/// after-image and the identities needed for undo and retry collapsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteImage {
    /// The disk process that generated the record.
    pub dp: DpId,
    /// The transaction on whose behalf the write was performed.
    pub txn: TxnId,
    /// The write's identity (for retry collapsing).
    pub write: WriteId,
    /// Key written.
    pub key: u64,
    /// New value.
    pub value: u64,
    /// Before-image, used for undo when the transaction aborts.
    pub old: u64,
}

/// One record of the transaction log — which, in DP2, doubles as the
/// checkpoint stream ("checkpointing and transaction logging were
/// combined into one mechanism", §3.2). A [`WriteImage`] framed at its
/// log position, sharing the workspace-wide WAL frame shape from
/// [`quicksand_core::wire::Framed`].
pub type LogRecord = Framed<WriteImage>;

/// Cluster and workload configuration for one simulated run.
#[derive(Debug, Clone)]
pub struct TandemConfig {
    /// Disk-process generation.
    pub mode: Mode,
    /// Number of disk-process pairs (database partitions).
    pub n_dps: usize,
    /// Number of application processes generating transactions.
    pub n_apps: usize,
    /// Transactions each application process runs.
    pub txns_per_app: u64,
    /// WRITEs per transaction.
    pub writes_per_txn: u32,
    /// Mean think time between an app's transactions (Poisson).
    pub mean_interarrival: SimDuration,
    /// Interconnect one-way latency (processor-to-processor message).
    pub bus_latency: SimDuration,
    /// DP2 group-push period: how long the log buffer may lollygag in
    /// the primary before being shipped to the backup and ADP.
    pub group_push_interval: SimDuration,
    /// ADP disk IO service time (one audit-disk write).
    pub adp_io_time: SimDuration,
    /// ADP batching: `true` = group commit ("the city bus"), writing all
    /// queued appends per IO; `false` = one append per IO ("a car per
    /// driver").
    pub adp_group_commit: bool,
    /// Crash the primary of DP 0 at this time, if set.
    pub crash_primary_at: Option<SimTime>,
    /// Reload the crashed primary at this time; it rejoins its pair as
    /// the backup and catches up by state sync.
    pub restart_primary_at: Option<SimTime>,
    /// After reintegration, crash the *new* primary (the original
    /// backup) at this time — exercising fail-back onto the reloaded
    /// processor.
    pub crash_new_primary_at: Option<SimTime>,
    /// Delay between the crash and the backup's promotion (failure
    /// detection by the Guardian OS).
    pub takeover_delay: SimDuration,
    /// How long a requester waits before retrying an unacknowledged
    /// message.
    pub retry_timeout: SimDuration,
    /// Declarative fault timeline applied on top of the legacy crash
    /// knobs. A `Crash` clause on the *initial primary* of a pair
    /// triggers the Guardian takeover protocol exactly like
    /// `crash_primary_at` (Promote sent to its backup `takeover_delay`
    /// later).
    pub faults: FaultPlan,
    /// Simulation horizon: the run stops here even if work remains.
    pub horizon: SimTime,
    /// Enable the forensic flight recorder (causal event graph). Off by
    /// default; chaos explainers re-run failing seeds with it on.
    pub flight: bool,
}

impl Default for TandemConfig {
    fn default() -> Self {
        TandemConfig {
            mode: Mode::Dp2,
            n_dps: 2,
            n_apps: 4,
            txns_per_app: 50,
            writes_per_txn: 4,
            mean_interarrival: SimDuration::from_millis(10),
            bus_latency: SimDuration::from_micros(100),
            group_push_interval: SimDuration::from_millis(5),
            adp_io_time: SimDuration::from_millis(2),
            adp_group_commit: true,
            crash_primary_at: None,
            restart_primary_at: None,
            crash_new_primary_at: None,
            takeover_delay: SimDuration::from_millis(5),
            retry_timeout: SimDuration::from_millis(50),
            faults: FaultPlan::none(),
            horizon: SimTime::from_secs(60),
            flight: false,
        }
    }
}

/// What one run measured, extracted by the harness.
#[derive(Debug, Clone, Default)]
pub struct TandemReport {
    /// Transactions the applications saw commit (durable at the ADP).
    pub committed: u64,
    /// Transactions aborted (all causes; under DP2 a takeover aborts
    /// in-flight transactions that dirtied the failed disk process).
    pub aborted: u64,
    /// Transactions still unresolved at the horizon.
    pub unresolved: u64,
    /// Mean WRITE acknowledge latency (ms) as the application saw it.
    pub write_ack_mean_ms: f64,
    /// 99th percentile WRITE ack latency (ms).
    pub write_ack_p99_ms: f64,
    /// Mean commit latency (ms), request-to-durable.
    pub commit_mean_ms: f64,
    /// 99th percentile commit latency (ms).
    pub commit_p99_ms: f64,
    /// Per-WRITE checkpoint messages sent (DP1's cost).
    pub checkpoint_msgs: u64,
    /// Log batches shipped down the backup→ADP chain.
    pub log_batches: u64,
    /// Audit-disk IOs performed.
    pub adp_ios: u64,
    /// Log records made durable at the ADP.
    pub adp_records: u64,
    /// Total simulated messages.
    pub messages: u64,
    /// Committed-and-acked transactions missing from the audit trail —
    /// the durability check. Must be zero under both modes, crash or no
    /// crash.
    pub lost_committed: u64,
    /// Wall-clock of the run (simulated seconds).
    pub sim_seconds: f64,
    /// Guess/apology accounting (`tandem.write_ack` guesses: acked
    /// writes awaiting ADP durability).
    pub ledger: LedgerAccounting,
    /// Every span the run recorded.
    pub spans: SpanStore,
    /// The causal event graph, when `TandemConfig::flight` was set.
    pub flight: Option<FlightRecorder>,
}

impl TandemReport {
    /// Committed transactions per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.sim_seconds == 0.0 {
            0.0
        } else {
            self.committed as f64 / self.sim_seconds
        }
    }
}
