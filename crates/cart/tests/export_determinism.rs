//! Every exporter must be byte-identical across two runs of the same
//! seed — the property the forensic tooling, chaos artifacts, and
//! report tables all lean on. The export paths are audited to use only
//! `BTreeMap`/`Vec` (never `HashMap`, whose iteration order is
//! randomized per process); this test is the regression tripwire if a
//! future exporter slips hash-ordered state into its output.

use cart::{CartMode, CartScenario};
use sim::{FaultPlan, FaultSpec, NodeId, SimTime};

/// A busy scenario: CRDT carts under a generated fault timeline
/// (partitions + crashes), with the event trace and the flight
/// recorder both on so every exporter has real content to disagree
/// about.
fn busy_scenario() -> CartScenario {
    let base = CartScenario::contended(CartMode::OrSet);
    let nodes: Vec<NodeId> = (0..base.n_stores as usize).map(NodeId).collect();
    let spec = FaultSpec::new(nodes.clone())
        .crashable(nodes)
        .window(SimTime::from_millis(100), SimTime::from_secs(5))
        .faults(2, 4);
    CartScenario { faults: FaultPlan::generate(0xD15C0, &spec), trace: true, flight: true, ..base }
}

/// All exports from one run, concatenated with labels so a mismatch
/// pinpoints the exporter at fault.
fn exports(seed: u64) -> Vec<(&'static str, String)> {
    let report = cart::run(&busy_scenario(), seed);
    let mut out = vec![
        ("metrics.to_json", report.metrics.to_json()),
        ("spans.to_jsonl", report.spans.to_jsonl()),
        ("ledger.to_json", report.ledger.to_json()),
    ];
    out.push(("trace.to_jsonl", report.trace_jsonl.expect("trace was enabled")));
    if let Some(flight) = report.flight {
        let jsonl: String = flight.events().map(|e| e.to_json() + "\n").collect();
        out.push(("flight.events jsonl", jsonl));
    }
    out
}

#[test]
fn exports_are_byte_identical_across_runs() {
    let a = exports(7);
    let b = exports(7);
    assert_eq!(a.len(), b.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(bytes_a, bytes_b, "{name_a} export differs between identical runs");
        // A trivially empty export can't regress; make sure each one
        // actually carries content.
        assert!(bytes_a.len() > 2, "{name_a} export is empty");
    }
}

#[test]
fn exports_respond_to_the_seed() {
    // Sanity check on the test itself: different seeds must change at
    // least the metrics export, otherwise the byte-equality above is
    // vacuous.
    let a = exports(7);
    let b = exports(8);
    assert_ne!(a[0].1, b[0].1, "metrics export ignored the seed");
}
