//! Property-based tests of the cart's reconciliation: union semantics,
//! order independence, and the containment guarantee ("items added to
//! the cart will not be lost").

use cart::{reconcile, CartAction, CartBlob, CartOp};
use dynamo::{Dot, VectorClock, Versioned};
use proptest::prelude::*;
use quicksand_core::op::Operation;
use quicksand_core::uniquifier::Uniquifier;

fn action_strategy() -> impl Strategy<Value = CartAction> {
    prop_oneof![
        (0u64..6, 1u32..5).prop_map(|(item, qty)| CartAction::Add { item, qty }),
        (0u64..6, 0u32..5).prop_map(|(item, qty)| CartAction::ChangeQty { item, qty }),
        (0u64..6).prop_map(|item| CartAction::Remove { item }),
    ]
}

fn ops_strategy() -> impl Strategy<Value = Vec<CartOp>> {
    // Ids are unique per op: a uniquifier is functionally dependent on
    // the request (§2.1), so two different actions never share one. The
    // generated id's low bits shuffle the canonical order relative to
    // creation order.
    prop::collection::vec((0u64..1000, action_strategy()), 0..40).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (n, action))| CartOp {
                id: Uniquifier::from_parts(11, n * 1000 + i as u64),
                action,
            })
            .collect()
    })
}

proptest! {
    /// Reconciliation of any sibling split is independent of sibling
    /// order and of how ops were distributed.
    #[test]
    fn reconcile_is_split_and_order_independent(ops in ops_strategy(), split in 0u8..8) {
        let mut a = CartBlob::new();
        let mut b = CartBlob::new();
        let mut c = CartBlob::new();
        for (i, op) in ops.iter().enumerate() {
            match (i as u8 + split) % 3 {
                0 => { a.record(op.clone()); }
                1 => { b.record(op.clone()); }
                _ => { c.record(op.clone()); }
            }
        }
        let v = |log: CartBlob, node: u32| {
            Versioned::new(VectorClock::new(), Dot { node, counter: 1 }, log)
        };
        let abc = reconcile(&[v(a.clone(), 0), v(b.clone(), 1), v(c.clone(), 2)]);
        let cba = reconcile(&[v(c, 2), v(b, 1), v(a, 0)]);
        prop_assert!(abc.same_ops(&cba));
        prop_assert_eq!(abc.materialize(), cba.materialize());
    }

    /// Every op recorded in any sibling survives the union.
    #[test]
    fn union_contains_every_sibling_op(ops in ops_strategy()) {
        let mut a = CartBlob::new();
        let mut b = CartBlob::new();
        for (i, op) in ops.iter().enumerate() {
            if i % 2 == 0 { a.record(op.clone()); } else { b.record(op.clone()); }
        }
        let merged = reconcile(&[
            Versioned::new(VectorClock::new(), Dot { node: 0, counter: 1 }, a.clone()),
            Versioned::new(VectorClock::new(), Dot { node: 1, counter: 1 }, b.clone()),
        ]);
        for op in a.iter().chain(b.iter()) {
            prop_assert!(merged.contains(op.id()));
        }
    }

    /// The materialized cart never contains an item with no Add op, and
    /// quantities are bounded by anything actually requested.
    #[test]
    fn materialization_is_grounded_in_adds(ops in ops_strategy()) {
        let mut log = CartBlob::new();
        for op in &ops {
            log.record(op.clone());
        }
        let cart = log.materialize();
        for (item, qty) in &cart {
            let total_added: u32 = log
                .iter()
                .filter_map(|op| match &op.action {
                    CartAction::Add { item: i, qty } if i == item => Some(*qty),
                    _ => None,
                })
                .sum();
            let max_change: u32 = log
                .iter()
                .filter_map(|op| match &op.action {
                    CartAction::ChangeQty { item: i, qty } if i == item => Some(*qty),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            prop_assert!(total_added > 0, "item {} appeared from nowhere", item);
            // Worst case: the largest ChangeQty lands first in canonical
            // order and every Add follows it.
            prop_assert!(
                *qty <= total_added + max_change,
                "item {} qty {} exceeds anything requested", item, qty
            );
        }
    }
}
