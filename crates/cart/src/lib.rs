//! # cart — the shopping cart on Dynamo (§6.1 of *Building on Quicksand*)
//!
//! The paper's flagship demonstration that eventual consistency is an
//! **application** property, not a storage property: "Dynamo, acting as
//! a storage substrate, may present two or more old versions in response
//! to a GET. A subsequent PUT must include a blob that integrates and
//! reconciles all the presented versions."
//!
//! The blob this application stores is a ledger of uniquified operations
//! ([`op::CartBlob`] = `OpLog<CartOp>`), so reconciliation is set union
//! and the materialized cart is order-independent — at the price of the
//! documented anomaly that a deleted item occasionally reappears when a
//! concurrent add sorts after the delete (§6.4). The [`harness`] runs
//! concurrent shoppers across partitions and verifies: zero lost edits,
//! full replica convergence, availability under partition (versus a
//! strict-quorum baseline), and counts the resurrections.
//!
//! The crate also carries the counterfactual: [`crdt_cart::CrdtCart`]
//! re-expresses the same cart as a composition of CRDTs (add-wins ORSet
//! membership, PN-counter quantities), and the harness's
//! [`harness::CartMode`] switch turns the §6.4 anomaly into a measured
//! same-seed ablation between the two representations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crdt_cart;
pub mod crdt_shopper;
pub mod harness;
pub mod op;
pub mod shopper;

pub use crdt_cart::CrdtCart;
pub use crdt_shopper::CrdtShopper;
pub use harness::{run, CartMode, CartReport, CartScenario, CART_KEY};
pub use op::{merged_context, reconcile, Cart, CartAction, CartBlob, CartOp};
pub use shopper::{AckedEdit, Shopper};
