//! The CRDT shopper: the same client session as [`crate::shopper`], but
//! editing a [`CrdtCart`] instead of an operation ledger.
//!
//! The GET-reconcile-PUT cycle, retry discipline, timers, and anomaly
//! accounting hooks are deliberately identical to the op-log shopper so
//! the two cart modes differ in exactly one variable: *what the blob is
//! and how siblings reconcile*. Here reconciliation is the lattice join
//! ([`crdt::Crdt::merge`]) — no ledger union, no canonical replay — and
//! the shopper's edit is applied to the joined view as a CRDT mutation
//! attributed to the shopper's replica id.
//!
//! With [`dynamo::build_crdt_cluster`] the store squashes siblings
//! server-side, so most GETs already return a single joined version; the
//! client-side fold is the belt to that suspender.

use dynamo::{DynamoMsg, VectorClock, Versioned};
use quicksand_core::uniquifier::UniquifierSource;
use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration, SpanId};

use crate::crdt_cart::CrdtCart;
use crate::op::CartAction;
use crate::shopper::AckedEdit;
use crdt::Crdt;

const TAG_SHIFT: u64 = 48;
const TAG_NEXT: u64 = 1;
const TAG_STUCK: u64 = 2;

fn tag(kind: u64, seq: u64) -> u64 {
    (kind << TAG_SHIFT) | seq
}

#[derive(Debug)]
enum Phase {
    Idle,
    Getting { req: u64 },
    Putting { req: u64 },
}

/// Join every sibling's cart into one view.
fn joined_cart(siblings: &[Versioned<CrdtCart>]) -> CrdtCart {
    let mut cart = CrdtCart::new();
    for s in siblings {
        cart.merge(&s.value);
    }
    cart
}

/// The causal context for writing back the joined cart (merge of every
/// sibling's clock, same contract as [`crate::op::merged_context`]).
fn joined_context(siblings: &[Versioned<CrdtCart>]) -> VectorClock {
    let mut clock = VectorClock::new();
    for s in siblings {
        clock = clock.merged(&s.effective_clock());
    }
    clock
}

/// A shopper session working through a planned list of cart edits on the
/// CRDT cart.
#[derive(Debug)]
pub struct CrdtShopper {
    /// Shopper id (namespaces uniquifiers, request ids, and the CRDT
    /// replica id).
    pub id: u32,
    key: u64,
    coordinators: Vec<NodeId>,
    plan: Vec<CartAction>,
    think: SimDuration,
    stuck_timeout: SimDuration,
    ids: UniquifierSource,

    next_action: usize,
    /// Session cache: the join of every cart state this shopper has
    /// written or observed. Folded into each GET's view before the next
    /// edit is applied, it gives the session read-your-writes — which
    /// for the OR-Set is *load-bearing*, not a nicety: the dot counter
    /// that makes each add instance unique lives in the CRDT's causal
    /// context, so applying an edit to a view that is missing this
    /// shopper's earlier writes (a stale replica behind a one-way
    /// partition, or the empty view a failed GET falls back to) would
    /// re-mint an already-used dot — and an earlier remove that
    /// observed the first minting would silently swallow the re-add on
    /// merge. (The op-log cart is immune: its uniquifiers come from a
    /// session-monotonic source, which is exactly the property this
    /// cache restores for dots.)
    session: CrdtCart,
    /// The edit currently being worked in (kept across retries so its
    /// uniquifier is stable), as (uniquifier, action).
    current_op: Option<(quicksand_core::uniquifier::Uniquifier, CartAction)>,
    /// The `cart.edit` span covering the whole GET-reconcile-PUT cycle.
    edit_span: Option<SpanId>,
    phase: Phase,
    req_counter: u64,
    /// Edits whose PUT was acknowledged.
    pub acked: Vec<AckedEdit>,
    /// GETs that failed (shopper proceeded on an empty view).
    pub get_failures: u64,
    /// PUTs that failed (shopper retried).
    pub put_failures: u64,
    /// PUT attempts (for availability accounting).
    pub put_attempts: u64,
    /// GETs that returned more than one sibling.
    pub sibling_gets: u64,
    /// Open guess for the in-flight PUT (see [`crate::shopper::Shopper`]).
    put_guess: Option<SpanId>,
}

impl CrdtShopper {
    /// A shopper editing cart `key` through any of `coordinators`.
    pub fn new(
        id: u32,
        key: u64,
        coordinators: Vec<NodeId>,
        plan: Vec<CartAction>,
        think: SimDuration,
    ) -> Self {
        CrdtShopper {
            id,
            key,
            coordinators,
            plan,
            think,
            stuck_timeout: SimDuration::from_millis(500),
            ids: UniquifierSource::new(0x5000 + id as u64),
            next_action: 0,
            session: CrdtCart::new(),
            current_op: None,
            edit_span: None,
            phase: Phase::Idle,
            req_counter: 0,
            acked: Vec::new(),
            get_failures: 0,
            put_failures: 0,
            put_attempts: 0,
            sibling_gets: 0,
            put_guess: None,
        }
    }

    /// True when every planned edit has been acknowledged.
    pub fn done(&self) -> bool {
        self.next_action >= self.plan.len() && self.current_op.is_none()
    }

    /// The CRDT replica id this shopper mutates as.
    fn replica(&self) -> u64 {
        0x5000 + self.id as u64
    }

    fn new_req(&mut self) -> u64 {
        self.req_counter += 1;
        ((self.id as u64) << 32) | self.req_counter
    }

    fn pick_coordinator(&self, ctx: &mut Context<'_, DynamoMsg<CrdtCart>>) -> NodeId {
        let i = ctx.rng().gen_range(0..self.coordinators.len());
        self.coordinators[i]
    }

    fn begin_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<CrdtCart>>) {
        if self.current_op.is_none() {
            if self.next_action >= self.plan.len() {
                return;
            }
            let action = self.plan[self.next_action].clone();
            self.next_action += 1;
            let span = ctx.child_span(ctx.current_span(), "cart.edit");
            ctx.span_field(span, "shopper", self.id);
            ctx.span_field(span, "action", format!("{action:?}"));
            self.edit_span = Some(span);
            self.current_op = Some((self.ids.next_id(), action));
        }
        let req = self.new_req();
        self.phase = Phase::Getting { req };
        let me = ctx.me();
        let coord = self.pick_coordinator(ctx);
        ctx.set_current_span(self.edit_span);
        ctx.send(coord, DynamoMsg::ClientGet { req, key: self.key, resp_to: me });
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn put_merged(
        &mut self,
        ctx: &mut Context<'_, DynamoMsg<CrdtCart>>,
        mut cart: CrdtCart,
        context: VectorClock,
        basis: &str,
    ) {
        let (_, action) = self.current_op.clone().expect("a cycle is in progress");
        // Fold in the session cache so the edit is applied to a view
        // that contains every dot this shopper ever minted (see the
        // `session` field for why this is a correctness requirement).
        cart.merge(&self.session);
        cart.apply(self.replica(), &action);
        self.session = cart.clone();
        let req = self.new_req();
        self.phase = Phase::Putting { req };
        self.put_attempts += 1;
        let me = ctx.me();
        let coord = self.pick_coordinator(ctx);
        ctx.set_current_span(self.edit_span);
        // The PUT is a guess: the shopper acts on whatever view the GET
        // produced (the lattice join makes the eventual merge safe, but
        // the individual PUT can still fail or race).
        self.put_guess = Some(ctx.begin_guess_basis("cart.put", basis));
        ctx.send(
            coord,
            DynamoMsg::ClientPut { req, key: self.key, value: cart, context, resp_to: me },
        );
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn finish_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<CrdtCart>>) {
        if let Some(g) = self.put_guess.take() {
            ctx.resolve_guess(g, true);
        }
        let (id, action) = self.current_op.take().expect("finishing an active cycle");
        self.acked.push(AckedEdit { id, action, at: ctx.now() });
        if let Some(span) = self.edit_span.take() {
            ctx.finish_span(span);
        }
        ctx.metrics().inc("cart.edits_acked");
        self.phase = Phase::Idle;
        if self.next_action < self.plan.len() {
            let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
            ctx.set_timer(
                self.think + SimDuration::from_micros(jitter),
                tag(TAG_NEXT, self.next_action as u64),
            );
        }
    }

    fn retry_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<CrdtCart>>) {
        if let Some(g) = self.put_guess.take() {
            // The optimistic PUT did not pan out: apologize and redo.
            ctx.resolve_guess(g, false);
        }
        if let Some(span) = self.edit_span {
            ctx.trace_event("cart.retry", &[("shopper", self.id.to_string())]);
            ctx.span_field(span, "retried", "true");
        }
        self.phase = Phase::Idle;
        let backoff = self.think / 2 + SimDuration::from_micros(ctx.rng().gen_range(0..10_000));
        ctx.set_timer(backoff, tag(TAG_NEXT, u64::MAX >> 16));
    }
}

impl Actor<DynamoMsg<CrdtCart>> for CrdtShopper {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<CrdtCart>>) {
        let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
        ctx.set_timer(SimDuration::from_micros(jitter), tag(TAG_NEXT, 0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DynamoMsg<CrdtCart>>, t: u64) {
        let kind = t >> TAG_SHIFT;
        match kind {
            TAG_NEXT => {
                if matches!(self.phase, Phase::Idle) {
                    self.begin_cycle(ctx);
                }
            }
            TAG_STUCK => {
                let req = t & ((1 << TAG_SHIFT) - 1);
                let stuck = match self.phase {
                    Phase::Getting { req: r } | Phase::Putting { req: r } => r == req,
                    Phase::Idle => false,
                };
                if stuck {
                    ctx.metrics().inc("cart.stuck_retries");
                    self.retry_cycle(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DynamoMsg<CrdtCart>>,
        _from: NodeId,
        msg: DynamoMsg<CrdtCart>,
    ) {
        match msg {
            DynamoMsg::GetOk { req, versions, .. } => {
                if !matches!(self.phase, Phase::Getting { req: r } if r == req) {
                    return;
                }
                if versions.len() > 1 {
                    self.sibling_gets += 1;
                    ctx.metrics().inc("cart.sibling_reconciliations");
                }
                let cart = joined_cart(&versions);
                let context = joined_context(&versions);
                let basis =
                    if versions.len() > 1 { "reconciled sibling views" } else { "fetched view" };
                self.put_merged(ctx, cart, context, basis);
            }
            DynamoMsg::GetFailed { req } => {
                if !matches!(self.phase, Phase::Getting { req: r } if r == req) {
                    return;
                }
                // Availability over consistency: proceed on an empty view.
                self.get_failures += 1;
                ctx.metrics().inc("cart.get_failures");
                self.put_merged(
                    ctx,
                    CrdtCart::new(),
                    VectorClock::new(),
                    "empty view after failed GET",
                );
            }
            DynamoMsg::PutOk { req } => {
                if !matches!(self.phase, Phase::Putting { req: r } if r == req) {
                    return;
                }
                self.finish_cycle(ctx);
            }
            DynamoMsg::PutFailed { req } => {
                if !matches!(self.phase, Phase::Putting { req: r } if r == req) {
                    return;
                }
                self.put_failures += 1;
                ctx.metrics().inc("cart.put_failures");
                self.retry_cycle(ctx);
            }
            _ => {}
        }
    }
}
