//! The shopper: a client session editing a cart through the Dynamo
//! GET-reconcile-PUT cycle.
//!
//! The shopper owns the application half of the §6.1 contract: when a
//! GET returns sibling versions, it unions their ledgers, folds in the
//! new operation, and PUTs the merged blob back under the merged causal
//! context. When a GET *fails* (partition), the shopper chooses
//! availability: it proceeds against an empty view rather than turning
//! the customer away — "unavailability of the shopping cart service is
//! very expensive" — accepting that the blind write will surface later
//! as a sibling to reconcile.

use dynamo::{DynamoMsg, VectorClock};
use quicksand_core::uniquifier::{Uniquifier, UniquifierSource};
use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration, SimTime, SpanId};

use crate::op::{merged_context, reconcile, CartAction, CartBlob, CartOp};

const TAG_SHIFT: u64 = 48;
const TAG_NEXT: u64 = 1;
const TAG_STUCK: u64 = 2;

fn tag(kind: u64, seq: u64) -> u64 {
    (kind << TAG_SHIFT) | seq
}

#[derive(Debug)]
enum Phase {
    Idle,
    Getting { req: u64 },
    Putting { req: u64 },
}

/// A record of one acknowledged cart edit, for post-run verification.
#[derive(Debug, Clone)]
pub struct AckedEdit {
    /// The operation's uniquifier.
    pub id: Uniquifier,
    /// What it did.
    pub action: CartAction,
    /// When the PUT was acknowledged.
    pub at: SimTime,
}

/// A shopper session working through a planned list of cart edits.
#[derive(Debug)]
pub struct Shopper {
    /// Shopper id (namespaces uniquifiers and request ids).
    pub id: u32,
    key: u64,
    coordinators: Vec<NodeId>,
    plan: Vec<CartAction>,
    think: SimDuration,
    stuck_timeout: SimDuration,
    ids: UniquifierSource,

    next_action: usize,
    /// The op currently being worked in (kept across retries so its
    /// uniquifier is stable).
    current_op: Option<CartOp>,
    /// The `cart.edit` span covering the whole GET-reconcile-PUT cycle,
    /// including retries (same lifetime as `current_op`).
    edit_span: Option<SpanId>,
    phase: Phase,
    req_counter: u64,
    /// Edits whose PUT was acknowledged.
    pub acked: Vec<AckedEdit>,
    /// GETs that failed (shopper proceeded on an empty view).
    pub get_failures: u64,
    /// PUTs that failed (shopper retried).
    pub put_failures: u64,
    /// PUT attempts (for availability accounting).
    pub put_attempts: u64,
    /// GETs that returned more than one sibling.
    pub sibling_gets: u64,
    /// Open guess for the in-flight PUT: the shopper bets its merged
    /// view is current enough to act on. Confirmed on `PutOk`,
    /// apologized when the PUT fails or the cycle restarts.
    put_guess: Option<SpanId>,
}

impl Shopper {
    /// A shopper editing cart `key` through any of `coordinators`.
    pub fn new(
        id: u32,
        key: u64,
        coordinators: Vec<NodeId>,
        plan: Vec<CartAction>,
        think: SimDuration,
    ) -> Self {
        Shopper {
            id,
            key,
            coordinators,
            plan,
            think,
            stuck_timeout: SimDuration::from_millis(500),
            ids: UniquifierSource::new(0x5000 + id as u64),
            next_action: 0,
            current_op: None,
            edit_span: None,
            phase: Phase::Idle,
            req_counter: 0,
            acked: Vec::new(),
            get_failures: 0,
            put_failures: 0,
            put_attempts: 0,
            sibling_gets: 0,
            put_guess: None,
        }
    }

    /// True when every planned edit has been acknowledged.
    pub fn done(&self) -> bool {
        self.next_action >= self.plan.len() && self.current_op.is_none()
    }

    fn new_req(&mut self) -> u64 {
        self.req_counter += 1;
        ((self.id as u64) << 32) | self.req_counter
    }

    fn pick_coordinator(&self, ctx: &mut Context<'_, DynamoMsg<CartBlob>>) -> NodeId {
        let i = ctx.rng().gen_range(0..self.coordinators.len());
        self.coordinators[i]
    }

    fn begin_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<CartBlob>>) {
        // Take the next planned action unless a previous one is still
        // being retried.
        if self.current_op.is_none() {
            if self.next_action >= self.plan.len() {
                return;
            }
            let action = self.plan[self.next_action].clone();
            self.next_action += 1;
            let span = ctx.child_span(ctx.current_span(), "cart.edit");
            ctx.span_field(span, "shopper", self.id);
            ctx.span_field(span, "action", format!("{action:?}"));
            self.edit_span = Some(span);
            self.current_op = Some(CartOp { id: self.ids.next_id(), action });
        }
        let req = self.new_req();
        self.phase = Phase::Getting { req };
        let me = ctx.me();
        let coord = self.pick_coordinator(ctx);
        // All traffic for this cycle — including retries — hangs off the
        // one cart.edit span.
        ctx.set_current_span(self.edit_span);
        ctx.send(coord, DynamoMsg::ClientGet { req, key: self.key, resp_to: me });
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn put_merged(
        &mut self,
        ctx: &mut Context<'_, DynamoMsg<CartBlob>>,
        mut ledger: CartBlob,
        context: VectorClock,
        basis: &str,
    ) {
        let op = self.current_op.clone().expect("a cycle is in progress");
        ledger.record(op);
        let req = self.new_req();
        self.phase = Phase::Putting { req };
        self.put_attempts += 1;
        let me = ctx.me();
        let coord = self.pick_coordinator(ctx);
        ctx.set_current_span(self.edit_span);
        // The PUT is a guess: the shopper acts on whatever view the GET
        // produced, knowing a concurrent editor may fork a sibling.
        self.put_guess = Some(ctx.begin_guess_basis("cart.put", basis));
        ctx.send(
            coord,
            DynamoMsg::ClientPut { req, key: self.key, value: ledger, context, resp_to: me },
        );
        ctx.set_timer(self.stuck_timeout, tag(TAG_STUCK, req));
    }

    fn finish_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<CartBlob>>) {
        if let Some(g) = self.put_guess.take() {
            ctx.resolve_guess(g, true);
        }
        let op = self.current_op.take().expect("finishing an active cycle");
        self.acked.push(AckedEdit { id: op.id, action: op.action, at: ctx.now() });
        if let Some(span) = self.edit_span.take() {
            ctx.finish_span(span);
        }
        ctx.metrics().inc("cart.edits_acked");
        self.phase = Phase::Idle;
        if self.next_action < self.plan.len() {
            let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
            ctx.set_timer(
                self.think + SimDuration::from_micros(jitter),
                tag(TAG_NEXT, self.next_action as u64),
            );
        }
    }

    fn retry_cycle(&mut self, ctx: &mut Context<'_, DynamoMsg<CartBlob>>) {
        // Back off briefly, then re-run the whole GET-merge-PUT cycle
        // with the same operation uniquifier.
        if let Some(g) = self.put_guess.take() {
            // The optimistic PUT did not pan out: apologize and redo.
            ctx.resolve_guess(g, false);
        }
        if let Some(span) = self.edit_span {
            ctx.trace_event("cart.retry", &[("shopper", self.id.to_string())]);
            ctx.span_field(span, "retried", "true");
        }
        self.phase = Phase::Idle;
        let backoff = self.think / 2 + SimDuration::from_micros(ctx.rng().gen_range(0..10_000));
        ctx.set_timer(backoff, tag(TAG_NEXT, u64::MAX >> 16));
    }
}

impl Actor<DynamoMsg<CartBlob>> for Shopper {
    fn on_start(&mut self, ctx: &mut Context<'_, DynamoMsg<CartBlob>>) {
        let jitter = ctx.rng().gen_range(0..=self.think.as_micros());
        ctx.set_timer(SimDuration::from_micros(jitter), tag(TAG_NEXT, 0));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DynamoMsg<CartBlob>>, t: u64) {
        let kind = t >> TAG_SHIFT;
        match kind {
            TAG_NEXT => {
                if matches!(self.phase, Phase::Idle) {
                    self.begin_cycle(ctx);
                }
            }
            TAG_STUCK => {
                let req = t & ((1 << TAG_SHIFT) - 1);
                let stuck = match self.phase {
                    Phase::Getting { req: r } | Phase::Putting { req: r } => r == req,
                    Phase::Idle => false,
                };
                if stuck {
                    // The coordinator never answered (e.g. it crashed):
                    // start the cycle over.
                    ctx.metrics().inc("cart.stuck_retries");
                    self.retry_cycle(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, DynamoMsg<CartBlob>>,
        _from: NodeId,
        msg: DynamoMsg<CartBlob>,
    ) {
        match msg {
            DynamoMsg::GetOk { req, versions, .. } => {
                if !matches!(self.phase, Phase::Getting { req: r } if r == req) {
                    return;
                }
                if versions.len() > 1 {
                    self.sibling_gets += 1;
                    ctx.metrics().inc("cart.sibling_reconciliations");
                }
                let ledger = reconcile(&versions);
                let context = merged_context(&versions);
                let basis =
                    if versions.len() > 1 { "reconciled sibling views" } else { "fetched view" };
                self.put_merged(ctx, ledger, context, basis);
            }
            DynamoMsg::GetFailed { req } => {
                if !matches!(self.phase, Phase::Getting { req: r } if r == req) {
                    return;
                }
                // Availability over consistency: proceed on an empty view.
                self.get_failures += 1;
                ctx.metrics().inc("cart.get_failures");
                self.put_merged(
                    ctx,
                    CartBlob::new(),
                    VectorClock::new(),
                    "empty view after failed GET",
                );
            }
            DynamoMsg::PutOk { req } => {
                if !matches!(self.phase, Phase::Putting { req: r } if r == req) {
                    return;
                }
                self.finish_cycle(ctx);
            }
            DynamoMsg::PutFailed { req } => {
                if !matches!(self.phase, Phase::Putting { req: r } if r == req) {
                    return;
                }
                self.put_failures += 1;
                ctx.metrics().inc("cart.put_failures");
                self.retry_cycle(ctx);
            }
            _ => {}
        }
    }
}
