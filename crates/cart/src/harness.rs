//! The E6 scenario: concurrent shoppers on one cart across a partition,
//! with convergence verification and anomaly accounting.
//!
//! The harness runs the same shopper plans in either of two cart
//! representations — [`CartMode::OpLog`] (the paper-faithful §6.1
//! operation ledger with canonical-order replay) or [`CartMode::OrSet`]
//! (the CRDT cart of [`crate::crdt_cart`]) — producing the same
//! [`CartReport`], so the §6.4 reappearing-delete anomaly becomes a
//! measured ablation rather than an anecdote.

use std::collections::BTreeMap;

use dynamo::{build_cluster, build_crdt_cluster, DynamoConfig, DynamoMsg, StoreNode};
use sim::chaos::FaultPlan;
use sim::{
    FlightRecorder, LedgerAccounting, MetricSet, NodeId, SimDuration, SimTime, Simulation,
    SpanStore,
};

use crate::crdt_cart::CrdtCart;
use crate::crdt_shopper::CrdtShopper;
use crate::op::{Cart, CartAction, CartBlob};
use crate::shopper::{AckedEdit, Shopper};
use crdt::Crdt;

/// Which cart representation the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CartMode {
    /// The paper-faithful §6.1 ledger: sibling reconciliation is op-set
    /// union and the view replays the union in uniquifier order —
    /// exhibiting the §6.4 reappearing-delete anomaly.
    #[default]
    OpLog,
    /// The ACID 2.0 cart: add-wins ORSet membership plus PN-counter
    /// quantities; reconciliation is the lattice join and the store
    /// squashes siblings server-side.
    OrSet,
}

/// Configuration of a cart scenario.
#[derive(Debug, Clone)]
pub struct CartScenario {
    /// Store configuration (quorums, sloppiness, gossip).
    pub dynamo: DynamoConfig,
    /// Cart representation (op-log ledger or CRDT).
    pub mode: CartMode,
    /// Number of stores.
    pub n_stores: u32,
    /// Shopper edit plans (one shopper each).
    pub plans: Vec<Vec<CartAction>>,
    /// Think time between a shopper's edits.
    pub think: SimDuration,
    /// Partition the cluster+shoppers into two halves over this window
    /// (legacy knob, kept for back-compat; equivalent to a single
    /// two-sided clause in `faults`).
    pub partition: Option<(SimTime, SimTime)>,
    /// Declarative fault timeline (partitions, crashes, degrades)
    /// applied on top of the legacy `partition` knob.
    pub faults: FaultPlan,
    /// Run until here.
    pub horizon: SimTime,
    /// Record the sim+app event trace (needed for JSONL export).
    pub trace: bool,
    /// Enable the forensic flight recorder (causal event graph). Off by
    /// default; chaos explainers re-run failing seeds with it on.
    pub flight: bool,
}

impl Default for CartScenario {
    fn default() -> Self {
        CartScenario {
            dynamo: DynamoConfig::default(),
            mode: CartMode::OpLog,
            n_stores: 5,
            plans: vec![
                vec![
                    CartAction::Add { item: 1, qty: 1 },
                    CartAction::Add { item: 2, qty: 2 },
                    CartAction::Remove { item: 1 },
                ],
                vec![
                    CartAction::Add { item: 3, qty: 1 },
                    CartAction::ChangeQty { item: 3, qty: 4 },
                    CartAction::Add { item: 1, qty: 5 },
                ],
            ],
            think: SimDuration::from_millis(50),
            partition: None,
            faults: FaultPlan::none(),
            horizon: SimTime::from_secs(30),
            trace: false,
            flight: false,
        }
    }
}

impl CartScenario {
    /// The §6.4 ablation scenario: one shopper adds six SKUs, the other
    /// — after enough filler edits that every add has propagated —
    /// deletes each of them. Every delete therefore causally *observes*
    /// the add it deletes, yet in op-log mode the replay order is
    /// uniquifier order (a stable hash), so roughly half the deletes
    /// sort before the adds they observed and the items reappear. In
    /// ORSet mode an observed add can never survive its delete, so the
    /// same plans yield zero resurrections.
    pub fn contended(mode: CartMode) -> CartScenario {
        let filler = 100;
        let mut deleter = vec![
            CartAction::Add { item: filler, qty: 1 },
            CartAction::ChangeQty { item: filler, qty: 2 },
            CartAction::ChangeQty { item: filler, qty: 3 },
            CartAction::ChangeQty { item: filler, qty: 2 },
            CartAction::ChangeQty { item: filler, qty: 4 },
            CartAction::ChangeQty { item: filler, qty: 1 },
        ];
        deleter.extend((0..6).map(|item| CartAction::Remove { item }));
        let adder = (0..6).map(|item| CartAction::Add { item, qty: 1 }).collect();
        CartScenario { mode, plans: vec![deleter, adder], ..CartScenario::default() }
    }
}

/// What the scenario measured.
#[derive(Debug, Clone, Default)]
pub struct CartReport {
    /// Edits acknowledged to shoppers.
    pub edits_acked: u64,
    /// Acked edits missing from the converged ledger — must be zero:
    /// "items added to the cart will not be lost" (§6.4).
    pub lost_edits: u64,
    /// GETs that surfaced siblings for the application to reconcile.
    pub sibling_reconciliations: u64,
    /// GETs that failed; the shopper proceeded on an empty view.
    pub get_failures: u64,
    /// PUTs that failed outright.
    pub put_failures: u64,
    /// PUT attempts (availability denominator).
    pub put_attempts: u64,
    /// Items in the final cart whose latest real-time acked edit was a
    /// Remove — the documented resurrection anomaly (§6.4).
    pub resurrected_items: u64,
    /// The converged materialized cart.
    pub final_cart: BTreeMap<u64, u32>,
    /// True if all replicas converged to the same sibling set.
    pub converged: bool,
    /// Metrics the simulator gathered (`cart.*`, `dynamo.*`, `net.*`).
    pub metrics: MetricSet,
    /// Every span the run recorded: `cart.edit` → `dynamo.put`/`get` →
    /// `net.hop` causal trees with per-hop latency.
    pub spans: SpanStore,
    /// The sim+app event trace as JSONL, when `CartScenario::trace` was
    /// set.
    pub trace_jsonl: Option<String>,
    /// Guess/apology accounting (`cart.put` guesses: edits acted on a
    /// possibly-stale view).
    pub ledger: LedgerAccounting,
    /// The causal event graph, when `CartScenario::flight` was set.
    pub flight: Option<FlightRecorder>,
}

impl CartReport {
    /// Fraction of PUT attempts that succeeded.
    pub fn put_availability(&self) -> f64 {
        if self.put_attempts == 0 {
            1.0
        } else {
            1.0 - self.put_failures as f64 / self.put_attempts as f64
        }
    }
}

/// The cart key every shopper edits.
pub const CART_KEY: u64 = 777;

/// Per-item wall-clock-latest acked edit: (ack time, was it a remove).
fn latest_acked(acked: &[AckedEdit]) -> BTreeMap<u64, (SimTime, bool)> {
    let mut latest: BTreeMap<u64, (SimTime, bool)> = BTreeMap::new();
    for e in acked {
        let is_remove =
            matches!(e.action, CartAction::Remove { .. } | CartAction::ChangeQty { qty: 0, .. });
        let entry = latest.entry(e.action.item()).or_insert((e.at, is_remove));
        if e.at >= entry.0 {
            *entry = (e.at, is_remove);
        }
    }
    latest
}

/// Resurrections: items present although their latest acked edit removed
/// them (§6.4: "occasionally deleted items will reappear").
fn count_resurrections(acked: &[AckedEdit], final_cart: &Cart) -> u64 {
    latest_acked(acked)
        .iter()
        .filter(|(item, (_, removed_last))| *removed_last && final_cart.contains_key(item))
        .count() as u64
}

/// Split the store fleet in halves and attach shoppers alternately, so a
/// partition separates shoppers fully along with their stores. Returns
/// (left-with-shoppers, right-with-shoppers) partition sides.
fn partition_sides(stores: &[NodeId], shopper_nodes: &[NodeId]) -> (Vec<NodeId>, Vec<NodeId>) {
    let half = stores.len().div_ceil(2);
    let mut left_side = stores[..half].to_vec();
    let mut right_side = stores[half..].to_vec();
    for (i, n) in shopper_nodes.iter().enumerate() {
        if i % 2 == 0 {
            left_side.push(*n);
        } else {
            right_side.push(*n);
        }
    }
    (left_side, right_side)
}

/// Run a cart scenario and verify convergence.
pub fn run(scenario: &CartScenario, seed: u64) -> CartReport {
    match scenario.mode {
        CartMode::OpLog => run_oplog(scenario, seed),
        CartMode::OrSet => run_orset(scenario, seed),
    }
}

fn run_oplog(scenario: &CartScenario, seed: u64) -> CartReport {
    let mut sim: Simulation<DynamoMsg<CartBlob>> = Simulation::new(seed);
    if scenario.trace {
        sim.enable_trace(1 << 20);
    }
    if scenario.flight {
        sim.enable_flight(1 << 16);
    }
    let cluster = build_cluster(&mut sim, scenario.n_stores, &scenario.dynamo);

    // Shoppers attach to disjoint halves of the store fleet so a
    // partition separates them fully.
    let half = (scenario.n_stores as usize).div_ceil(2);
    let left: Vec<NodeId> = cluster.stores[..half].to_vec();
    let right: Vec<NodeId> = cluster.stores[half..].to_vec();
    let mut shopper_nodes = Vec::new();
    for (i, plan) in scenario.plans.iter().enumerate() {
        let coords = if i % 2 == 0 { left.clone() } else { right.clone() };
        let node =
            sim.add_node(Shopper::new(i as u32, CART_KEY, coords, plan.clone(), scenario.think));
        shopper_nodes.push(node);
    }

    if let Some((start, end)) = scenario.partition {
        let (left_side, right_side) = partition_sides(&cluster.stores, &shopper_nodes);
        sim.schedule_partition(start, &left_side, &right_side);
        sim.schedule_heal(end);
    }
    scenario.faults.apply(&mut sim);

    sim.run_until(scenario.horizon);

    let mut report = CartReport::default();

    // Collect shopper-side accounting.
    let mut acked = Vec::new();
    for n in &shopper_nodes {
        let s: &Shopper = sim.actor(*n);
        report.edits_acked += s.acked.len() as u64;
        report.get_failures += s.get_failures;
        report.put_failures += s.put_failures;
        report.put_attempts += s.put_attempts;
        report.sibling_reconciliations += s.sibling_gets;
        acked.extend(s.acked.iter().cloned());
    }

    // Converged ledger: union across every store's sibling set.
    let mut ledger = CartBlob::new();
    for s in &cluster.stores {
        let node: &StoreNode<CartBlob> = sim.actor(*s);
        for v in node.versions(CART_KEY) {
            ledger.merge(&v.value);
        }
    }
    // Convergence: every store holds an equivalent sibling set.
    report.converged = {
        let reference =
            sim.actor::<StoreNode<CartBlob>>(cluster.stores[0]).versions(CART_KEY).to_vec();
        cluster.stores.iter().all(|s| {
            let node: &StoreNode<CartBlob> = sim.actor(*s);
            dynamo::same_versions(node.versions(CART_KEY), &reference)
        })
    };

    // Lost edits: acked but absent from the union.
    for e in &acked {
        if !ledger.contains(e.id) {
            report.lost_edits += 1;
        }
    }

    report.final_cart = ledger.materialize();
    report.resurrected_items = count_resurrections(&acked, &report.final_cart);
    sim.export_ledger_metrics();
    report.ledger = sim.ledger().accounting();
    report.metrics = sim.metrics().clone();
    report.spans = sim.spans().clone();
    report.trace_jsonl = sim.trace().map(|t| t.to_jsonl());
    report.flight = sim.take_flight();
    report
}

fn run_orset(scenario: &CartScenario, seed: u64) -> CartReport {
    let mut sim: Simulation<DynamoMsg<CrdtCart>> = Simulation::new(seed);
    if scenario.trace {
        sim.enable_trace(1 << 20);
    }
    if scenario.flight {
        sim.enable_flight(1 << 16);
    }
    // The CRDT cluster squashes sibling sets server-side — sound here
    // because CrdtCart's merge is the application's reconciliation.
    let cluster = build_crdt_cluster(&mut sim, scenario.n_stores, &scenario.dynamo);

    let half = (scenario.n_stores as usize).div_ceil(2);
    let left: Vec<NodeId> = cluster.stores[..half].to_vec();
    let right: Vec<NodeId> = cluster.stores[half..].to_vec();
    let mut shopper_nodes = Vec::new();
    for (i, plan) in scenario.plans.iter().enumerate() {
        let coords = if i % 2 == 0 { left.clone() } else { right.clone() };
        let node = sim.add_node(CrdtShopper::new(
            i as u32,
            CART_KEY,
            coords,
            plan.clone(),
            scenario.think,
        ));
        shopper_nodes.push(node);
    }

    if let Some((start, end)) = scenario.partition {
        let (left_side, right_side) = partition_sides(&cluster.stores, &shopper_nodes);
        sim.schedule_partition(start, &left_side, &right_side);
        sim.schedule_heal(end);
    }
    scenario.faults.apply(&mut sim);

    sim.run_until(scenario.horizon);

    let mut report = CartReport::default();

    let mut acked = Vec::new();
    for n in &shopper_nodes {
        let s: &CrdtShopper = sim.actor(*n);
        report.edits_acked += s.acked.len() as u64;
        report.get_failures += s.get_failures;
        report.put_failures += s.put_failures;
        report.put_attempts += s.put_attempts;
        report.sibling_reconciliations += s.sibling_gets;
        acked.extend(s.acked.iter().cloned());
    }

    // The converged cart: the join across every store's versions.
    let mut joined = CrdtCart::new();
    let mut per_store: Vec<CrdtCart> = Vec::new();
    for s in &cluster.stores {
        let node: &StoreNode<CrdtCart> = sim.actor(*s);
        let mut local = CrdtCart::new();
        for v in node.versions(CART_KEY) {
            local.merge(&v.value);
        }
        joined.merge(&local);
        per_store.push(local);
    }
    // Convergence for a CRDT store is *value* convergence: every store's
    // joined state is the same lattice point (squash dots may differ
    // transiently, the value may not).
    report.converged = per_store.iter().all(|c| *c == per_store[0]);

    report.final_cart = joined.materialize();

    // Lost edits: an acked Add whose item vanished although no
    // later-acked edit removed it.
    let latest = latest_acked(&acked);
    for e in &acked {
        if let CartAction::Add { item, .. } = e.action {
            let removed_later = latest.get(&item).map(|(_, r)| *r).unwrap_or(false);
            if !removed_later && !report.final_cart.contains_key(&item) {
                report.lost_edits += 1;
            }
        }
    }

    report.resurrected_items = count_resurrections(&acked, &report.final_cart);
    sim.export_ledger_metrics();
    report.ledger = sim.ledger().accounting();
    report.metrics = sim.metrics().clone();
    report.spans = sim.spans().clone();
    report.trace_jsonl = sim.trace().map(|t| t.to_jsonl());
    report.flight = sim.take_flight();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_scenario_converges_with_no_anomalies() {
        let r = run(&CartScenario::default(), 3);
        assert_eq!(r.edits_acked, 6, "{r:?}");
        assert_eq!(r.lost_edits, 0);
        assert!(r.converged, "{r:?}");
        assert_eq!(r.put_availability(), 1.0);
        // Plan: shopper 0 adds 1, adds 2, removes 1; shopper 1 adds 3,
        // changes 3→4, adds 1(qty 5). Item 2 is uncontended; item 3 must
        // be present but its quantity depends on the canonical order of
        // the ChangeQty relative to the Add (op-reordering semantics:
        // the replay order is uniquifier order, not wall-clock order).
        assert_eq!(r.final_cart.get(&2), Some(&2));
        assert!(matches!(r.final_cart.get(&3), Some(1) | Some(4)), "{r:?}");
    }

    #[test]
    fn partition_is_ridden_out_and_every_edit_survives() {
        let scenario = CartScenario {
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(5))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let r = run(&scenario, 5);
        assert_eq!(r.edits_acked, 6, "all edits eventually ack: {r:?}");
        assert_eq!(r.lost_edits, 0, "union loses nothing: {r:?}");
        assert!(r.converged, "gossip must reconverge after heal: {r:?}");
    }

    #[test]
    fn strict_quorum_store_fails_puts_under_partition() {
        let scenario = CartScenario {
            dynamo: DynamoConfig { sloppy: false, ..DynamoConfig::default() },
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(10))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let sloppy = CartScenario {
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(10))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let strict_r = run(&scenario, 8);
        let sloppy_r = run(&sloppy, 8);
        assert!(
            strict_r.put_failures > sloppy_r.put_failures,
            "strict {strict_r:?} vs sloppy {sloppy_r:?}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&CartScenario::default(), 11);
        let b = run(&CartScenario::default(), 11);
        assert_eq!(a.edits_acked, b.edits_acked);
        assert_eq!(a.final_cart, b.final_cart);
    }

    #[test]
    fn orset_calm_scenario_converges_with_no_anomalies() {
        let r = run(&CartScenario { mode: CartMode::OrSet, ..CartScenario::default() }, 3);
        assert_eq!(r.edits_acked, 6, "{r:?}");
        assert_eq!(r.lost_edits, 0, "{r:?}");
        assert_eq!(r.resurrected_items, 0, "{r:?}");
        assert!(r.converged, "{r:?}");
        assert_eq!(r.put_availability(), 1.0);
        assert_eq!(r.final_cart.get(&2), Some(&2));
        // Unlike replay order, the CRDT cart applies ChangeQty to the
        // observed state, so item 3's quantity is deterministic.
        assert_eq!(r.final_cart.get(&3), Some(&4), "{r:?}");
    }

    #[test]
    fn orset_deterministic() {
        let scenario = CartScenario { mode: CartMode::OrSet, ..CartScenario::default() };
        let a = run(&scenario, 11);
        let b = run(&scenario, 11);
        assert_eq!(a.edits_acked, b.edits_acked);
        assert_eq!(a.final_cart, b.final_cart);
    }

    #[test]
    fn orset_rides_out_a_partition_without_losing_adds() {
        let scenario = CartScenario {
            mode: CartMode::OrSet,
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(5))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let r = run(&scenario, 5);
        assert_eq!(r.edits_acked, 6, "all edits eventually ack: {r:?}");
        assert_eq!(r.lost_edits, 0, "add-wins loses nothing: {r:?}");
        assert!(r.converged, "gossip must reconverge after heal: {r:?}");
    }

    #[test]
    fn the_ablation_oplog_resurrects_deletes_and_orset_does_not() {
        // Same seed, same plans, only the cart representation differs.
        let seed = 21;
        let oplog = run(&CartScenario::contended(CartMode::OpLog), seed);
        let orset = run(&CartScenario::contended(CartMode::OrSet), seed);
        assert!(oplog.converged && orset.converged, "{oplog:?}\n{orset:?}");
        assert_eq!(oplog.lost_edits, 0);
        assert_eq!(orset.lost_edits, 0, "{orset:?}");
        assert!(oplog.resurrected_items > 0, "op-log replay must reproduce §6.4: {oplog:?}");
        assert_eq!(
            orset.resurrected_items, 0,
            "an observed-remove can never be replay-inverted: {orset:?}"
        );
    }
}
