//! The E6 scenario: concurrent shoppers on one cart across a partition,
//! with convergence verification and anomaly accounting.

use std::collections::BTreeMap;

use dynamo::{build_cluster, DynamoConfig, DynamoMsg, StoreNode};
use sim::{MetricSet, NodeId, SimDuration, SimTime, Simulation, SpanStore};

use crate::op::{CartAction, CartBlob};
use crate::shopper::Shopper;

/// Configuration of a cart scenario.
#[derive(Debug, Clone)]
pub struct CartScenario {
    /// Store configuration (quorums, sloppiness, gossip).
    pub dynamo: DynamoConfig,
    /// Number of stores.
    pub n_stores: u32,
    /// Shopper edit plans (one shopper each).
    pub plans: Vec<Vec<CartAction>>,
    /// Think time between a shopper's edits.
    pub think: SimDuration,
    /// Partition the cluster+shoppers into two halves over this window.
    pub partition: Option<(SimTime, SimTime)>,
    /// Run until here.
    pub horizon: SimTime,
    /// Record the sim+app event trace (needed for JSONL export).
    pub trace: bool,
}

impl Default for CartScenario {
    fn default() -> Self {
        CartScenario {
            dynamo: DynamoConfig::default(),
            n_stores: 5,
            plans: vec![
                vec![
                    CartAction::Add { item: 1, qty: 1 },
                    CartAction::Add { item: 2, qty: 2 },
                    CartAction::Remove { item: 1 },
                ],
                vec![
                    CartAction::Add { item: 3, qty: 1 },
                    CartAction::ChangeQty { item: 3, qty: 4 },
                    CartAction::Add { item: 1, qty: 5 },
                ],
            ],
            think: SimDuration::from_millis(50),
            partition: None,
            horizon: SimTime::from_secs(30),
            trace: false,
        }
    }
}

/// What the scenario measured.
#[derive(Debug, Clone, Default)]
pub struct CartReport {
    /// Edits acknowledged to shoppers.
    pub edits_acked: u64,
    /// Acked edits missing from the converged ledger — must be zero:
    /// "items added to the cart will not be lost" (§6.4).
    pub lost_edits: u64,
    /// GETs that surfaced siblings for the application to reconcile.
    pub sibling_reconciliations: u64,
    /// GETs that failed; the shopper proceeded on an empty view.
    pub get_failures: u64,
    /// PUTs that failed outright.
    pub put_failures: u64,
    /// PUT attempts (availability denominator).
    pub put_attempts: u64,
    /// Items in the final cart whose latest real-time acked edit was a
    /// Remove — the documented resurrection anomaly (§6.4).
    pub resurrected_items: u64,
    /// The converged materialized cart.
    pub final_cart: BTreeMap<u64, u32>,
    /// True if all replicas converged to the same sibling set.
    pub converged: bool,
    /// Metrics the simulator gathered (`cart.*`, `dynamo.*`, `net.*`).
    pub metrics: MetricSet,
    /// Every span the run recorded: `cart.edit` → `dynamo.put`/`get` →
    /// `net.hop` causal trees with per-hop latency.
    pub spans: SpanStore,
    /// The sim+app event trace as JSONL, when `CartScenario::trace` was
    /// set.
    pub trace_jsonl: Option<String>,
}

impl CartReport {
    /// Fraction of PUT attempts that succeeded.
    pub fn put_availability(&self) -> f64 {
        if self.put_attempts == 0 {
            1.0
        } else {
            1.0 - self.put_failures as f64 / self.put_attempts as f64
        }
    }
}

/// The cart key every shopper edits.
pub const CART_KEY: u64 = 777;

/// Run a cart scenario and verify convergence.
pub fn run(scenario: &CartScenario, seed: u64) -> CartReport {
    let mut sim: Simulation<DynamoMsg<CartBlob>> = Simulation::new(seed);
    if scenario.trace {
        sim.enable_trace(1 << 20);
    }
    let cluster = build_cluster(&mut sim, scenario.n_stores, &scenario.dynamo);

    // Shoppers attach to disjoint halves of the store fleet so a
    // partition separates them fully.
    let half = (scenario.n_stores as usize).div_ceil(2);
    let left: Vec<NodeId> = cluster.stores[..half].to_vec();
    let right: Vec<NodeId> = cluster.stores[half..].to_vec();
    let mut shopper_nodes = Vec::new();
    for (i, plan) in scenario.plans.iter().enumerate() {
        let coords = if i % 2 == 0 { left.clone() } else { right.clone() };
        let node =
            sim.add_node(Shopper::new(i as u32, CART_KEY, coords, plan.clone(), scenario.think));
        shopper_nodes.push(node);
    }

    if let Some((start, end)) = scenario.partition {
        // Shoppers are partitioned along with their stores.
        let mut left_side = left.clone();
        let mut right_side = right.clone();
        for (i, n) in shopper_nodes.iter().enumerate() {
            if i % 2 == 0 {
                left_side.push(*n);
            } else {
                right_side.push(*n);
            }
        }
        sim.schedule_partition(start, &left_side, &right_side);
        sim.schedule_heal(end);
    }

    sim.run_until(scenario.horizon);

    let mut report = CartReport::default();

    // Collect shopper-side accounting.
    let mut acked = Vec::new();
    for n in &shopper_nodes {
        let s: &Shopper = sim.actor(*n);
        report.edits_acked += s.acked.len() as u64;
        report.get_failures += s.get_failures;
        report.put_failures += s.put_failures;
        report.put_attempts += s.put_attempts;
        report.sibling_reconciliations += s.sibling_gets;
        acked.extend(s.acked.iter().cloned());
    }

    // Converged ledger: union across every store's sibling set.
    let mut ledger = CartBlob::new();
    for s in &cluster.stores {
        let node: &StoreNode<CartBlob> = sim.actor(*s);
        for v in node.versions(CART_KEY) {
            ledger.merge(&v.value);
        }
    }
    // Convergence: every store holds an equivalent sibling set.
    report.converged = {
        let reference =
            sim.actor::<StoreNode<CartBlob>>(cluster.stores[0]).versions(CART_KEY).to_vec();
        cluster.stores.iter().all(|s| {
            let node: &StoreNode<CartBlob> = sim.actor(*s);
            dynamo::same_versions(node.versions(CART_KEY), &reference)
        })
    };

    // Lost edits: acked but absent from the union.
    for e in &acked {
        if !ledger.contains(e.id) {
            report.lost_edits += 1;
        }
    }

    // Resurrections: item present although its latest acked edit removed
    // it.
    report.final_cart = ledger.materialize();
    let mut latest: BTreeMap<u64, (SimTime, bool)> = BTreeMap::new();
    for e in &acked {
        let is_remove =
            matches!(e.action, CartAction::Remove { .. } | CartAction::ChangeQty { qty: 0, .. });
        let entry = latest.entry(e.action.item()).or_insert((e.at, is_remove));
        if e.at >= entry.0 {
            *entry = (e.at, is_remove);
        }
    }
    for (item, (_, removed_last)) in &latest {
        if *removed_last && report.final_cart.contains_key(item) {
            report.resurrected_items += 1;
        }
    }
    report.metrics = sim.metrics().clone();
    report.spans = sim.spans().clone();
    report.trace_jsonl = sim.trace().map(|t| t.to_jsonl());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_scenario_converges_with_no_anomalies() {
        let r = run(&CartScenario::default(), 3);
        assert_eq!(r.edits_acked, 6, "{r:?}");
        assert_eq!(r.lost_edits, 0);
        assert!(r.converged, "{r:?}");
        assert_eq!(r.put_availability(), 1.0);
        // Plan: shopper 0 adds 1, adds 2, removes 1; shopper 1 adds 3,
        // changes 3→4, adds 1(qty 5). Item 2 is uncontended; item 3 must
        // be present but its quantity depends on the canonical order of
        // the ChangeQty relative to the Add (op-reordering semantics:
        // the replay order is uniquifier order, not wall-clock order).
        assert_eq!(r.final_cart.get(&2), Some(&2));
        assert!(matches!(r.final_cart.get(&3), Some(1) | Some(4)), "{r:?}");
    }

    #[test]
    fn partition_is_ridden_out_and_every_edit_survives() {
        let scenario = CartScenario {
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(5))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let r = run(&scenario, 5);
        assert_eq!(r.edits_acked, 6, "all edits eventually ack: {r:?}");
        assert_eq!(r.lost_edits, 0, "union loses nothing: {r:?}");
        assert!(r.converged, "gossip must reconverge after heal: {r:?}");
    }

    #[test]
    fn strict_quorum_store_fails_puts_under_partition() {
        let scenario = CartScenario {
            dynamo: DynamoConfig { sloppy: false, ..DynamoConfig::default() },
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(10))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let sloppy = CartScenario {
            partition: Some((SimTime::from_millis(20), SimTime::from_secs(10))),
            horizon: SimTime::from_secs(40),
            ..CartScenario::default()
        };
        let strict_r = run(&scenario, 8);
        let sloppy_r = run(&sloppy, 8);
        assert!(
            strict_r.put_failures > sloppy_r.put_failures,
            "strict {strict_r:?} vs sloppy {sloppy_r:?}"
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&CartScenario::default(), 11);
        let b = run(&CartScenario::default(), 11);
        assert_eq!(a.edits_acked, b.edits_acked);
        assert_eq!(a.final_cart, b.final_cart);
    }
}
