//! The cart's operations and reconciliation — the operation-centric
//! pattern of §6.5 applied exactly as §6.1 describes.
//!
//! "To do the application level integration, the shopping cart
//! application must record its operations much like a ledger entry. A
//! deletion of an item from the shopping cart is recorded as an operation
//! appended to the cart. These ADD-TO-CART, CHANGE-NUMBER, and
//! DELETE-FROM-CART operations can usually be reconciled when a union of
//! the operations is finally joined together."
//!
//! The blob stored in Dynamo is therefore an [`OpLog<CartOp>`] — the
//! ledger, not the materialized cart. Sibling reconciliation is op-set
//! union, which is commutative, associative, and idempotent; the
//! *materialized view* replays the union in canonical (uniquifier)
//! order. That replay is where the paper's documented anomaly lives:
//! when a DELETE and a concurrent ADD of the same item sort
//! delete-before-add, the item reappears — "occasionally deleted items
//! will reappear" (§6.4). The experiments measure exactly how often.

use std::collections::BTreeMap;

use dynamo::Versioned;
use quicksand_core::op::{OpLog, Operation};
use quicksand_core::uniquifier::Uniquifier;
use quicksand_core::{WireCodec, WireError};

/// What a shopper asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CartAction {
    /// Put `qty` more of `item` in the cart.
    Add {
        /// Item SKU.
        item: u64,
        /// Quantity added.
        qty: u32,
    },
    /// Set `item`'s quantity to exactly `qty` (the paper's
    /// CHANGE-NUMBER). **No effect if the item is absent** — a
    /// CHANGE-NUMBER replayed after the item's DELETE-FROM-CART (or
    /// before its ADD-TO-CART) is a silent no-op, not an implicit add.
    /// This keeps replay closed over the op alphabet: only ADD can
    /// create membership. Covered by the
    /// `change_qty_on_absent_item_is_a_silent_noop` regression test.
    ChangeQty {
        /// Item SKU.
        item: u64,
        /// New quantity.
        qty: u32,
    },
    /// Remove `item` entirely (DELETE-FROM-CART).
    Remove {
        /// Item SKU.
        item: u64,
    },
}

impl CartAction {
    /// The SKU this action concerns.
    pub fn item(&self) -> u64 {
        match self {
            CartAction::Add { item, .. }
            | CartAction::ChangeQty { item, .. }
            | CartAction::Remove { item } => *item,
        }
    }
}

/// A uniquified cart operation — one ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartOp {
    /// Uniquifier assigned at the ingress replica.
    pub id: Uniquifier,
    /// The shopper's intention.
    pub action: CartAction,
}

/// The materialized cart: SKU → quantity.
pub type Cart = BTreeMap<u64, u32>;

impl Operation for CartOp {
    type State = Cart;

    fn id(&self) -> Uniquifier {
        self.id
    }

    fn apply(&self, cart: &mut Cart) {
        match &self.action {
            CartAction::Add { item, qty } => {
                *cart.entry(*item).or_insert(0) += qty;
            }
            CartAction::ChangeQty { item, qty } => {
                if let Some(q) = cart.get_mut(item) {
                    *q = *qty;
                    if *qty == 0 {
                        cart.remove(item);
                    }
                }
            }
            CartAction::Remove { item } => {
                cart.remove(item);
            }
        }
    }
}

impl WireCodec for CartAction {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CartAction::Add { item, qty } => {
                buf.push(0);
                item.encode(buf);
                qty.encode(buf);
            }
            CartAction::ChangeQty { item, qty } => {
                buf.push(1);
                item.encode(buf);
                qty.encode(buf);
            }
            CartAction::Remove { item } => {
                buf.push(2);
                item.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(CartAction::Add { item: u64::decode(buf)?, qty: u32::decode(buf)? }),
            1 => Ok(CartAction::ChangeQty { item: u64::decode(buf)?, qty: u32::decode(buf)? }),
            2 => Ok(CartAction::Remove { item: u64::decode(buf)? }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireCodec for CartOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.action.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CartOp { id: Uniquifier::decode(buf)?, action: CartAction::decode(buf)? })
    }
}

/// The blob the cart application stores in Dynamo.
pub type CartBlob = OpLog<CartOp>;

/// Reconcile a GET's sibling set into one ledger: the union of every
/// sibling's operations. "Uniquely referenced operations on the items can
/// be unioned together into a list with a predictable outcome." (§6.1)
pub fn reconcile(siblings: &[Versioned<CartBlob>]) -> CartBlob {
    let mut merged = CartBlob::new();
    for s in siblings {
        merged.merge(&s.value);
    }
    merged
}

/// The causal context for writing back a reconciled cart: the merge of
/// every sibling's clock (so the write descends from all of them).
pub fn merged_context(siblings: &[Versioned<CartBlob>]) -> dynamo::VectorClock {
    let mut clock = dynamo::VectorClock::new();
    for s in siblings {
        clock = clock.merged(&s.effective_clock());
    }
    clock
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamo::Dot;

    fn op(n: u64, action: CartAction) -> CartOp {
        CartOp { id: Uniquifier::from_parts(7, n), action }
    }

    fn dot(node: u32, counter: u64) -> Dot {
        Dot { node, counter }
    }

    #[test]
    fn add_change_remove_materialize() {
        let mut log = CartBlob::new();
        log.record(op(1, CartAction::Add { item: 10, qty: 2 }));
        log.record(op(2, CartAction::Add { item: 11, qty: 1 }));
        log.record(op(3, CartAction::ChangeQty { item: 10, qty: 5 }));
        log.record(op(4, CartAction::Remove { item: 11 }));
        let cart = log.materialize();
        assert_eq!(cart.get(&10), Some(&5));
        assert_eq!(cart.get(&11), None);
    }

    #[test]
    fn union_preserves_every_add_from_both_siblings() {
        // Two shoppers on a partitioned cart each add different items.
        let mut a = CartBlob::new();
        a.record(op(1, CartAction::Add { item: 1, qty: 1 }));
        let mut b = CartBlob::new();
        b.record(op(2, CartAction::Add { item: 2, qty: 1 }));
        let clock = dynamo::VectorClock::new();
        let merged = reconcile(&[
            Versioned::new(clock.clone(), dot(0, 1), a),
            Versioned::new(clock, dot(1, 1), b),
        ]);
        let cart = merged.materialize();
        assert_eq!(cart.len(), 2, "no add may be lost: {cart:?}");
    }

    #[test]
    fn deleted_item_reappears_when_delete_sorts_first() {
        // Find two uniquifiers where the remove sorts before the add —
        // the §6.4 anomaly, constructed deterministically.
        let add = op(100, CartAction::Add { item: 5, qty: 1 });
        let rm = op(1, CartAction::Remove { item: 5 });
        assert!(rm.id < add.id, "this test needs remove < add in id order");
        let mut log = CartBlob::new();
        log.record(add);
        log.record(rm);
        let cart = log.materialize();
        assert_eq!(cart.get(&5), Some(&1), "the deleted item reappears");
    }

    #[test]
    fn delete_wins_when_it_sorts_after_the_add() {
        let add = op(1, CartAction::Add { item: 5, qty: 1 });
        let rm = op(100, CartAction::Remove { item: 5 });
        assert!(add.id < rm.id);
        let mut log = CartBlob::new();
        log.record(rm);
        log.record(add);
        assert!(log.materialize().is_empty());
    }

    #[test]
    fn reconciliation_is_order_independent() {
        let ops: Vec<CartOp> = (0..20)
            .map(|i| {
                op(
                    i,
                    if i % 3 == 0 {
                        CartAction::Remove { item: i % 5 }
                    } else {
                        CartAction::Add { item: i % 5, qty: 1 }
                    },
                )
            })
            .collect();
        let clock = dynamo::VectorClock::new();
        let mut a = CartBlob::new();
        let mut b = CartBlob::new();
        for (i, o) in ops.iter().enumerate() {
            if i % 2 == 0 {
                a.record(o.clone());
            } else {
                b.record(o.clone());
            }
        }
        let ab = reconcile(&[
            Versioned::new(clock.clone(), dot(0, 1), a.clone()),
            Versioned::new(clock.clone(), dot(1, 1), b.clone()),
        ]);
        let ba = reconcile(&[
            Versioned::new(clock.clone(), dot(1, 1), b),
            Versioned::new(clock, dot(0, 1), a),
        ]);
        assert_eq!(ab.materialize(), ba.materialize());
    }

    #[test]
    fn merged_context_descends_from_all_siblings() {
        let v0 = Versioned::new(dynamo::VectorClock::new(), dot(0, 3), CartBlob::new());
        let v1 = Versioned::new(dynamo::VectorClock::new(), dot(1, 5), CartBlob::new());
        let ctx = merged_context(&[v0.clone(), v1.clone()]);
        assert!(ctx.descends(&v0.effective_clock()));
        assert!(ctx.descends(&v1.effective_clock()));
        assert!(ctx.get(0) >= 3 && ctx.get(1) >= 5);
    }

    #[test]
    fn change_qty_on_absent_item_is_a_silent_noop() {
        // Regression contract: CHANGE-NUMBER never creates membership.
        // If it did, a replayed ChangeQty sorting after a Remove would
        // resurrect the item with no Add involved at all — a second,
        // undocumented resurrection channel on top of §6.4's.
        let mut log = CartBlob::new();
        log.record(op(2, CartAction::ChangeQty { item: 42, qty: 7 }));
        assert!(log.materialize().is_empty(), "absent item stays absent");
        // ... even when an Add for a *different* item is present,
        log.record(op(3, CartAction::Add { item: 1, qty: 1 }));
        assert_eq!(log.materialize().len(), 1);
        // ... and even when the item existed but was removed earlier in
        // replay order.
        log.record(op(4, CartAction::Add { item: 42, qty: 1 }));
        log.record(op(5, CartAction::Remove { item: 42 }));
        log.record(op(6, CartAction::ChangeQty { item: 42, qty: 9 }));
        assert_eq!(log.materialize().get(&42), None, "{log:?}");
    }

    #[test]
    fn cart_blob_round_trips_over_the_wire() {
        let mut log = CartBlob::new();
        log.record(op(1, CartAction::Add { item: 10, qty: 2 }));
        log.record(op(2, CartAction::ChangeQty { item: 10, qty: 5 }));
        log.record(op(3, CartAction::Remove { item: 10 }));
        let bytes = quicksand_core::wire::to_bytes(&log);
        let back: CartBlob = quicksand_core::wire::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.len(), 3);
        assert_eq!(back.materialize(), log.materialize());
    }

    #[test]
    fn change_qty_to_zero_removes() {
        let mut log = CartBlob::new();
        log.record(op(1, CartAction::Add { item: 3, qty: 2 }));
        log.record(op(2, CartAction::ChangeQty { item: 3, qty: 0 }));
        assert!(log.materialize().is_empty());
    }
}
