//! The CRDT cart: the §6.4 shopping cart rebuilt on ACID 2.0 state.
//!
//! The op-log cart ([`crate::op`]) is paper-faithful: sibling
//! reconciliation unions the operation ledgers and the materialized view
//! replays the union in canonical (uniquifier) order — which is exactly
//! where "occasionally deleted items will reappear" comes from. This
//! module is the counterfactual: the same cart expressed as a
//! composition of CRDTs whose merge *is* the reconciliation, with no
//! replay step to invert a delete past the add it observed.
//!
//! - Membership is an add-wins observed-remove set ([`crdt::ORSet`]): a
//!   DELETE-FROM-CART kills exactly the add instances the shopper
//!   *observed*, so a delete can never be undone by an add it had
//!   already seen. Concurrent (unobserved) adds win — the paper's
//!   preferred bias, since "items added to the cart will not be lost".
//! - Quantities are per-item [`crdt::PNCounter`]s: ADD-TO-CART is an
//!   increment, CHANGE-NUMBER is a relative adjustment toward the
//!   target the shopper asked for.
//!
//! Both halves are join-semilattices, so their product is too: the
//! [`crdt::Crdt`] impl merges each half pointwise, and the Dynamo store
//! squashes siblings server-side via
//! [`dynamo::StoreNode`]`::with_sibling_squash`.

use std::collections::BTreeMap;

use crdt::{Crdt, ORSet, PNCounter};
use quicksand_core::{WireCodec, WireError};

use crate::op::{Cart, CartAction};

/// The cart as a product of CRDTs: add-wins membership plus per-item
/// quantity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrdtCart {
    /// Which SKUs are in the cart (add-wins observed-remove set).
    members: ORSet<u64>,
    /// Per-SKU quantity counters. An entry may outlive the SKU's
    /// membership (a removed item keeps its zeroed counter); only
    /// members' counters are materialized.
    qtys: BTreeMap<u64, PNCounter>,
}

impl CrdtCart {
    /// An empty cart.
    pub fn new() -> Self {
        CrdtCart::default()
    }

    /// The quantity the cart currently records for `item` (counters of
    /// non-members read as 0).
    fn qty(&self, item: u64) -> i64 {
        self.qtys.get(&item).map(|c| c.value()).unwrap_or(0)
    }

    /// Apply a shopper's action *to the shopper's merged view*, as
    /// replica `replica`. Mirrors the op-log semantics action by action:
    ///
    /// - `Add` inserts membership and increments the counter.
    /// - `ChangeQty` adjusts the counter toward the target; on an absent
    ///   item it is a silent no-op, exactly like the op-log replay
    ///   (see `CartAction::ChangeQty`); a target of zero removes.
    /// - `Remove` removes the observed membership instances and zeroes
    ///   *this view's* counter contribution, so a later re-add starts
    ///   from the re-added quantity instead of inheriting the old one.
    pub fn apply(&mut self, replica: u64, action: &CartAction) {
        match action {
            CartAction::Add { item, qty } => {
                self.members.insert(replica, *item);
                self.qtys.entry(*item).or_default().add(replica, *qty as i64);
            }
            CartAction::ChangeQty { item, qty } => {
                if !self.members.contains(item) {
                    return; // same silent no-op as op-log replay
                }
                if *qty == 0 {
                    self.apply(replica, &CartAction::Remove { item: *item });
                } else {
                    let delta = *qty as i64 - self.qty(*item);
                    if delta != 0 {
                        self.qtys.entry(*item).or_default().add(replica, delta);
                    }
                }
            }
            CartAction::Remove { item } => {
                self.members.remove(item);
                let observed = self.qty(*item);
                if observed != 0 {
                    self.qtys.entry(*item).or_default().add(replica, -observed);
                }
            }
        }
    }

    /// The materialized cart: member SKUs with their counter values.
    /// A member whose counter reads non-positive (a concurrency artifact
    /// of relative adjustments) is clamped to quantity 1: membership is
    /// authoritative, the counter is best-effort.
    pub fn materialize(&self) -> Cart {
        self.members
            .iter()
            .map(|item| (*item, self.qty(*item).clamp(1, u32::MAX as i64) as u32))
            .collect()
    }

    /// Number of SKUs in the cart.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no SKU is in the cart.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Crdt for CrdtCart {
    fn merge(&mut self, other: &Self) {
        self.members.merge(&other.members);
        for (item, counter) in &other.qtys {
            self.qtys.entry(*item).or_default().merge(counter);
        }
    }

    fn wire_size(&self) -> usize {
        self.members.wire_size() + self.qtys.values().map(|c| 8 + c.wire_size()).sum::<usize>()
    }
}

impl WireCodec for CrdtCart {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.members.encode(buf);
        self.qtys.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CrdtCart { members: ORSet::decode(buf)?, qtys: BTreeMap::decode(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_change_remove_materialize_like_the_oplog_cart() {
        let mut cart = CrdtCart::new();
        cart.apply(1, &CartAction::Add { item: 10, qty: 2 });
        cart.apply(1, &CartAction::Add { item: 11, qty: 1 });
        cart.apply(1, &CartAction::ChangeQty { item: 10, qty: 5 });
        cart.apply(1, &CartAction::Remove { item: 11 });
        let view = cart.materialize();
        assert_eq!(view.get(&10), Some(&5));
        assert_eq!(view.get(&11), None);
    }

    #[test]
    fn change_qty_on_absent_item_is_a_silent_noop_here_too() {
        // The regression contract of `CartAction::ChangeQty` holds in
        // both cart representations: an absent item stays absent and no
        // counter state is created.
        let mut cart = CrdtCart::new();
        cart.apply(1, &CartAction::ChangeQty { item: 99, qty: 7 });
        assert!(cart.is_empty());
        assert_eq!(cart.wire_size(), 0, "no counter residue: {cart:?}");
        cart.apply(1, &CartAction::ChangeQty { item: 99, qty: 0 });
        assert!(cart.is_empty());
    }

    #[test]
    fn observed_remove_beats_the_adds_it_saw() {
        // Replica 1 adds; replica 2 *observes* the add (via merge) and
        // removes. No replay order exists that can resurrect the item.
        let mut a = CrdtCart::new();
        a.apply(1, &CartAction::Add { item: 5, qty: 1 });
        let mut b = a.clone();
        b.apply(2, &CartAction::Remove { item: 5 });
        a.merge(&b);
        assert!(a.materialize().is_empty(), "{a:?}");
    }

    #[test]
    fn unobserved_concurrent_add_wins() {
        // The §6.4 bias the paper wants: a concurrent add the remover
        // never saw is preserved.
        let mut base = CrdtCart::new();
        base.apply(1, &CartAction::Add { item: 5, qty: 1 });
        let mut removing = base.clone();
        removing.apply(2, &CartAction::Remove { item: 5 });
        let mut adding = base.clone();
        adding.apply(3, &CartAction::Add { item: 5, qty: 2 });
        removing.merge(&adding);
        let view = removing.materialize();
        assert_eq!(view.get(&5), Some(&2), "concurrent add survives with its own qty");
    }

    #[test]
    fn re_add_after_remove_starts_fresh() {
        let mut cart = CrdtCart::new();
        cart.apply(1, &CartAction::Add { item: 7, qty: 4 });
        cart.apply(1, &CartAction::Remove { item: 7 });
        cart.apply(1, &CartAction::Add { item: 7, qty: 1 });
        assert_eq!(cart.materialize().get(&7), Some(&1));
    }

    #[test]
    fn wire_round_trip_preserves_the_materialized_view_and_merge_behaviour() {
        let mut cart = CrdtCart::new();
        cart.apply(1, &CartAction::Add { item: 3, qty: 2 });
        cart.apply(2, &CartAction::Add { item: 4, qty: 1 });
        cart.apply(1, &CartAction::Remove { item: 3 });
        cart.apply(2, &CartAction::ChangeQty { item: 4, qty: 9 });
        let bytes = quicksand_core::wire::to_bytes(&cart);
        let back: CrdtCart = quicksand_core::wire::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, cart);
        // A decoded cart must keep merging correctly (observed-remove
        // bookkeeping survived the trip).
        let mut other = CrdtCart::new();
        other.apply(3, &CartAction::Add { item: 3, qty: 7 });
        let mut merged_orig = cart.clone();
        merged_orig.merge(&other);
        let mut merged_back = back;
        merged_back.merge(&other);
        assert_eq!(merged_back, merged_orig);
    }

    #[test]
    fn merge_satisfies_the_acid_2_0_laws() {
        let mut samples = Vec::new();
        for r in 1..=3u64 {
            let mut c = CrdtCart::new();
            c.apply(r, &CartAction::Add { item: r, qty: r as u32 });
            samples.push(c.clone());
            c.apply(r, &CartAction::Remove { item: r });
            c.apply(r, &CartAction::Add { item: r + 10, qty: 2 });
            samples.push(c);
        }
        crdt::check_merge_laws(&samples).unwrap();
    }
}
