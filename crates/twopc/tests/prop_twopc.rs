//! Property tests: whatever the coordinator's crash/restart timing, 2PC
//! with recovery leaves nothing blocked, and the books always balance.

use proptest::prelude::*;
use sim::{SimDuration, SimTime};
use twopc::{run, TpcConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn recovery_always_unblocks_everyone(
        seed in 0u64..500,
        crash_ms in 10u64..400,
        outage_ms in 10u64..3000,
        keys_per_txn in 1usize..5,
    ) {
        let cfg = TpcConfig {
            txns: 80,
            keys_per_txn,
            mean_interarrival: SimDuration::from_millis(3),
            crash_coordinator_at: Some(SimTime::from_millis(crash_ms)),
            restart_coordinator_at: Some(SimTime::from_millis(crash_ms + outage_ms)),
            horizon: SimTime::from_secs(60),
            ..TpcConfig::default()
        };
        let r = run(&cfg, seed);
        prop_assert_eq!(r.unresolved, 0, "{:?}", r);
        // Locks held across the outage are bounded by outage + inquiry lag.
        prop_assert!(
            r.in_doubt_max_ms <= (outage_ms + 200) as f64,
            "lock held too long: {:?}", r
        );
    }

    #[test]
    fn failure_free_runs_fully_resolve(seed in 0u64..500, keys in 1usize..6) {
        let cfg = TpcConfig {
            txns: 60,
            keys_per_txn: keys,
            horizon: SimTime::from_secs(60),
            ..TpcConfig::default()
        };
        let r = run(&cfg, seed);
        prop_assert_eq!(r.unresolved, 0);
        prop_assert!(r.committed + r.aborted_conflict >= 60 - r.aborted_other,
            "{:?}", r);
    }
}
