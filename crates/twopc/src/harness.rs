//! Builds a 2PC deployment, injects the coordinator failure, and
//! extracts the report.
//!
//! Layout: coordinator is node 0; participants are nodes
//! `1..=n_participants`.

use sim::{LinkConfig, Network, NodeId, Simulation};

use crate::msg::TpcMsg;
use crate::nodes::{Coordinator, Participant};
use crate::types::{TpcConfig, TpcReport};

/// Node ids of a built deployment.
#[derive(Debug, Clone)]
pub struct Layout {
    /// The coordinator.
    pub coordinator: NodeId,
    /// The resource managers.
    pub participants: Vec<NodeId>,
}

/// Build the deployment into a fresh simulation.
pub fn build(cfg: &TpcConfig, seed: u64) -> (Simulation<TpcMsg>, Layout) {
    let lay = Layout {
        coordinator: NodeId(0),
        participants: (1..=cfg.n_participants).map(NodeId).collect(),
    };
    let net = Network::new(LinkConfig::reliable(cfg.link_latency));
    let mut sim = Simulation::with_network(seed, net);
    let id = sim.add_node(Coordinator::new(lay.participants.clone(), cfg));
    debug_assert_eq!(id, lay.coordinator);
    for p in &lay.participants {
        let id = sim.add_node(Participant::new(lay.coordinator, cfg));
        debug_assert_eq!(id, *p);
    }
    if let Some(at) = cfg.crash_coordinator_at {
        sim.schedule_crash(at, lay.coordinator);
        if let Some(restart) = cfg.restart_coordinator_at {
            sim.schedule_restart(restart, lay.coordinator);
        }
    }
    (sim, lay)
}

/// Run a 2PC scenario and report.
pub fn run(cfg: &TpcConfig, seed: u64) -> TpcReport {
    let (mut sim, lay) = build(cfg, seed);
    sim.run_until(cfg.horizon);

    let mut report = TpcReport { sim_seconds: sim.now().as_secs_f64(), ..Default::default() };
    let (committed, aborted, undecided) = {
        let coord: &Coordinator = sim.actor(lay.coordinator);
        (coord.committed, coord.aborted, coord.undecided() as u64)
    };
    report.committed = committed;
    report.unresolved = undecided;
    let mut in_doubt_left = 0;
    for p in &lay.participants {
        let part: &Participant = sim.actor(*p);
        in_doubt_left += part.in_doubt_count();
    }
    report.unresolved += in_doubt_left as u64;

    let m = sim.metrics_mut();
    report.aborted_conflict = m.counter("twopc.conflicts");
    report.aborted_other = m.counter("twopc.aborted_by_recovery");
    report.commit_mean_ms = m.histogram("twopc.commit_us").mean() / 1000.0;
    report.in_doubt_p99_ms = m.histogram("twopc.in_doubt_us").percentile(99.0) / 1000.0;
    report.in_doubt_max_ms = m.histogram("twopc.in_doubt_us").max() / 1000.0;
    let attempted = cfg.txns.min(committed + aborted + report.unresolved);
    report.availability =
        if attempted == 0 { 1.0 } else { report.committed as f64 / attempted as f64 };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{SimDuration, SimTime};

    fn base() -> TpcConfig {
        TpcConfig {
            txns: 100,
            mean_interarrival: SimDuration::from_millis(5),
            horizon: SimTime::from_secs(60),
            ..TpcConfig::default()
        }
    }

    #[test]
    fn failure_free_2pc_commits_nearly_everything() {
        let r = run(&base(), 3);
        assert_eq!(r.unresolved, 0, "{r:?}");
        assert!(r.committed >= 90, "only genuine lock conflicts may abort: {r:?}");
        // Commit latency = 2 round trips (prepare+vote, decide) ≈ 4ms...
        // the decision is logged before announcing, so the client-visible
        // commit is after the votes: 2 one-way hops = 2ms minimum.
        assert!(r.commit_mean_ms >= 2.0, "{r:?}");
        // In-doubt windows exist but are short (one hop to the decision).
        assert!(r.in_doubt_max_ms < 50.0, "{r:?}");
    }

    #[test]
    fn coordinator_crash_blocks_participants_until_recovery() {
        let mut cfg = base();
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.crash_coordinator_at = Some(SimTime::from_millis(50));
        cfg.restart_coordinator_at = Some(SimTime::from_secs(2));
        // Seed chosen so a transaction is in its prepared window at the
        // crash instant (seed-sensitive: the crash must land mid-2PC).
        let r = run(&cfg, 3);
        // In-doubt locks were held for roughly the outage length.
        assert!(r.in_doubt_max_ms > 1_000.0, "locks must hang for ~the outage: {r:?}");
        // But recovery resolves everything: nothing is blocked forever.
        assert_eq!(r.unresolved, 0, "{r:?}");
        assert!(r.aborted_other > 0, "recovery presumes abort for undecided: {r:?}");
    }

    #[test]
    fn without_restart_participants_block_forever() {
        let mut cfg = base();
        cfg.mean_interarrival = SimDuration::from_millis(2);
        cfg.crash_coordinator_at = Some(SimTime::from_millis(50));
        cfg.restart_coordinator_at = None;
        // Same seed-sensitivity note as above: the crash must strand an
        // in-doubt participant.
        let r = run(&cfg, 3);
        assert!(r.unresolved > 0, "2PC's fundamental blocking property: {r:?}");
    }

    #[test]
    fn contention_causes_conflict_aborts() {
        let mut cfg = base();
        cfg.key_space = 6; // hot keys
        cfg.mean_interarrival = SimDuration::from_millis(1);
        let r = run(&cfg, 9);
        assert!(r.aborted_conflict > 0, "{r:?}");
        assert_eq!(r.unresolved, 0);
    }

    #[test]
    fn deterministic() {
        let a = run(&base(), 42);
        let b = run(&base(), 42);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted_conflict, b.aborted_conflict);
    }
}
