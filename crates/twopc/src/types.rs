//! Types for the Two-Phase Commit model.

use sim::{SimDuration, SimTime};

/// A distributed transaction id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dtx{}", self.0)
    }
}

/// The coordinator's durable decision for a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// All participants voted yes; the transaction commits.
    Commit,
    /// A participant voted no, the coordinator timed out, or recovery
    /// found the transaction undecided.
    Abort,
}

/// Configuration for one 2PC run.
#[derive(Debug, Clone)]
pub struct TpcConfig {
    /// Resource managers (each owns a slice of the key space).
    pub n_participants: usize,
    /// Distributed transactions to run.
    pub txns: u64,
    /// Keys touched per transaction (spread across participants).
    pub keys_per_txn: usize,
    /// Size of the contended key space.
    pub key_space: u64,
    /// Mean arrival gap between transactions (Poisson).
    pub mean_interarrival: SimDuration,
    /// One-way message latency between nodes.
    pub link_latency: SimDuration,
    /// How long a participant stays quietly in-doubt before inquiring
    /// about an unresolved transaction.
    pub inquiry_timeout: SimDuration,
    /// Crash the coordinator at this time, if set.
    pub crash_coordinator_at: Option<SimTime>,
    /// Restart it at this time (it recovers from its durable decision
    /// log; undecided transactions abort).
    pub restart_coordinator_at: Option<SimTime>,
    /// Simulation horizon.
    pub horizon: SimTime,
}

impl Default for TpcConfig {
    fn default() -> Self {
        TpcConfig {
            n_participants: 3,
            txns: 200,
            keys_per_txn: 3,
            key_space: 60,
            mean_interarrival: SimDuration::from_millis(5),
            link_latency: SimDuration::from_millis(1),
            inquiry_timeout: SimDuration::from_millis(50),
            crash_coordinator_at: None,
            restart_coordinator_at: None,
            horizon: SimTime::from_secs(120),
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone, Default)]
pub struct TpcReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Aborted because a key was already locked (lock conflict).
    pub aborted_conflict: u64,
    /// Aborted by recovery (undecided at the crash) or a no-vote.
    pub aborted_other: u64,
    /// Transactions still unresolved at the horizon (must be 0 when the
    /// coordinator eventually restarts).
    pub unresolved: u64,
    /// Mean commit latency (ms): begin → decision durable at coordinator.
    pub commit_mean_ms: f64,
    /// p99 of the time participants spent holding locks for *in-doubt*
    /// transactions (voted yes, no decision yet) — the §2.3 fragility,
    /// in milliseconds.
    pub in_doubt_p99_ms: f64,
    /// Longest single in-doubt hold (ms).
    pub in_doubt_max_ms: f64,
    /// Lock conflicts encountered while the coordinator was down.
    pub conflicts_during_outage: u64,
    /// Fraction of attempted transactions that committed.
    pub availability: f64,
    /// Simulated seconds.
    pub sim_seconds: f64,
}
