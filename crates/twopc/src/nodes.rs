//! The coordinator and participant actors.
//!
//! The protocol is textbook 2PC [3, 12 in the paper's references]: the
//! coordinator collects votes, logs its decision durably, and announces
//! it. The interesting part is the *failure window* the paper points at
//! (§2.3): a participant that voted yes holds its locks until a decision
//! arrives. If the coordinator dies first, those locks stay held — every
//! conflicting transaction aborts — until the coordinator recovers and
//! answers inquiries. "Distributed transactions... result in fragile
//! systems and reduced availability. For this reason, they are rarely
//! used in production systems."

use std::collections::{HashMap, HashSet};

use rand::Rng;
use sim::{Actor, Context, NodeId, SimDuration, SimTime};

use crate::msg::TpcMsg;
use crate::types::{Decision, TpcConfig, TxnId};

const TAG_SHIFT: u64 = 48;
const TAG_NEXT_TXN: u64 = 1;
const TAG_INQUIRY: u64 = 2;
const TAG_RETRY_DECISION: u64 = 3;

fn tag(kind: u64, payload: u64) -> u64 {
    (kind << TAG_SHIFT) | payload
}

#[derive(Debug)]
struct PendingTxn {
    started: SimTime,
    waiting_votes: usize,
    participants: Vec<NodeId>,
    doomed: bool,
}

/// The transaction coordinator: generates the workload, runs 2PC, and
/// keeps a durable decision log (which is what recovery replays).
#[derive(Debug)]
pub struct Coordinator {
    participants: Vec<NodeId>,
    txns_total: u64,
    keys_per_txn: usize,
    key_space: u64,
    mean_interarrival: SimDuration,

    // --- durable (survives crashes) ---
    /// Every decision ever taken.
    decision_log: HashMap<TxnId, Decision>,
    /// Transactions that reached prepare (for recovery: prepared but
    /// undecided ⇒ abort).
    started_log: HashSet<TxnId>,

    // --- volatile ---
    seq: u64,
    pending: HashMap<TxnId, PendingTxn>,
    /// Statistics: committed txns and their latencies live in metrics.
    pub committed: u64,
    /// Aborts decided by this coordinator (no-votes or recovery).
    pub aborted: u64,
}

impl Coordinator {
    /// Build the coordinator for `cfg`'s workload.
    pub fn new(participants: Vec<NodeId>, cfg: &TpcConfig) -> Self {
        Coordinator {
            participants,
            txns_total: cfg.txns,
            keys_per_txn: cfg.keys_per_txn,
            key_space: cfg.key_space,
            mean_interarrival: cfg.mean_interarrival,
            decision_log: HashMap::new(),
            started_log: HashSet::new(),
            seq: 0,
            pending: HashMap::new(),
            committed: 0,
            aborted: 0,
        }
    }

    /// The durable decision for a transaction, if taken.
    pub fn decision(&self, txn: TxnId) -> Option<Decision> {
        self.decision_log.get(&txn).copied()
    }

    /// Transactions started but never decided (should be empty after a
    /// full recovery).
    pub fn undecided(&self) -> usize {
        self.started_log.len() - self.decision_log.len()
    }

    fn schedule_next(&mut self, ctx: &mut Context<'_, TpcMsg>) {
        if self.seq >= self.txns_total {
            return;
        }
        let mean = self.mean_interarrival.as_micros() as f64;
        let d = SimDuration::from_micros(ctx.rng().exp_micros(mean));
        ctx.set_timer(d, tag(TAG_NEXT_TXN, self.seq));
    }

    fn begin_txn(&mut self, ctx: &mut Context<'_, TpcMsg>) {
        let txn = TxnId(self.seq);
        self.seq += 1;
        self.started_log.insert(txn);
        // Pick keys; key → participant by modulo.
        let mut keys = Vec::with_capacity(self.keys_per_txn);
        while keys.len() < self.keys_per_txn {
            let k = ctx.rng().gen_range(0..self.key_space);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        let me = ctx.me();
        let mut per_participant: HashMap<usize, Vec<u64>> = HashMap::new();
        for k in keys {
            per_participant
                .entry((k % self.participants.len() as u64) as usize)
                .or_default()
                .push(k);
        }
        let involved: Vec<NodeId> = per_participant.keys().map(|i| self.participants[*i]).collect();
        self.pending.insert(
            txn,
            PendingTxn {
                started: ctx.now(),
                waiting_votes: per_participant.len(),
                participants: involved.clone(),
                doomed: false,
            },
        );
        for (i, keys) in per_participant {
            ctx.send(self.participants[i], TpcMsg::Prepare { txn, keys, resp_to: me });
        }
        self.schedule_next(ctx);
    }

    fn decide(&mut self, ctx: &mut Context<'_, TpcMsg>, txn: TxnId, decision: Decision) {
        // The decision is logged durably *before* it is announced — the
        // classic write-ahead decision record.
        self.decision_log.insert(txn, decision);
        if let Some(p) = self.pending.remove(&txn) {
            match decision {
                Decision::Commit => {
                    self.committed += 1;
                    let lat = ctx.now().saturating_since(p.started);
                    ctx.metrics().record("twopc.commit_us", lat.as_micros() as f64);
                    ctx.metrics().inc("twopc.committed");
                }
                Decision::Abort => {
                    self.aborted += 1;
                    ctx.metrics().inc("twopc.aborted");
                }
            }
            for node in p.participants {
                ctx.send(node, TpcMsg::Decide { txn, decision });
            }
        }
    }
}

impl Actor<TpcMsg> for Coordinator {
    fn on_start(&mut self, ctx: &mut Context<'_, TpcMsg>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TpcMsg>, t: u64) {
        if t >> TAG_SHIFT == TAG_NEXT_TXN {
            let seq = t & ((1 << TAG_SHIFT) - 1);
            if seq == self.seq {
                self.begin_txn(ctx);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, TpcMsg>, from: NodeId, msg: TpcMsg) {
        match msg {
            TpcMsg::Vote { txn, yes } => {
                let ready = {
                    let Some(p) = self.pending.get_mut(&txn) else { return };
                    if !yes {
                        p.doomed = true;
                    }
                    p.waiting_votes -= 1;
                    p.waiting_votes == 0
                };
                if ready {
                    let doomed = self.pending[&txn].doomed;
                    self.decide(ctx, txn, if doomed { Decision::Abort } else { Decision::Commit });
                }
            }
            TpcMsg::Inquiry { txn, resp_to } => {
                // Cooperative termination: answer from the durable log;
                // started-but-undecided means the votes were lost with
                // our memory — presume abort, and log it.
                let decision = match self.decision_log.get(&txn) {
                    Some(d) => *d,
                    None => {
                        self.decision_log.insert(txn, Decision::Abort);
                        self.aborted += 1;
                        ctx.metrics().inc("twopc.aborted_by_recovery");
                        Decision::Abort
                    }
                };
                ctx.send(resp_to, TpcMsg::Decide { txn, decision });
                let _ = from;
            }
            _ => {}
        }
    }

    fn on_crash(&mut self, _now: SimTime) {
        // The decision log and started log are durable; in-flight vote
        // tallies die with the process — that is the whole problem.
        self.pending.clear();
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, TpcMsg>) {
        // Presumed-abort recovery for anything undecided; participants
        // will learn it through their inquiries.
        let undecided: Vec<TxnId> = self
            .started_log
            .iter()
            .filter(|t| !self.decision_log.contains_key(t))
            .copied()
            .collect();
        for txn in undecided {
            self.decision_log.insert(txn, Decision::Abort);
            self.aborted += 1;
            ctx.metrics().inc("twopc.aborted_by_recovery");
        }
        // The workload does not resume after a crash (the client tier
        // has failed over elsewhere); recovery exists to unblock the
        // participants.
    }
}

/// A resource manager: locks keys at prepare, holds them while
/// in-doubt, applies/discards at decision.
#[derive(Debug)]
pub struct Participant {
    coordinator: NodeId,
    inquiry_timeout: SimDuration,
    /// key → owning txn.
    locks: HashMap<u64, TxnId>,
    /// txn → (keys, voted_at). Present = in-doubt (voted yes, no
    /// decision yet).
    in_doubt: HashMap<TxnId, (Vec<u64>, SimTime)>,
    /// Conflicts observed (vote-no causes), for the availability story.
    pub conflicts: u64,
}

impl Participant {
    /// Build a participant reporting to `coordinator`.
    pub fn new(coordinator: NodeId, cfg: &TpcConfig) -> Self {
        Participant {
            coordinator,
            inquiry_timeout: cfg.inquiry_timeout,
            locks: HashMap::new(),
            in_doubt: HashMap::new(),
            conflicts: 0,
        }
    }

    /// Keys currently locked (for tests).
    pub fn locked_keys(&self) -> usize {
        self.locks.len()
    }

    /// Transactions currently in doubt (for tests).
    pub fn in_doubt_count(&self) -> usize {
        self.in_doubt.len()
    }

    fn release(&mut self, ctx: &mut Context<'_, TpcMsg>, txn: TxnId) {
        if let Some((keys, voted_at)) = self.in_doubt.remove(&txn) {
            let held = ctx.now().saturating_since(voted_at);
            ctx.metrics().record("twopc.in_doubt_us", held.as_micros() as f64);
            for k in keys {
                self.locks.remove(&k);
            }
        }
    }
}

impl Actor<TpcMsg> for Participant {
    fn on_message(&mut self, ctx: &mut Context<'_, TpcMsg>, _from: NodeId, msg: TpcMsg) {
        match msg {
            TpcMsg::Prepare { txn, keys, resp_to } => {
                if keys.iter().any(|k| self.locks.contains_key(k)) {
                    self.conflicts += 1;
                    ctx.metrics().inc("twopc.conflicts");
                    ctx.send(resp_to, TpcMsg::Vote { txn, yes: false });
                    return;
                }
                for k in &keys {
                    self.locks.insert(*k, txn);
                }
                self.in_doubt.insert(txn, (keys, ctx.now()));
                ctx.send(resp_to, TpcMsg::Vote { txn, yes: true });
                // Arm the in-doubt inquiry clock.
                ctx.set_timer(self.inquiry_timeout, tag(TAG_INQUIRY, txn.0));
            }
            TpcMsg::Decide { txn, decision } => {
                let _ = decision; // the simulated data effect is the lock itself
                self.release(ctx, txn);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, TpcMsg>, t: u64) {
        let kind = t >> TAG_SHIFT;
        let txn = TxnId(t & ((1 << TAG_SHIFT) - 1));
        if (kind == TAG_INQUIRY || kind == TAG_RETRY_DECISION) && self.in_doubt.contains_key(&txn) {
            // Still in doubt: ask, and keep asking — the locks cannot be
            // released unilaterally ("the fundamental blocking property
            // of 2PC").
            let me = ctx.me();
            ctx.metrics().inc("twopc.inquiries");
            ctx.send(self.coordinator, TpcMsg::Inquiry { txn, resp_to: me });
            ctx.set_timer(self.inquiry_timeout, tag(TAG_RETRY_DECISION, txn.0));
        }
    }
}
