//! The 2PC wire protocol (Gray's presumed-nothing variant with
//! cooperative inquiry).

use sim::NodeId;

use crate::types::{Decision, TxnId};

/// Messages between the coordinator and the participants.
#[derive(Debug, Clone)]
pub enum TpcMsg {
    /// Phase 1: prepare — lock the listed keys and vote.
    Prepare {
        /// The transaction.
        txn: TxnId,
        /// Keys this participant must lock.
        keys: Vec<u64>,
        /// Who to answer.
        resp_to: NodeId,
    },
    /// A participant's vote. A `no` releases its own locks immediately.
    Vote {
        /// The transaction.
        txn: TxnId,
        /// `true` = prepared (locks held until the decision arrives).
        yes: bool,
    },
    /// Phase 2: the durable decision.
    Decide {
        /// The transaction.
        txn: TxnId,
        /// Commit or abort.
        decision: Decision,
    },
    /// A participant stuck in-doubt asks what happened (cooperative
    /// termination after the inquiry timeout).
    Inquiry {
        /// The transaction in doubt.
        txn: TxnId,
        /// Who to answer.
        resp_to: NodeId,
    },
}
