//! # twopc — the baseline the paper argues against (§2.3)
//!
//! "Distributed transactions (especially using the Two Phase Commit
//! protocol) result in fragile systems and reduced availability. For
//! this reason, they are rarely used in production systems, particularly
//! when the resource managers span trust and authority boundaries."
//!
//! To measure that claim rather than assert it, this crate implements
//! textbook 2PC on the `sim` substrate: a coordinator with a durable
//! decision log, participants that lock keys at prepare and hold them
//! while **in doubt**, presumed-abort recovery, and cooperative
//! termination by inquiry. The fragility is then observable (E14 in
//! EXPERIMENTS.md): a coordinator crash freezes every in-doubt
//! participant's locks for the length of the outage — conflicting work
//! aborts the whole time — and without recovery the locks hang forever.
//! Contrast with the op-centric path (`quicksand-core::mga`), which
//! holds no locks and trades the stall for apologies.
//!
//! ```
//! use twopc::{run, TpcConfig};
//!
//! let report = run(&TpcConfig { txns: 20, ..TpcConfig::default() }, 7);
//! assert_eq!(report.unresolved, 0);
//! assert!(report.committed > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod msg;
pub mod nodes;
pub mod types;

pub use harness::{build, run, Layout};
pub use msg::TpcMsg;
pub use nodes::{Coordinator, Participant};
pub use types::{Decision, TpcConfig, TpcReport, TxnId};
