//! Property-based tests of the bank: arbitrary clearing workloads must
//! converge, never double-post a check, and keep the statement book
//! sound.

use bank::{run_clearing, Branch, Check, ClearingConfig};
use proptest::prelude::*;
use quicksand_core::uniquifier::Uniquifier;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn clearing_invariants_hold_for_arbitrary_configs(
        seed in 0u64..10_000,
        n_branches in 2usize..5,
        exchange_every in 1u64..40,
        dup in 0.0f64..0.3,
    ) {
        let cfg = ClearingConfig {
            n_branches,
            n_accounts: 15,
            rounds: 60,
            checks_per_round: 8,
            exchange_every,
            dup_presentment_prob: dup,
            ..ClearingConfig::default()
        };
        let r = run_clearing(&cfg, seed);
        prop_assert!(r.converged, "{:?}", r);
        prop_assert!(r.no_double_posting, "{:?}", r);
        prop_assert!(r.statements_ok, "{:?}", r);
        prop_assert_eq!(
            r.presented,
            cfg.rounds * cfg.checks_per_round
        );
    }
}

proptest! {
    /// Pairwise exchange always converges two branches exactly, whatever
    /// ops each saw.
    #[test]
    fn branch_exchange_converges(
        deposits in prop::collection::vec((0u64..10, 1i64..1000), 0..30),
        checks in prop::collection::vec((0u64..10, 0u64..50), 0..30),
    ) {
        let mut a = Branch::new(0);
        let mut b = Branch::new(1);
        for (i, (acct, amt)) in deposits.iter().enumerate() {
            let id = Uniquifier::composite("pdep", i as u64);
            if i % 2 == 0 {
                a.deposit(id, *acct, *amt);
            } else {
                b.deposit(id, *acct, *amt);
            }
        }
        for (i, (acct, num)) in checks.iter().enumerate() {
            // "The payee and amount for a specific check are immutable"
            // (§6.2): the amount is a function of the check's identity,
            // so a duplicate presentment is a retry, not fraud.
            let amount = 1 + ((*acct * 53 + *num * 37) % 499) as i64;
            let check = Check { account: *acct, number: *num, amount };
            if i % 2 == 0 {
                let _ = a.present(check);
            } else {
                let _ = b.present(check);
            }
        }
        a.exchange(&mut b);
        prop_assert_eq!(a.balances(), b.balances());
        prop_assert!(a.log().same_ops(b.log()));
    }

    /// Compensation always converges to identical books across
    /// independent discoverers, because the apology ops derive their
    /// identity from the check.
    #[test]
    fn compensation_is_deterministic_across_discoverers(
        checks in prop::collection::vec(1u64..60, 1..12)
    ) {
        let mut a = Branch::new(0);
        let mut b = Branch::new(1);
        let dep = Uniquifier::composite("seed", 1);
        a.deposit(dep, 7, 1_000);
        b.deposit(dep, 7, 1_000);
        for (i, num) in checks.iter().enumerate() {
            let amount = 100 + ((num * 131) % 800) as i64;
            let check = Check { account: 7, number: *num, amount };
            if i % 2 == 0 {
                let _ = a.present(check);
            } else {
                let _ = b.present(check);
            }
        }
        a.exchange(&mut b);
        // Both discover and compensate independently, then reconcile.
        a.audit_and_compensate(30_00);
        b.audit_and_compensate(30_00);
        a.exchange(&mut b);
        prop_assert_eq!(a.balances(), b.balances());
        // Converged ledger has at most one reversal per cleared check.
        use bank::BankOp;
        let reversals: Vec<_> = a
            .log()
            .iter()
            .filter_map(|op| match op {
                BankOp::ReverseCheck { original, .. } => Some(*original),
                _ => None,
            })
            .collect();
        let mut unique = reversals.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), reversals.len(), "double reversal");
    }
}
