//! A bank branch: one replica of the accounts, clearing checks on local
//! knowledge.
//!
//! "Imagine a replicated bank system which has two (or more) copies of
//! my bank account, both of which are clearing checks. There is a small
//! (but present) possibility that multiple checks presented to different
//! replicas will cause an overdraft that is not detected in time to
//! bounce one of the checks." (§6.2)
//!
//! The branch has the bank's two jobs: "First, it needs to decide if a
//! check should clear based upon the best knowledge of the account's
//! balance. Second, it needs to meticulously remember all the operations
//! performed on the account." Decision = [`Branch::present`] (a guess,
//! or a coordinated check for big-ticket items per the §5.5 risk
//! policy); memory = the branch's [`OpLog`].

use quicksand_core::op::{OpLog, Operation};
use quicksand_core::rules::GuaranteeClass;
use quicksand_core::uniquifier::Uniquifier;

use crate::types::{AccountId, BankOp, BankState, Cents, Check, Standing};

/// Why a presented check did not clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refusal {
    /// Insufficient funds on the deciding knowledge — the check bounces
    /// at presentment (the good outcome for the bank).
    InsufficientFunds {
        /// The balance the decision was made against.
        known_balance: Cents,
    },
    /// The same check was already cleared (here or at a branch we've
    /// heard from) — retry collapsed.
    Duplicate,
}

/// The outcome of presenting a check.
pub type ClearingResult = Result<(), Refusal>;

/// One branch (replica) of the bank.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Branch id (for reports).
    pub id: u32,
    log: OpLog<BankOp>,
    state: BankState,
    /// Checks this branch itself cleared (candidates for reversal at
    /// audit time).
    cleared_here: Vec<Check>,
    /// Guesses / refusals accounting.
    cleared: u64,
    refused: u64,
    coordinated: u64,
}

impl Branch {
    /// A fresh branch with empty books.
    pub fn new(id: u32) -> Self {
        Branch {
            id,
            log: OpLog::new(),
            state: BankState::default(),
            cleared_here: Vec::new(),
            cleared: 0,
            refused: 0,
            coordinated: 0,
        }
    }

    /// The branch's memory of operations.
    pub fn log(&self) -> &OpLog<BankOp> {
        &self.log
    }

    /// The branch's local opinion of an account's real balance.
    pub fn balance(&self, account: AccountId) -> Cents {
        self.state.balance(account)
    }

    /// The branch's local opinion of the spendable balance: real balance
    /// minus active holds (§6.2).
    pub fn available(&self, account: AccountId) -> Cents {
        self.state.available(account)
    }

    /// The branch's local opinion of all balances.
    pub fn balances(&self) -> &BankState {
        &self.state
    }

    /// The full local state (balances and holds).
    pub fn state(&self) -> &BankState {
        &self.state
    }

    /// Checks cleared / refused / coordinated so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.cleared, self.refused, self.coordinated)
    }

    /// Record an operation (new knowledge), updating the cached state.
    /// Returns `true` if it was new.
    pub fn learn(&mut self, op: BankOp) -> bool {
        if self.log.record(op.clone()) {
            op.apply(&mut self.state);
            true
        } else {
            false
        }
    }

    /// Credit a deposit (a cash deposit, or a check deposited by a
    /// customer in good standing: spendable immediately).
    pub fn deposit(&mut self, id: Uniquifier, account: AccountId, amount: Cents) {
        self.learn(BankOp::Deposit { id, account, amount });
    }

    /// Deposit a check according to the customer's standing (§6.2): a
    /// good customer's funds are spendable now; a poor customer's are
    /// credited but held until `now_round + hold_rounds` — "reserving
    /// for a potential bounce."
    pub fn deposit_check(
        &mut self,
        id: Uniquifier,
        account: AccountId,
        amount: Cents,
        standing: Standing,
        now_round: u64,
        hold_rounds: u64,
    ) {
        self.learn(BankOp::Deposit { id, account, amount });
        if standing == Standing::Poor {
            self.learn(BankOp::hold_for(id, account, amount, now_round + hold_rounds));
        }
    }

    /// The deposited check came back unpaid: claw back the credit and
    /// charge the bounce fee. If the funds were still under hold, the
    /// hold absorbed the risk — the claw-back cannot overdraw what was
    /// never spendable.
    pub fn return_deposit(
        &mut self,
        deposit_id: Uniquifier,
        account: AccountId,
        amount: Cents,
        fee: Cents,
    ) {
        self.learn(BankOp::returned_deposit(deposit_id, account, amount));
        self.learn(BankOp::BounceFee {
            id: Uniquifier::derived_from_fields(&[b"depfee", &deposit_id.as_raw().to_le_bytes()]),
            account,
            amount: fee,
        });
        // The hold (if any) has done its job; release it with the
        // deterministic release op so every branch agrees.
        let release = self
            .log
            .iter()
            .find(|op| matches!(op, BankOp::PlaceHold { id, .. }
                if *id == Uniquifier::derived_from_fields(&[b"hold", &deposit_id.as_raw().to_le_bytes()])))
            .and_then(BankOp::release_for);
        if let Some(r) = release {
            self.learn(r);
        }
    }

    /// Release every hold that has reached its scheduled round. The
    /// release ops are derived from the holds, so every branch that
    /// ticks generates the identical operations and the union collapses
    /// them. Returns how many releases this call generated.
    pub fn tick(&mut self, round: u64) -> usize {
        let due: Vec<BankOp> = self
            .log
            .iter()
            .filter(|op| matches!(op, BankOp::PlaceHold { release_round, .. } if *release_round <= round))
            .filter_map(BankOp::release_for)
            .filter(|rel| !self.log.contains(rel.id()))
            .collect();
        let n = due.len();
        for rel in due {
            self.learn(rel);
        }
        n
    }

    /// Present a check for clearing against this branch's knowledge
    /// (the **guess** path). "Locally clear a check if the face value is
    /// less than $10,000" (§5.5) — the caller chooses the path via its
    /// risk policy; see [`present_coordinated`] for the other one.
    pub fn present(&mut self, check: Check) -> ClearingResult {
        let id = check.uniquifier();
        if self.log.contains(id) {
            return Err(Refusal::Duplicate);
        }
        // Decisions are made against the *spendable* balance: held funds
        // are reserved against a potential bounce.
        let known = self.available(check.account);
        if known < check.amount {
            self.refused += 1;
            return Err(Refusal::InsufficientFunds { known_balance: known });
        }
        self.learn(BankOp::ClearCheck { id, account: check.account, amount: check.amount });
        self.cleared_here.push(check);
        self.cleared += 1;
        Ok(())
    }

    /// Exchange knowledge with another branch, both ways. Returns (ops
    /// learned here, ops learned there).
    pub fn exchange(&mut self, other: &mut Branch) -> (usize, usize) {
        let to_me = other.log.diff(&self.log);
        let to_them = self.log.diff(&other.log);
        let (a, b) = (to_me.len(), to_them.len());
        for op in to_me {
            self.learn(op);
        }
        for op in to_them {
            other.learn(op);
        }
        (a, b)
    }

    /// Accounts currently overdrawn (real balance below zero) on this
    /// branch's knowledge.
    pub fn overdrafts(&self) -> Vec<(AccountId, Cents)> {
        self.state.balances.iter().filter(|(_, b)| **b < 0).map(|(a, b)| (*a, *b)).collect()
    }

    /// The apology path: for every account this branch now knows to be
    /// overdrawn, bounce recently-cleared checks (reversal + fee) until
    /// the account is whole. Reversal/fee uniquifiers are derived from
    /// the check, so concurrent discoverers at other branches mint the
    /// identical compensations and the union stays consistent. Returns
    /// the checks bounced now.
    pub fn audit_and_compensate(&mut self, fee: Cents) -> Vec<Check> {
        let mut bounced = Vec::new();
        let overdrawn: Vec<AccountId> = self.overdrafts().into_iter().map(|(a, _)| a).collect();
        for account in overdrawn {
            // Candidate clearings on this account, keyed by the clearing
            // op's uniquifier so every branch sorts them identically.
            let mut cleared_ops: Vec<(Uniquifier, Cents)> = self
                .log
                .iter()
                .filter_map(|op| match op {
                    BankOp::ClearCheck { id, account: a, amount } if *a == account => {
                        Some((*id, *amount))
                    }
                    _ => None,
                })
                .collect();
            cleared_ops.sort_by_key(|c| std::cmp::Reverse(c.0)); // newest-id first (deterministic)
            for (clearing_id, amount) in cleared_ops {
                if self.balance(account) >= 0 {
                    break;
                }
                let reverse_id = Uniquifier::derived_from_fields(&[
                    b"reverse",
                    &clearing_id.as_raw().to_le_bytes(),
                ]);
                if self.log.contains(reverse_id) {
                    continue; // already bounced (possibly by another branch)
                }
                let fee_id =
                    Uniquifier::derived_from_fields(&[b"fee", &clearing_id.as_raw().to_le_bytes()]);
                self.learn(BankOp::ReverseCheck {
                    id: reverse_id,
                    original: clearing_id,
                    account,
                    amount,
                });
                self.learn(BankOp::BounceFee { id: fee_id, account, amount: fee });
                bounced.push(Check { account, number: 0, amount });
            }
        }
        bounced
    }
}

/// The **coordinate** path of the §5.5 risk policy: merge every branch's
/// knowledge, decide on the union, and install the decision everywhere
/// before answering — "if it exceeds $10,000, double check with all the
/// replicas to make sure it clears".
pub fn present_coordinated(branches: &mut [Branch], check: Check) -> ClearingResult {
    let all: Vec<usize> = (0..branches.len()).collect();
    present_coordinated_among(branches, &all, check)
}

/// [`present_coordinated`] restricted to the branches in `among` — the
/// reachable quorum when a fault plan has taken branches offline. The
/// decision is made on (and installed into) only their union; the first
/// listed branch plays the head-office role for accounting.
pub fn present_coordinated_among(
    branches: &mut [Branch],
    among: &[usize],
    check: Check,
) -> ClearingResult {
    assert!(!among.is_empty());
    // Knowledge exchange across the reachable branches (the latency the
    // caller pays for).
    let mut union: OpLog<BankOp> = OpLog::new();
    for &i in among {
        union.merge(branches[i].log());
    }
    let id = check.uniquifier();
    let install = |branches: &mut [Branch], union: &OpLog<BankOp>| {
        for &i in among {
            for op in union.diff(branches[i].log()) {
                branches[i].learn(op);
            }
        }
    };
    if union.contains(id) {
        install(branches, &union);
        return Err(Refusal::Duplicate);
    }
    let state = union.materialize();
    let known = state.available(check.account);
    if known < check.amount {
        install(branches, &union);
        // Account the refusal once, for the system.
        branches[among[0]].refused += 1;
        return Err(Refusal::InsufficientFunds { known_balance: known });
    }
    union.record(BankOp::ClearCheck { id, account: check.account, amount: check.amount });
    install(branches, &union);
    branches[among[0]].cleared_here.push(check);
    for &i in among {
        branches[i].coordinated += 1;
    }
    branches[among[0]].cleared += 1;
    Ok(())
}

/// Which clearing path a check takes under the classic policy: the
/// paper's $10,000 threshold expressed with the core crate's
/// [`GuaranteeClass`].
pub fn classify_check(check: &Check, threshold: Cents) -> GuaranteeClass {
    if check.amount >= threshold {
        GuaranteeClass::Coordinate
    } else {
        GuaranteeClass::Guess
    }
}

#[cfg(test)]
#[allow(clippy::inconsistent_digit_grouping)] // amounts written as dollars_cents
mod tests {
    use super::*;

    fn dep(n: u64, account: AccountId, amount: Cents) -> (Uniquifier, AccountId, Cents) {
        (Uniquifier::from_parts(1, n), account, amount)
    }

    #[test]
    fn local_clearing_respects_local_balance() {
        let mut b = Branch::new(0);
        let (id, acct, amt) = dep(1, 42, 10_000);
        b.deposit(id, acct, amt);
        assert!(b.present(Check { account: 42, number: 1, amount: 6_000 }).is_ok());
        match b.present(Check { account: 42, number: 2, amount: 6_000 }) {
            Err(Refusal::InsufficientFunds { known_balance }) => assert_eq!(known_balance, 4_000),
            other => panic!("{other:?}"),
        }
        assert_eq!(b.balance(42), 4_000);
    }

    #[test]
    fn duplicate_presentment_is_collapsed() {
        let mut a = Branch::new(0);
        let mut c = Branch::new(1);
        let (id, acct, amt) = dep(1, 7, 5_000);
        a.deposit(id, acct, amt);
        c.deposit(id, acct, amt); // same deposit known to both
        let check = Check { account: 7, number: 100, amount: 1_000 };
        assert!(a.present(check).is_ok());
        a.exchange(&mut c);
        assert_eq!(c.present(check), Err(Refusal::Duplicate));
        assert_eq!(c.balance(7), 4_000);
    }

    #[test]
    fn disconnected_branches_jointly_overdraw_then_compensate() {
        let mut a = Branch::new(0);
        let mut b = Branch::new(1);
        let (id, acct, amt) = dep(1, 9, 10_000);
        a.deposit(id, acct, amt);
        b.learn(BankOp::Deposit { id, account: acct, amount: amt });
        // Disconnected clearing: each branch clears an $80 check — both
        // locally fine, jointly a $6,000 overdraft.
        assert!(a.present(Check { account: 9, number: 1, amount: 8_000 }).is_ok());
        assert!(b.present(Check { account: 9, number: 2, amount: 8_000 }).is_ok());
        a.exchange(&mut b);
        assert_eq!(a.balance(9), -6_000);
        // Audit: bounce checks until whole, charging the fee. The first
        // bounce (+8,000 − 3,000 fee) leaves −1,000, so a second check
        // bounces too: −1,000 + 8,000 − 3,000 = 4,000.
        let bounced = a.audit_and_compensate(30_00);
        assert_eq!(bounced.len(), 2);
        assert_eq!(a.balance(9), 4_000);
        // b discovers the same overdraft and mints the *identical*
        // compensation ops (derived uniquifiers), so the union holds
        // exactly one reversal per check and balances agree.
        let bounced_b = b.audit_and_compensate(30_00);
        assert_eq!(bounced_b.len(), 2);
        a.exchange(&mut b);
        assert_eq!(a.balances(), b.balances());
        let reversals =
            a.log().iter().filter(|op| matches!(op, BankOp::ReverseCheck { .. })).count();
        assert_eq!(reversals, 2);
        assert_eq!(a.balance(9), 4_000);
    }

    #[test]
    fn coordinated_clearing_prevents_the_overdraft() {
        let mut branches = vec![Branch::new(0), Branch::new(1)];
        let (id, acct, amt) = dep(1, 5, 10_000);
        branches[0].deposit(id, acct, amt);
        let c1 = Check { account: 5, number: 1, amount: 8_000 };
        let c2 = Check { account: 5, number: 2, amount: 8_000 };
        assert!(present_coordinated(&mut branches, c1).is_ok());
        match present_coordinated(&mut branches, c2) {
            Err(Refusal::InsufficientFunds { known_balance }) => {
                assert_eq!(known_balance, 2_000)
            }
            other => panic!("{other:?}"),
        }
        for b in &branches {
            assert_eq!(b.balance(5), 2_000);
        }
    }

    #[test]
    fn classify_matches_the_papers_threshold() {
        let small = Check { account: 1, number: 1, amount: 9_999_99 };
        let big = Check { account: 1, number: 2, amount: 10_000_00 };
        assert_eq!(classify_check(&small, 10_000_00), GuaranteeClass::Guess);
        assert_eq!(classify_check(&big, 10_000_00), GuaranteeClass::Coordinate);
    }

    #[test]
    fn holds_block_spending_until_released() {
        let mut b = Branch::new(0);
        let dep_id = Uniquifier::composite("dep", 1);
        // A poor-standing customer deposits $50 at round 0, held 5 rounds.
        b.deposit_check(dep_id, 3, 5_000, Standing::Poor, 0, 5);
        assert_eq!(b.balance(3), 5_000);
        assert_eq!(b.available(3), 0, "held funds are not spendable");
        // Spending against held funds bounces at presentment.
        assert!(matches!(
            b.present(Check { account: 3, number: 1, amount: 1_000 }),
            Err(Refusal::InsufficientFunds { known_balance: 0 })
        ));
        // Too early: nothing released.
        assert_eq!(b.tick(4), 0);
        assert_eq!(b.available(3), 0);
        // At the release round the hold lapses and spending works.
        assert_eq!(b.tick(5), 1);
        assert_eq!(b.available(3), 5_000);
        assert!(b.present(Check { account: 3, number: 2, amount: 1_000 }).is_ok());
        // Ticking again releases nothing new (derived release id).
        assert_eq!(b.tick(6), 0);
    }

    #[test]
    fn good_standing_deposits_are_spendable_immediately() {
        let mut b = Branch::new(0);
        b.deposit_check(Uniquifier::composite("dep", 2), 4, 5_000, Standing::Good, 0, 5);
        assert_eq!(b.available(4), 5_000);
    }

    #[test]
    fn hold_releases_collapse_across_branches() {
        let mut a = Branch::new(0);
        let mut b = Branch::new(1);
        let dep_id = Uniquifier::composite("dep", 3);
        a.deposit_check(dep_id, 5, 2_000, Standing::Poor, 0, 3);
        a.exchange(&mut b);
        // Both branches tick independently; the derived release ids make
        // the two releases the same operation.
        a.tick(3);
        b.tick(3);
        a.exchange(&mut b);
        assert_eq!(a.available(5), 2_000);
        assert_eq!(b.available(5), 2_000);
        assert_eq!(a.balances(), b.balances());
    }

    #[test]
    fn returned_deposit_with_hold_cannot_overdraw() {
        // The §6.2 story: brother-in-law's $100 check. With a hold, the
        // money was never spendable, so the claw-back (plus fee) lands on
        // funds that are still there.
        let mut b = Branch::new(0);
        let dep_id = Uniquifier::composite("dep", 4);
        b.deposit(Uniquifier::composite("opening", 4), 6, 1_000); // own $10
        b.deposit_check(dep_id, 6, 10_000, Standing::Poor, 0, 10);
        // The customer cannot spend the held $100 meanwhile.
        assert_eq!(b.available(6), 1_000);
        // The check bounces at round 5 (before the hold would lapse).
        b.return_deposit(dep_id, 6, 10_000, 3_000);
        // Balance: 1,000 + 10,000 - 10,000 - 3,000 fee = -2,000... the fee
        // can still overdraw a small balance, but the $100 itself could
        // never have been double-spent. Without the hold the customer
        // could have spent the full 11,000 first.
        assert_eq!(b.balance(6), -2_000);
        assert_eq!(b.state().held(6), 0, "the hold was released by the return");
    }

    #[test]
    fn returned_deposit_without_hold_enables_the_overdraft() {
        let mut b = Branch::new(0);
        let dep_id = Uniquifier::composite("dep", 5);
        b.deposit(Uniquifier::composite("opening", 5), 7, 1_000);
        // Good standing: no hold — "since you've been a good customer,
        // there is no hold on the money."
        b.deposit_check(dep_id, 7, 10_000, Standing::Good, 0, 10);
        // The customer spends almost everything...
        assert!(b.present(Check { account: 7, number: 1, amount: 10_500 }).is_ok());
        // ...and then the deposited check bounces: deep overdraft.
        b.return_deposit(dep_id, 7, 10_000, 3_000);
        assert_eq!(b.balance(7), 1_000 + 10_000 - 10_500 - 10_000 - 3_000);
        assert!(b.balance(7) < 0);
    }

    #[test]
    fn exchange_converges_balances() {
        let mut a = Branch::new(0);
        let mut b = Branch::new(1);
        a.deposit(Uniquifier::from_parts(1, 1), 1, 500);
        b.deposit(Uniquifier::from_parts(1, 2), 2, 700);
        a.exchange(&mut b);
        assert_eq!(a.balances(), b.balances());
        assert_eq!(a.balance(1), 500);
        assert_eq!(a.balance(2), 700);
    }
}
