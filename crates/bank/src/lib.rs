//! # bank — check clearing and ledgers (§6.2 of *Building on Quicksand*)
//!
//! The paper's second worked example, and its oldest: "This mechanism
//! has been used for many years and pre-dates computerized systems."
//! Check numbers are the canonical **uniquifier**; debits and credits
//! are the canonical **commutative operations**; the monthly statement
//! is the canonical **immutable ledger** — and replicated clearing is
//! the canonical **probabilistic business rule**: with branches clearing
//! independently, "there is a small (but present) possibility that
//! multiple checks presented to different replicas will cause an
//! overdraft that is not detected in time to bounce one of the checks."
//!
//! - [`types`] — checks, ops (Deposit / ClearCheck / ReverseCheck /
//!   BounceFee), all uniquified by *domain identity* so independent
//!   replicas mint collapsing operations; certified ACID 2.0 in tests.
//! - [`branch`] — a replica with the bank's two jobs: decide on best
//!   local knowledge, remember everything; plus the coordinated path
//!   for big checks (§5.5's $10,000 rule) and deterministic
//!   compensation (bounce + fee) at audit.
//! - [`statement`] — immutable monthly statements; late checks land next
//!   month; March is never modified.
//! - [`clearing`] — the E7/E8 harness sweeping disconnection windows and
//!   risk thresholds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod clearing;
pub mod deposits;
pub mod statement;
pub mod types;

pub use branch::{
    classify_check, present_coordinated, present_coordinated_among, Branch, ClearingResult, Refusal,
};
pub use clearing::{run_clearing, ClearingConfig, ClearingReport};
pub use deposits::{run_deposit_risk, DepositRiskConfig, DepositRiskReport};
pub use statement::{Statement, StatementBook};
pub use types::{AccountId, BankOp, BankState, Cents, Check, Standing};
