//! The bank's domain types: checks, operations, and account state.
//!
//! "There is a reason for check-numbers on checks. The check numbers
//! (combined with the bank-id and account-number) provide a unique
//! identifier." (§6.2) Every operation below carries a uniquifier
//! *derived from domain identity* — the check number for clearings, the
//! original check's id for reversals and fees — so that replicas acting
//! independently mint the *same* operation for the same business event
//! and the op-set union collapses them.

use quicksand_core::op::Operation;
use quicksand_core::uniquifier::Uniquifier;
use std::collections::BTreeMap;

/// Money in cents.
pub type Cents = i64;

/// An account number.
pub type AccountId = u64;

/// A paper check drawn on an account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Check {
    /// The account the check is drawn on.
    pub account: AccountId,
    /// The printed check number.
    pub number: u64,
    /// Face value, positive.
    pub amount: Cents,
}

impl Check {
    /// The check's uniquifier: bank + account + check number (§6.2 —
    /// "a wonderful unique-id"). Functionally dependent on the check
    /// itself, so every replica derives the same id.
    pub fn uniquifier(&self) -> Uniquifier {
        Uniquifier::composite(&format!("bank:quicksand/acct:{}", self.account), self.number)
    }
}

/// A customer's standing with the bank, which drives the optimism of the
/// deposit policy (§6.2: "the decision to be optimistic is based on YOUR
/// good standing with the bank").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standing {
    /// Deposits are spendable immediately (no hold).
    Good,
    /// Deposits are held for a few rounds before they are spendable.
    Poor,
}

/// One ledger operation. Debits and credits are commutative; every
/// variant is uniquified, so the whole set is ACID 2.0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankOp {
    /// Money in.
    Deposit {
        /// Uniquifier of the deposit event.
        id: Uniquifier,
        /// The credited account.
        account: AccountId,
        /// Amount, positive.
        amount: Cents,
    },
    /// A cleared check: money out.
    ClearCheck {
        /// The check's derived uniquifier.
        id: Uniquifier,
        /// The debited account.
        account: AccountId,
        /// Face value, positive (applied as a debit).
        amount: Cents,
    },
    /// A clearing reversed after the fact (the apology path): the check
    /// is returned and the debit undone.
    ReverseCheck {
        /// Derived from the original check's id — every replica that
        /// decides to bounce this check mints the identical operation.
        id: Uniquifier,
        /// The original clearing's uniquifier.
        original: Uniquifier,
        /// The credited-back account.
        account: AccountId,
        /// The amount returned, positive.
        amount: Cents,
    },
    /// The bounce fee that accompanies a reversal (§6.2's "$30 bounce
    /// fee").
    BounceFee {
        /// Derived from the original check's id.
        id: Uniquifier,
        /// The charged account.
        account: AccountId,
        /// Fee, positive (applied as a debit).
        amount: Cents,
    },
    /// A hold on deposited funds for a customer of poor standing (§6.2).
    /// Balance-neutral: it reduces the *available* balance until the
    /// release round.
    PlaceHold {
        /// Derived from the deposit's id.
        id: Uniquifier,
        /// The account whose funds are held.
        account: AccountId,
        /// Amount held, positive.
        amount: Cents,
        /// Round at or after which any branch may release the hold —
        /// embedded in the op so every replica derives the identical
        /// release.
        release_round: u64,
    },
    /// The scheduled release of a hold. Derived deterministically from
    /// the hold, so concurrent releasers collapse.
    ReleaseHold {
        /// Derived from the hold's id.
        id: Uniquifier,
        /// The hold being released.
        original: Uniquifier,
        /// The account.
        account: AccountId,
        /// Amount released, positive.
        amount: Cents,
    },
    /// A deposited check came back unpaid (§6.2's brother-in-law): the
    /// credited amount is clawed back.
    ReturnedDeposit {
        /// Derived from the deposit's id.
        id: Uniquifier,
        /// The deposit being returned.
        original: Uniquifier,
        /// The debited account.
        account: AccountId,
        /// Amount clawed back, positive.
        amount: Cents,
    },
}

impl BankOp {
    /// The reversal operation for a cleared check — deterministic, so
    /// concurrent discoverers collapse (see module docs).
    pub fn reversal_for(check: &Check) -> BankOp {
        let original = check.uniquifier();
        BankOp::ReverseCheck {
            id: Uniquifier::derived_from_fields(&[b"reverse", &original.as_raw().to_le_bytes()]),
            original,
            account: check.account,
            amount: check.amount,
        }
    }

    /// The bounce fee paired with a reversal.
    pub fn fee_for(check: &Check, fee: Cents) -> BankOp {
        BankOp::BounceFee {
            id: Uniquifier::derived_from_fields(&[
                b"fee",
                &check.uniquifier().as_raw().to_le_bytes(),
            ]),
            account: check.account,
            amount: fee,
        }
    }

    /// The hold placed alongside a deposit for a poor-standing customer.
    pub fn hold_for(
        deposit_id: Uniquifier,
        account: AccountId,
        amount: Cents,
        release_round: u64,
    ) -> BankOp {
        BankOp::PlaceHold {
            id: Uniquifier::derived_from_fields(&[b"hold", &deposit_id.as_raw().to_le_bytes()]),
            account,
            amount,
            release_round,
        }
    }

    /// The deterministic release of a hold op.
    pub fn release_for(hold: &BankOp) -> Option<BankOp> {
        match hold {
            BankOp::PlaceHold { id, account, amount, .. } => Some(BankOp::ReleaseHold {
                id: Uniquifier::derived_from_fields(&[b"release", &id.as_raw().to_le_bytes()]),
                original: *id,
                account: *account,
                amount: *amount,
            }),
            _ => None,
        }
    }

    /// The claw-back for a deposit whose underlying check bounced.
    pub fn returned_deposit(deposit_id: Uniquifier, account: AccountId, amount: Cents) -> BankOp {
        BankOp::ReturnedDeposit {
            id: Uniquifier::derived_from_fields(&[b"returned", &deposit_id.as_raw().to_le_bytes()]),
            original: deposit_id,
            account,
            amount,
        }
    }

    /// The affected account.
    pub fn account(&self) -> AccountId {
        match self {
            BankOp::Deposit { account, .. }
            | BankOp::ClearCheck { account, .. }
            | BankOp::ReverseCheck { account, .. }
            | BankOp::BounceFee { account, .. }
            | BankOp::PlaceHold { account, .. }
            | BankOp::ReleaseHold { account, .. }
            | BankOp::ReturnedDeposit { account, .. } => *account,
        }
    }

    /// The signed balance impact. Holds and releases are balance-neutral
    /// (they move money between "available" and "held", not in or out).
    pub fn signed_amount(&self) -> Cents {
        match self {
            BankOp::Deposit { amount, .. } | BankOp::ReverseCheck { amount, .. } => *amount,
            BankOp::ClearCheck { amount, .. }
            | BankOp::BounceFee { amount, .. }
            | BankOp::ReturnedDeposit { amount, .. } => -*amount,
            BankOp::PlaceHold { .. } | BankOp::ReleaseHold { .. } => 0,
        }
    }
}

/// Account state: real balances plus funds under hold.
///
/// A hold (§6.2) does not change the balance — the money is credited —
/// but it is not *spendable* until the deposited check has had time to
/// clear. "A less desirable customer (like your brother-in-law) would
/// have a hold placed on the money (reserving for a potential bounce)."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankState {
    /// Real money per account.
    pub balances: BTreeMap<AccountId, Cents>,
    /// Amount currently under hold per account.
    pub held: BTreeMap<AccountId, Cents>,
}

impl BankState {
    /// The account's real balance.
    pub fn balance(&self, account: AccountId) -> Cents {
        self.balances.get(&account).copied().unwrap_or(0)
    }

    /// The amount under hold.
    pub fn held(&self, account: AccountId) -> Cents {
        self.held.get(&account).copied().unwrap_or(0)
    }

    /// What the customer may actually spend: balance minus holds.
    pub fn available(&self, account: AccountId) -> Cents {
        self.balance(account) - self.held(account)
    }
}

impl Operation for BankOp {
    type State = BankState;

    fn id(&self) -> Uniquifier {
        match self {
            BankOp::Deposit { id, .. }
            | BankOp::ClearCheck { id, .. }
            | BankOp::ReverseCheck { id, .. }
            | BankOp::BounceFee { id, .. }
            | BankOp::PlaceHold { id, .. }
            | BankOp::ReleaseHold { id, .. }
            | BankOp::ReturnedDeposit { id, .. } => *id,
        }
    }

    fn apply(&self, state: &mut BankState) {
        *state.balances.entry(self.account()).or_insert(0) += self.signed_amount();
        match self {
            BankOp::PlaceHold { account, amount, .. } => {
                *state.held.entry(*account).or_insert(0) += amount;
            }
            BankOp::ReleaseHold { account, amount, .. } => {
                *state.held.entry(*account).or_insert(0) -= amount;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicksand_core::acid2;
    use rand::SeedableRng;

    #[test]
    fn check_uniquifier_is_functionally_dependent_on_the_check() {
        let c1 = Check { account: 42, number: 1001, amount: 10_000 };
        let c2 = Check { account: 42, number: 1001, amount: 10_000 };
        let c3 = Check { account: 42, number: 1002, amount: 10_000 };
        assert_eq!(c1.uniquifier(), c2.uniquifier());
        assert_ne!(c1.uniquifier(), c3.uniquifier());
    }

    #[test]
    fn reversal_and_fee_are_deterministic_per_check() {
        let c = Check { account: 7, number: 55, amount: 3_000 };
        assert_eq!(BankOp::reversal_for(&c), BankOp::reversal_for(&c));
        assert_eq!(BankOp::fee_for(&c, 3_000), BankOp::fee_for(&c, 3_000));
        assert_ne!(BankOp::reversal_for(&c).id(), BankOp::fee_for(&c, 3_000).id());
        assert_ne!(BankOp::reversal_for(&c).id(), c.uniquifier());
    }

    #[test]
    fn ops_apply_with_correct_signs() {
        let mut state = BankState::default();
        let c = Check { account: 1, number: 9, amount: 500 };
        BankOp::Deposit { id: Uniquifier::from_parts(0, 1), account: 1, amount: 1_000 }
            .apply(&mut state);
        BankOp::ClearCheck { id: c.uniquifier(), account: 1, amount: 500 }.apply(&mut state);
        assert_eq!(state.balance(1), 500);
        BankOp::reversal_for(&c).apply(&mut state);
        BankOp::fee_for(&c, 30_00).apply(&mut state);
        assert_eq!(state.balance(1), 1_000 - 30_00);
    }

    #[test]
    fn bank_ops_are_acid_2_0() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut ops = Vec::new();
        for i in 0..10u64 {
            ops.push(BankOp::Deposit {
                id: Uniquifier::from_parts(9, i),
                account: i % 3,
                amount: 100 * i as i64,
            });
            let c = Check { account: i % 3, number: 500 + i, amount: 40 * i as i64 };
            ops.push(BankOp::ClearCheck {
                id: c.uniquifier(),
                account: c.account,
                amount: c.amount,
            });
        }
        acid2::certify(&ops, 40, &mut rng).expect("debits and credits commute");
    }
}
