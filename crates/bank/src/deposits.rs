//! The deposit-risk harness (E13): quantifying §6.2's hold policy.
//!
//! "You deposit your brother-in-law's check for $100 into your bank
//! account and, since you've been a good customer, there is no hold on
//! the money... Later, when the check bounces, your account is debited
//! $130." The hold is the bank's over-provisioning move: held funds
//! cannot be spent, so a bounced deposit claws back money that is still
//! there. This harness runs risky deposits and spending side by side,
//! with and without holds, and measures the overdrafts that result.

use quicksand_core::uniquifier::Uniquifier;
use rand::Rng;
use sim::SimRng;

use crate::branch::Branch;
use crate::types::{Cents, Check, Standing};

/// Configuration for one deposit-risk run.
#[derive(Debug, Clone)]
pub struct DepositRiskConfig {
    /// Customer accounts.
    pub n_accounts: u64,
    /// Opening balance of each customer's own money.
    pub opening: Cents,
    /// Rounds to run.
    pub rounds: u64,
    /// Risky check deposits per round.
    pub deposits_per_round: u64,
    /// Face value of each deposited check.
    pub deposit_amount: Cents,
    /// Probability a deposited check later bounces.
    pub bounce_prob: f64,
    /// Rounds until a bouncing check comes back.
    pub bounce_delay: u64,
    /// Spending attempts per round (checks drawn by the customers).
    pub spends_per_round: u64,
    /// Face value of spending checks.
    pub spend_amount: Cents,
    /// Hold length for poor-standing customers; `None` disables holds
    /// entirely (every customer treated as good standing — the ablation).
    pub hold_rounds: Option<u64>,
    /// Fraction of accounts with poor standing.
    pub poor_fraction: f64,
    /// Bounce fee.
    pub fee: Cents,
}

impl Default for DepositRiskConfig {
    fn default() -> Self {
        DepositRiskConfig {
            n_accounts: 20,
            opening: 2_000, // $20 of their own money
            rounds: 120,
            deposits_per_round: 2,
            deposit_amount: 10_000, // the brother-in-law's $100
            bounce_prob: 0.3,
            bounce_delay: 8,
            spends_per_round: 6,
            spend_amount: 4_000,
            hold_rounds: Some(10), // longer than the bounce delay
            poor_fraction: 0.5,
            fee: 3_000, // $30
        }
    }
}

/// What a deposit-risk run measured.
#[derive(Debug, Clone, Default)]
pub struct DepositRiskReport {
    /// Risky deposits taken.
    pub deposits: u64,
    /// Deposits that bounced back.
    pub bounced_deposits: u64,
    /// Spending checks cleared.
    pub spends_cleared: u64,
    /// Spending checks refused (insufficient *available* funds).
    pub spends_refused: u64,
    /// Accounts that went overdrawn at any audit — the damage the hold
    /// policy exists to prevent.
    pub overdraft_episodes: u64,
    /// Sum of negative balances observed at audits (apology dollars).
    pub overdraft_cents: Cents,
}

/// Run a deposit-risk scenario on a single branch (the risk mechanics
/// are orthogonal to replication, which E7 already covers).
pub fn run_deposit_risk(cfg: &DepositRiskConfig, seed: u64) -> DepositRiskReport {
    let mut rng = SimRng::new(seed);
    let mut branch = Branch::new(0);
    let mut report = DepositRiskReport::default();
    // (deposit id, account, due round) for checks that will bounce.
    let mut pending_bounces: Vec<(Uniquifier, u64, u64)> = Vec::new();
    let mut deposit_seq = 0u64;
    let mut check_no = 1u64;

    let standing_of = |account: u64, cfg: &DepositRiskConfig| {
        if cfg.hold_rounds.is_none() {
            Standing::Good
        } else if (account as f64 + 0.5) / cfg.n_accounts as f64 <= cfg.poor_fraction {
            Standing::Poor
        } else {
            Standing::Good
        }
    };

    for acct in 0..cfg.n_accounts {
        branch.deposit(Uniquifier::composite("own-funds", acct), acct, cfg.opening);
    }

    for round in 0..cfg.rounds {
        // Risky deposits arrive.
        for _ in 0..cfg.deposits_per_round {
            let account = rng.gen_range(0..cfg.n_accounts);
            let id = Uniquifier::composite("risky-deposit", deposit_seq);
            deposit_seq += 1;
            let standing = standing_of(account, cfg);
            branch.deposit_check(
                id,
                account,
                cfg.deposit_amount,
                standing,
                round,
                cfg.hold_rounds.unwrap_or(0),
            );
            report.deposits += 1;
            if rng.gen_bool(cfg.bounce_prob) {
                pending_bounces.push((id, account, round + cfg.bounce_delay));
            }
        }

        // Customers spend.
        for _ in 0..cfg.spends_per_round {
            let account = rng.gen_range(0..cfg.n_accounts);
            let check = Check { account, number: check_no, amount: cfg.spend_amount };
            check_no += 1;
            match branch.present(check) {
                Ok(()) => report.spends_cleared += 1,
                Err(_) => report.spends_refused += 1,
            }
        }

        // Bounced deposits come back.
        let (due, rest): (Vec<_>, Vec<_>) =
            pending_bounces.into_iter().partition(|(_, _, r)| *r <= round);
        pending_bounces = rest;
        for (id, account, _) in due {
            branch.return_deposit(id, account, cfg.deposit_amount, cfg.fee);
            report.bounced_deposits += 1;
        }

        // Scheduled hold releases.
        branch.tick(round);

        // Audit.
        for (_, balance) in branch.overdrafts() {
            report.overdraft_episodes += 1;
            report.overdraft_cents += -balance;
        }
        // Make overdrawn accounts whole so episodes stay comparable
        // round to round (the bank eats it / collects out of band).
        let overdrawn = branch.overdrafts();
        for (account, balance) in overdrawn {
            branch.deposit(
                Uniquifier::composite("make-whole", round * 10_000 + account),
                account,
                -balance,
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_cut_deposit_driven_overdrafts() {
        let with_holds = run_deposit_risk(&DepositRiskConfig::default(), 7);
        let without = run_deposit_risk(
            &DepositRiskConfig { hold_rounds: None, ..DepositRiskConfig::default() },
            7,
        );
        assert!(
            with_holds.overdraft_cents < without.overdraft_cents,
            "holds {with_holds:?} vs none {without:?}"
        );
        assert!(with_holds.bounced_deposits > 0);
    }

    #[test]
    fn holds_also_refuse_more_spending() {
        // The price of the hold: the customer can't spend funds that are
        // reserved — conservatism declines business (§7.1's tradeoff in
        // bank clothing).
        let with_holds = run_deposit_risk(&DepositRiskConfig::default(), 9);
        let without = run_deposit_risk(
            &DepositRiskConfig { hold_rounds: None, ..DepositRiskConfig::default() },
            9,
        );
        assert!(with_holds.spends_refused > without.spends_refused);
    }

    #[test]
    fn deterministic() {
        let a = run_deposit_risk(&DepositRiskConfig::default(), 11);
        let b = run_deposit_risk(&DepositRiskConfig::default(), 11);
        assert_eq!(a.overdraft_cents, b.overdraft_cents);
        assert_eq!(a.spends_cleared, b.spends_cleared);
    }
}
