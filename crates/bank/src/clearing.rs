//! The replicated check-clearing harness (E7/E8): several branches
//! clearing checks against shared accounts with periodic reconciliation
//! — the paper's replicated bank of §6.2, with the §5.5 risk-threshold
//! policy as a knob.
//!
//! The harness is round-based rather than actor-based: the phenomena
//! here (probabilistic rule enforcement, reconciliation, compensation)
//! are functions of *how much knowledge replicas exchange and when*, not
//! of message timing — so rounds with a configurable exchange period
//! model the disconnection window directly and keep the experiments
//! easy to sweep.

use std::collections::HashSet;

use quicksand_core::mga::{Apology, ApologyQueue, ReplicaId};
use quicksand_core::op::Operation;
use quicksand_core::uniquifier::Uniquifier;
use rand::Rng;
use sim::chaos::{Fault, FaultPlan};
use sim::{
    GuessId, GuessOutcome, Ledger, LedgerAccounting, MetricSet, NodeId, SimRng, SimTime, SpanId,
    SpanStatus, SpanStore,
};

use crate::branch::{present_coordinated_among, Branch, Refusal};
use crate::statement::StatementBook;
use crate::types::{BankOp, Cents, Check};

/// Configuration for one clearing run.
#[derive(Debug, Clone)]
pub struct ClearingConfig {
    /// Number of branches (replicas).
    pub n_branches: usize,
    /// Number of customer accounts.
    pub n_accounts: u64,
    /// Initial deposit per account, known to every branch up front.
    pub initial_deposit: Cents,
    /// Rounds to run.
    pub rounds: u64,
    /// Checks presented per round (system-wide).
    pub checks_per_round: u64,
    /// Lognormal μ for check amounts (of cents).
    pub amount_mu: f64,
    /// Lognormal σ for check amounts.
    pub amount_sigma: f64,
    /// Branches exchange knowledge (all pairs) every this many rounds —
    /// the disconnection window.
    pub exchange_every: u64,
    /// Probability a check is presented at a second branch too (retry
    /// storms, §5.4's over-enthusiastic replicas).
    pub dup_presentment_prob: f64,
    /// Checks at or above this value take the coordinated path (§5.5's
    /// $10,000 rule); `None` = always guess.
    pub coordinate_threshold: Option<Cents>,
    /// Fee charged when a check bounces at audit (§6.2's $30).
    pub bounce_fee: Cents,
    /// Issue statements from branch 0 every this many rounds.
    pub statement_every: Option<u64>,
    /// Local clearing latency (µs) for the analytic latency model.
    pub local_us: f64,
    /// Full-coordination round-trip latency (µs).
    pub coord_rtt_us: f64,
    /// Simulated length of one round (µs) — positions rounds on a time
    /// axis so guess-outstanding windows and spans have real durations.
    pub round_us: f64,
    /// Declarative fault timeline, interpreted on the round axis
    /// (`round_us` maps clause times to rounds). `Crash` takes a branch
    /// offline (it presents nothing and skips exchanges; its books are
    /// durable); `Partition` blocks the cross pairs' exchanges; one-way
    /// partitions block the pair (exchange is symmetric); `Degrade` has
    /// no round-axis meaning and is ignored. Branch 0 is the head
    /// office/auditor and never goes offline — clauses naming it are
    /// ignored. The final settlement always runs fully connected, so the
    /// books always close.
    pub faults: FaultPlan,
}

impl Default for ClearingConfig {
    fn default() -> Self {
        ClearingConfig {
            n_branches: 3,
            n_accounts: 50,
            initial_deposit: 100_000, // $1,000.00
            rounds: 200,
            checks_per_round: 10,
            amount_mu: 9.2, // median check ≈ $99
            amount_sigma: 1.0,
            exchange_every: 20,
            dup_presentment_prob: 0.02,
            coordinate_threshold: Some(1_000_000), // $10,000
            bounce_fee: 3_000,                     // $30
            statement_every: Some(50),
            local_us: 500.0,
            coord_rtt_us: 40_000.0,
            round_us: 1_000_000.0, // one second per round
            faults: FaultPlan::none(),
        }
    }
}

/// What a clearing run measured.
#[derive(Debug, Clone, Default)]
pub struct ClearingReport {
    /// Checks presented (first presentments).
    pub presented: u64,
    /// Cleared on a local guess.
    pub cleared_local: u64,
    /// Cleared through coordination.
    pub cleared_coordinated: u64,
    /// Refused for insufficient funds at presentment.
    pub refused: u64,
    /// Second presentments collapsed by the uniquifier.
    pub duplicates_collapsed: u64,
    /// Second presentments that *also* cleared (different branch hadn't
    /// heard yet) — the impact still lands once, but two "cleared"
    /// answers went out.
    pub duplicates_granted: u64,
    /// Accounts found overdrawn at reconciliation (episodes, summed over
    /// audits).
    pub overdraft_episodes: u64,
    /// Checks bounced by compensation.
    pub bounced: u64,
    /// Overdrafts compensation could not fix (escalated to a human,
    /// §5.6).
    pub human_apologies: u64,
    /// Mean clearing latency (µs) under the analytic latency model.
    pub mean_clear_latency_us: f64,
    /// All branches agreed on every balance at the end.
    pub converged: bool,
    /// No check's business impact ever landed twice.
    pub no_double_posting: bool,
    /// Statement book audit passed.
    pub statements_ok: bool,
    /// Independent balanced-books audit: every branch's incremental
    /// state equals a from-scratch replay of its log, and the sum of
    /// final balances equals the signed sum of every operation — money
    /// is conserved no matter what the fault plan did.
    pub books_balance: bool,
    /// Accounts still negative at the very end.
    pub final_negative_accounts: u64,
    /// Run metrics: the `guess.outstanding_us` histogram (act-on-guess →
    /// reconciliation verdict) and `guess.confirmed` / `guess.apologies`
    /// counters labeled by branch.
    pub metrics: MetricSet,
    /// `bank.clear_check` / `guess.outstanding` spans on the round time
    /// axis (`round_us` per round).
    pub spans: SpanStore,
    /// Guess/apology accounting (`bank.clear_check` guesses: checks
    /// cleared on local knowledge, judged at reconciliation).
    pub ledger: LedgerAccounting,
}

fn full_exchange(branches: &mut [Branch]) {
    for i in 0..branches.len() {
        for j in (i + 1)..branches.len() {
            let (a, b) = branches.split_at_mut(j);
            a[i].exchange(&mut b[0]);
        }
    }
}

/// The fault plan projected onto the round axis: who is offline and
/// which exchange pairs are blocked, per round.
struct RoundFaults {
    /// (branch, offline from round, offline until round).
    offline: Vec<(usize, u64, u64)>,
    /// (a, b, from round, until round), a < b.
    blocked: Vec<(usize, usize, u64, u64)>,
}

impl RoundFaults {
    fn project(plan: &FaultPlan, n_branches: usize, round_us: f64) -> Self {
        let round_of = |t: SimTime| (t.as_micros() as f64 / round_us) as u64;
        let mut rf = RoundFaults { offline: Vec::new(), blocked: Vec::new() };
        let mut block = |xs: &[NodeId], ys: &[NodeId], from: u64, until: u64| {
            for x in xs {
                for y in ys {
                    let (a, b) = (x.0.min(y.0), x.0.max(y.0));
                    if a != b && b < n_branches {
                        rf.blocked.push((a, b, from, until));
                    }
                }
            }
        };
        for f in &plan.faults {
            match f {
                // Branch 0 is the head office: it takes the audits and
                // is never modeled as down.
                Fault::Crash { at, node, restart_at } if node.0 != 0 && node.0 < n_branches => {
                    let until = restart_at.map(round_of).unwrap_or(u64::MAX);
                    rf.offline.push((node.0, round_of(*at), until));
                }
                Fault::Partition { at, until, left, right } => {
                    block(left, right, round_of(*at), round_of(*until));
                }
                Fault::PartitionOneWay { at, until, from, to } => {
                    block(from, to, round_of(*at), round_of(*until));
                }
                _ => {}
            }
        }
        rf
    }

    fn is_offline(&self, branch: usize, round: u64) -> bool {
        self.offline.iter().any(|(b, from, until)| *b == branch && *from <= round && round < *until)
    }

    fn pair_blocked(&self, x: usize, y: usize, round: u64) -> bool {
        let (a, b) = (x.min(y), x.max(y));
        self.blocked
            .iter()
            .any(|(pa, pb, from, until)| *pa == a && *pb == b && *from <= round && round < *until)
    }

    /// Can `branch` exchange with the head office at `round`?
    fn reaches_auditor(&self, branch: usize, round: u64) -> bool {
        branch == 0 || (!self.is_offline(branch, round) && !self.pair_blocked(0, branch, round))
    }
}

/// One exchange round honoring the plan: offline branches and blocked
/// pairs sit it out.
fn exchange_connected(branches: &mut [Branch], rf: &RoundFaults, round: u64) {
    for i in 0..branches.len() {
        for j in (i + 1)..branches.len() {
            if rf.is_offline(i, round) || rf.is_offline(j, round) || rf.pair_blocked(i, j, round) {
                continue;
            }
            let (a, b) = branches.split_at_mut(j);
            a[i].exchange(&mut b[0]);
        }
    }
}

/// A locally-cleared check whose verdict is still out: the branch said
/// "cleared" on partial knowledge and reconciliation will confirm or
/// bounce it.
struct OutstandingGuess {
    check: Uniquifier,
    branch: usize,
    span: SpanId,
    guess: GuessId,
}

/// Settle outstanding guesses against this audit's bounce list. Only
/// guesses whose branch can reach the auditor are judged; the rest stay
/// outstanding (their windows keep growing) until a later audit.
fn resolve_guesses(
    outstanding: &mut Vec<OutstandingGuess>,
    bounced: &HashSet<Uniquifier>,
    at: SimTime,
    metrics: &mut MetricSet,
    spans: &mut SpanStore,
    ledger: &mut Ledger,
    resolvable: impl Fn(usize) -> bool,
) {
    let mut kept = Vec::new();
    for g in outstanding.drain(..) {
        if !resolvable(g.branch) {
            kept.push(g);
            continue;
        }
        let confirmed = !bounced.contains(&g.check);
        ledger.resolve(
            g.guess,
            at,
            if confirmed { GuessOutcome::Confirmed } else { GuessOutcome::Apologized },
        );
        let start = spans.get(g.span).expect("guess span exists").start;
        metrics.record("guess.outstanding_us", at.saturating_since(start).as_micros() as f64);
        let branch = format!("b{}", g.branch);
        let (counter, status) = if confirmed {
            ("guess.confirmed", SpanStatus::Ok)
        } else {
            ("guess.apologies", SpanStatus::Failed)
        };
        metrics.inc_with(counter, &[("branch", branch.as_str())]);
        spans.add_field(
            g.span,
            "resolution",
            if confirmed { "confirmed" } else { "apology" }.to_owned(),
        );
        spans.finish_span(g.span, at, status);
    }
    *outstanding = kept;
}

/// Run a clearing scenario.
pub fn run_clearing(cfg: &ClearingConfig, seed: u64) -> ClearingReport {
    let mut rng = SimRng::new(seed);
    let mut branches: Vec<Branch> = (0..cfg.n_branches as u32).map(Branch::new).collect();
    let mut report = ClearingReport::default();
    let mut apologies = ApologyQueue::new();
    let mut book = StatementBook::new();
    let mut next_check_number: u64 = 1;
    let mut latency_total = 0.0;
    let mut latency_count = 0u64;
    let mut metrics = MetricSet::new();
    let mut spans = SpanStore::new();
    let mut ledger = Ledger::new();
    let mut outstanding: Vec<OutstandingGuess> = Vec::new();
    // Round r occupies [r·round_us, (r+1)·round_us) on the time axis.
    let at_us = |round: u64, within: f64| {
        SimTime::from_micros((round as f64 * cfg.round_us + within) as u64)
    };
    let rf = RoundFaults::project(&cfg.faults, cfg.n_branches, cfg.round_us);

    // Seed deposits, known everywhere (the opening of the books).
    for acct in 0..cfg.n_accounts {
        let id = quicksand_core::uniquifier::Uniquifier::composite("opening-deposit", acct);
        for b in branches.iter_mut() {
            b.learn(BankOp::Deposit { id, account: acct, amount: cfg.initial_deposit });
        }
    }

    for round in 0..cfg.rounds {
        // Checks can only be presented at branches that are up this
        // round. Branch 0 never crashes, so the list is never empty —
        // and with no faults it is every branch, leaving the RNG stream
        // identical to a legacy run.
        let online: Vec<usize> =
            (0..branches.len()).filter(|b| !rf.is_offline(*b, round)).collect();
        for _ in 0..cfg.checks_per_round {
            let account = rng.gen_range(0..cfg.n_accounts);
            let amount = rng.lognormal(cfg.amount_mu, cfg.amount_sigma).round() as Cents;
            let amount = amount.max(1);
            let check = Check { account, number: next_check_number, amount };
            next_check_number += 1;
            report.presented += 1;

            let coordinate = cfg.coordinate_threshold.is_some_and(|t| amount >= t);
            let outcome = if coordinate {
                latency_total += cfg.local_us + cfg.coord_rtt_us;
                latency_count += 1;
                let r = present_coordinated_among(&mut branches, &online, check);
                if r.is_ok() {
                    report.cleared_coordinated += 1;
                    // Coordination is crisp: no guess to measure.
                    let s = spans.open_span("bank.clear_check", None, None, at_us(round, 0.0));
                    spans.add_field(s, "path", "coordinated".to_owned());
                    spans.add_field(s, "account", account.to_string());
                    spans.add_field(s, "amount", amount.to_string());
                    spans.finish_span(
                        s,
                        at_us(round, cfg.local_us + cfg.coord_rtt_us),
                        SpanStatus::Ok,
                    );
                    metrics.inc("bank.cleared_coordinated");
                }
                r
            } else {
                latency_total += cfg.local_us;
                latency_count += 1;
                let b = online[rng.gen_range(0..online.len())];
                let r = branches[b].present(check);
                if r.is_ok() {
                    report.cleared_local += 1;
                    // Clearing on local knowledge: the answer goes out
                    // now, the verdict arrives at reconciliation. The
                    // guess span runs between the two.
                    let s = spans.open_span(
                        "bank.clear_check",
                        Some(NodeId(b)),
                        None,
                        at_us(round, 0.0),
                    );
                    spans.add_field(s, "path", "local-guess".to_owned());
                    spans.add_field(s, "account", account.to_string());
                    spans.add_field(s, "amount", amount.to_string());
                    spans.finish_span(s, at_us(round, cfg.local_us), SpanStatus::Ok);
                    let g = spans.open_span(
                        "guess.outstanding",
                        Some(NodeId(b)),
                        Some(s),
                        at_us(round, cfg.local_us),
                    );
                    spans.add_field(g, "op", "bank.clear_check".to_owned());
                    let guess = ledger.open(
                        "bank.clear_check",
                        Some(NodeId(b)),
                        "local balance knowledge",
                        at_us(round, cfg.local_us),
                    );
                    outstanding.push(OutstandingGuess {
                        check: check.uniquifier(),
                        branch: b,
                        span: g,
                        guess,
                    });
                    let branch = format!("b{b}");
                    metrics.inc_with("bank.cleared_local", &[("branch", branch.as_str())]);
                }
                r
            };
            match outcome {
                Ok(()) => {
                    // Maybe the payee's bank presents it again elsewhere.
                    if cfg.n_branches > 1 && rng.gen_bool(cfg.dup_presentment_prob) {
                        let b2 = online[rng.gen_range(0..online.len())];
                        match branches[b2].present(check) {
                            Ok(()) => report.duplicates_granted += 1,
                            Err(Refusal::Duplicate) => report.duplicates_collapsed += 1,
                            Err(Refusal::InsufficientFunds { .. }) => {}
                        }
                    }
                }
                Err(Refusal::InsufficientFunds { .. }) => report.refused += 1,
                Err(Refusal::Duplicate) => report.duplicates_collapsed += 1,
            }
        }

        // Periodic reconciliation: knowledge sloshes together, the "Oh,
        // crap!" moments surface, compensation runs.
        if (round + 1) % cfg.exchange_every == 0 {
            exchange_connected(&mut branches, &rf, round + 1);
            let overdrawn = branches[0].overdrafts();
            report.overdraft_episodes += overdrawn.len() as u64;
            let bounced = branches[0].audit_and_compensate(cfg.bounce_fee);
            report.bounced += bounced.len() as u64;
            let bounced_ids: HashSet<Uniquifier> = bounced.iter().map(|c| c.uniquifier()).collect();
            resolve_guesses(
                &mut outstanding,
                &bounced_ids,
                at_us(round + 1, 0.0),
                &mut metrics,
                &mut spans,
                &mut ledger,
                |b| rf.reaches_auditor(b, round + 1),
            );
            // Compensation that couldn't make an account whole goes to a
            // human (§5.6 step 1).
            for (account, balance) in branches[0].overdrafts() {
                apologies.file(Apology {
                    discovered_by: ReplicaId(0),
                    rule: "no-overdraft".to_owned(),
                    uniquifier: None,
                    detail: format!("account {account} still at {balance} after compensation"),
                });
            }
            exchange_connected(&mut branches, &rf, round + 1);
        }

        if let Some(every) = cfg.statement_every {
            if (round + 1) % every == 0 {
                book.close_period(branches[0].log());
            }
        }
    }

    // Final settlement: exchange, audit, exchange.
    full_exchange(&mut branches);
    let bounced = branches[0].audit_and_compensate(cfg.bounce_fee);
    report.bounced += bounced.len() as u64;
    let bounced_ids: HashSet<Uniquifier> = bounced.iter().map(|c| c.uniquifier()).collect();
    resolve_guesses(
        &mut outstanding,
        &bounced_ids,
        at_us(cfg.rounds, 0.0),
        &mut metrics,
        &mut spans,
        &mut ledger,
        |_| true,
    );
    full_exchange(&mut branches);

    report.human_apologies = apologies.human_queue().len() as u64;
    report.mean_clear_latency_us =
        if latency_count == 0 { 0.0 } else { latency_total / latency_count as f64 };
    report.converged = branches.windows(2).all(|w| w[0].balances() == w[1].balances());
    // Double-posting check: the union's ledger must contain at most one
    // clearing per check uniquifier — true by OpLog construction, but we
    // verify by recount.
    {
        let mut seen = std::collections::HashSet::new();
        report.no_double_posting = branches[0]
            .log()
            .iter()
            .filter(|op| matches!(op, BankOp::ClearCheck { .. }))
            .all(|op| seen.insert(op.id()));
    }
    if cfg.statement_every.is_some() {
        book.close_period(branches[0].log());
        report.statements_ok = book.verify(branches[0].balances()).is_ok();
    } else {
        report.statements_ok = true;
    }
    report.final_negative_accounts =
        branches[0].balances().balances.values().filter(|b| **b < 0).count() as u64;
    // Balanced books, two independent ways: (a) each branch's
    // incrementally-maintained state equals a from-scratch replay of its
    // log; (b) the sum of every final balance equals the signed sum of
    // every operation — no cent minted or lost, whatever the plan did.
    report.books_balance = branches.iter().all(|b| b.log().materialize() == *b.balances()) && {
        let net: Cents = branches[0]
            .log()
            .iter()
            .map(|op| match op {
                BankOp::Deposit { amount, .. } => *amount,
                BankOp::ClearCheck { amount, .. } => -*amount,
                BankOp::ReverseCheck { amount, .. } => *amount,
                BankOp::BounceFee { amount, .. } => -*amount,
                // Holds are balance-neutral (they gate availability).
                BankOp::PlaceHold { .. } | BankOp::ReleaseHold { .. } => 0,
                BankOp::ReturnedDeposit { amount, .. } => -*amount,
            })
            .sum();
        branches[0].balances().balances.values().sum::<Cents>() == net
    };
    ledger.export_metrics(&mut metrics);
    report.ledger = ledger.accounting();
    report.metrics = metrics;
    report.spans = spans;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_run_converges_and_never_double_posts() {
        let r = run_clearing(&ClearingConfig::default(), 7);
        assert!(r.converged, "{r:?}");
        assert!(r.no_double_posting, "{r:?}");
        assert!(r.statements_ok, "{r:?}");
        assert!(r.books_balance, "{r:?}");
        assert!(r.presented > 0);
    }

    #[test]
    fn fault_plan_delays_knowledge_but_the_books_still_balance() {
        use sim::chaos::{Fault, FaultPlan};
        use sim::NodeId;
        // One second per round: the partition spans rounds 30..120, the
        // crash takes branch 2 down for rounds 60..100.
        let faulted = ClearingConfig {
            faults: FaultPlan::from_faults(vec![
                Fault::Partition {
                    at: SimTime::from_secs(30),
                    until: SimTime::from_secs(120),
                    left: vec![NodeId(0)],
                    right: vec![NodeId(1), NodeId(2)],
                },
                Fault::Crash {
                    at: SimTime::from_secs(60),
                    node: NodeId(2),
                    restart_at: Some(SimTime::from_secs(100)),
                },
            ]),
            ..ClearingConfig::default()
        };
        let mut rf = run_clearing(&faulted, 7);
        let mut rc = run_clearing(&ClearingConfig::default(), 7);
        // Safety holds regardless of the plan: the final settlement
        // closes the books.
        assert!(rf.converged, "{rf:?}");
        assert!(rf.no_double_posting, "{rf:?}");
        assert!(rf.books_balance, "{rf:?}");
        assert_eq!(rf.spans.open_spans().count(), 0, "all guesses eventually resolve");
        // But the disconnection is visible: guesses parked behind the
        // partition stay outstanding across audits, stretching the
        // longest act-on-guess window well past the calm run's.
        let f_max = rf.metrics.histogram("guess.outstanding_us").max();
        let c_max = rc.metrics.histogram("guess.outstanding_us").max();
        assert!(f_max > c_max, "partitioned guesses must wait longer: {f_max} vs {c_max}");
    }

    #[test]
    fn guess_windows_are_measured_and_nonzero() {
        let mut r = run_clearing(&ClearingConfig::default(), 7);
        let summary = r.metrics.histogram("guess.outstanding_us").summary();
        assert!(summary.count > 0, "local clears record guess windows");
        // Every guess is outstanding for at least the remainder of its
        // round: strictly positive durations.
        assert!(summary.min > 0.0, "min = {}", summary.min);
        // No guess spans leak: all were resolved at an audit.
        assert_eq!(r.spans.open_spans().count(), 0);
        let confirmed = r.metrics.counter("guess.confirmed");
        let apologies = r.metrics.counter("guess.apologies");
        assert_eq!(confirmed + apologies, summary.count as u64);
        // The audit ledger agrees with the metrics, and nothing is left
        // open after the final settlement.
        assert!(r.ledger.is_settled(), "{:?}", r.ledger);
        assert_eq!(r.ledger.confirmed(), confirmed);
        assert_eq!(r.ledger.apologized(), apologies);
    }

    #[test]
    fn longer_disconnection_windows_mean_more_overdrafts() {
        let tight = ClearingConfig {
            exchange_every: 1,
            coordinate_threshold: None,
            rounds: 300,
            checks_per_round: 20,
            n_accounts: 20,
            initial_deposit: 20_000,
            ..ClearingConfig::default()
        };
        let loose = ClearingConfig { exchange_every: 50, ..tight.clone() };
        let rt = run_clearing(&tight, 11);
        let rl = run_clearing(&loose, 11);
        assert!(rl.overdraft_episodes > rt.overdraft_episodes, "loose {rl:?} vs tight {rt:?}");
    }

    #[test]
    fn coordination_threshold_trades_latency_for_risk() {
        let base = ClearingConfig {
            rounds: 300,
            checks_per_round: 20,
            n_accounts: 20,
            initial_deposit: 50_000,
            amount_mu: 9.8,
            exchange_every: 25,
            ..ClearingConfig::default()
        };
        let always_guess = ClearingConfig { coordinate_threshold: None, ..base.clone() };
        let always_coord = ClearingConfig { coordinate_threshold: Some(0), ..base.clone() };
        let rg = run_clearing(&always_guess, 13);
        let rc = run_clearing(&always_coord, 13);
        assert!(rg.mean_clear_latency_us < rc.mean_clear_latency_us);
        assert_eq!(rc.overdraft_episodes, 0, "full coordination is crisp: {rc:?}");
        assert!(rg.overdraft_episodes > 0, "pure guessing must slip sometimes: {rg:?}");
    }

    #[test]
    fn duplicate_presentments_never_double_post() {
        let cfg =
            ClearingConfig { dup_presentment_prob: 0.5, rounds: 100, ..ClearingConfig::default() };
        let r = run_clearing(&cfg, 17);
        assert!(r.no_double_posting, "{r:?}");
        assert!(r.duplicates_collapsed + r.duplicates_granted > 0, "{r:?}");
    }

    #[test]
    fn deterministic() {
        let a = run_clearing(&ClearingConfig::default(), 23);
        let b = run_clearing(&ClearingConfig::default(), 23);
        assert_eq!(a.presented, b.presented);
        assert_eq!(a.overdraft_episodes, b.overdraft_episodes);
        assert_eq!(a.bounced, b.bounced);
    }
}
