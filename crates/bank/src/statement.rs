//! Monthly statements: the immutable ledger of §6.2.
//!
//! "At the end of the month, a statement is issued... Once it is issued,
//! it is permanent and immutable. Errors in March's statement may be
//! adjusted in April's statement but March's statement is never
//! modified." A check floating across the period boundary "may land in
//! this month's statement or in next month's statement" — which is
//! exactly how [`StatementBook::close_period`] behaves: a statement
//! carries every operation *known and not yet posted* at closing time;
//! anything learned later lands on the next one.

use std::collections::{HashMap, HashSet};

use quicksand_core::op::{OpLog, Operation};
use quicksand_core::uniquifier::Uniquifier;

use crate::types::{AccountId, BankOp, BankState, Cents};

/// One issued, immutable statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The account.
    pub account: AccountId,
    /// Statement sequence number for the account (0 = first month).
    pub period: u32,
    /// Balance carried in.
    pub opening: Cents,
    /// Balance carried out: opening plus the entries.
    pub closing: Cents,
    /// The posted operations: (uniquifier, signed impact).
    pub entries: Vec<(Uniquifier, Cents)>,
}

/// Issues statements from a branch's operation memory.
#[derive(Debug, Clone, Default)]
pub struct StatementBook {
    posted: HashSet<Uniquifier>,
    statements: Vec<Statement>,
    next_period: HashMap<AccountId, u32>,
    last_closing: HashMap<AccountId, Cents>,
}

impl StatementBook {
    /// An empty book.
    pub fn new() -> Self {
        StatementBook::default()
    }

    /// Close the current period against the branch's memory: every known
    /// account gets a statement carrying the operations not yet posted.
    /// Returns the statements just issued.
    pub fn close_period(&mut self, log: &OpLog<BankOp>) -> Vec<Statement> {
        let mut per_account: HashMap<AccountId, Vec<(Uniquifier, Cents)>> = HashMap::new();
        for op in log.iter() {
            if !self.posted.contains(&op.id()) {
                if op.signed_amount() == 0 {
                    // Balance-neutral ops (holds and releases) are not
                    // statement lines; mark them posted and move on.
                    self.posted.insert(op.id());
                    continue;
                }
                per_account.entry(op.account()).or_default().push((op.id(), op.signed_amount()));
            }
        }
        // Every account that has ever had a statement also closes this
        // period (possibly with no entries), so period numbers advance
        // uniformly.
        let known: Vec<AccountId> = self
            .next_period
            .keys()
            .copied()
            .chain(per_account.keys().copied())
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        let mut accounts: Vec<AccountId> = known;
        accounts.sort_unstable();

        let mut issued = Vec::new();
        for account in accounts {
            let entries = per_account.remove(&account).unwrap_or_default();
            let opening = self.last_closing.get(&account).copied().unwrap_or(0);
            let closing = opening + entries.iter().map(|(_, v)| v).sum::<Cents>();
            let period = *self.next_period.entry(account).or_insert(0);
            *self.next_period.get_mut(&account).expect("just inserted") += 1;
            for (id, _) in &entries {
                self.posted.insert(*id);
            }
            self.last_closing.insert(account, closing);
            let st = Statement { account, period, opening, closing, entries };
            self.statements.push(st.clone());
            issued.push(st);
        }
        issued
    }

    /// Every statement issued, in issue order.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// The statements of one account, in period order.
    pub fn for_account(&self, account: AccountId) -> Vec<&Statement> {
        self.statements.iter().filter(|s| s.account == account).collect()
    }

    /// Audit the book: openings chain from closings, closings equal
    /// opening plus entries, and the last closing matches the supplied
    /// balance for every account the book knows (accounts with
    /// operations the book hasn't closed yet are reported).
    pub fn verify(&self, current: &BankState) -> Result<(), String> {
        let mut last: HashMap<AccountId, Cents> = HashMap::new();
        for s in &self.statements {
            let expected_opening = last.get(&s.account).copied().unwrap_or(0);
            if s.opening != expected_opening {
                return Err(format!(
                    "account {} period {}: opening {} breaks the chain (expected {})",
                    s.account, s.period, s.opening, expected_opening
                ));
            }
            let sum: Cents = s.entries.iter().map(|(_, v)| v).sum();
            if s.closing != s.opening + sum {
                return Err(format!(
                    "account {} period {}: closing {} != opening {} + entries {}",
                    s.account, s.period, s.closing, s.opening, sum
                ));
            }
            last.insert(s.account, s.closing);
        }
        for (account, closing) in &last {
            if let Some(balance) = current.balances.get(account) {
                if closing != balance {
                    return Err(format!(
                        "account {account}: final closing {closing} != current balance {balance} \
                         (operations pending the next close?)"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Check;

    fn dep(n: u64, account: AccountId, amount: Cents) -> BankOp {
        BankOp::Deposit { id: Uniquifier::from_parts(4, n), account, amount }
    }

    #[test]
    fn statements_chain_and_balance() {
        let mut log: OpLog<BankOp> = OpLog::new();
        log.record(dep(1, 1, 10_000));
        log.record(dep(2, 1, 5_000));
        let mut book = StatementBook::new();
        let march = book.close_period(&log);
        assert_eq!(march.len(), 1);
        assert_eq!(march[0].opening, 0);
        assert_eq!(march[0].closing, 15_000);
        assert_eq!(march[0].entries.len(), 2);

        let check = Check { account: 1, number: 9, amount: 4_000 };
        log.record(BankOp::ClearCheck { id: check.uniquifier(), account: 1, amount: 4_000 });
        let april = book.close_period(&log);
        assert_eq!(april[0].opening, 15_000);
        assert_eq!(april[0].closing, 11_000);
        book.verify(&log.materialize()).unwrap();
    }

    #[test]
    fn late_arriving_op_lands_in_the_next_month_and_march_is_never_modified() {
        let mut log: OpLog<BankOp> = OpLog::new();
        log.record(dep(1, 1, 1_000));
        let mut book = StatementBook::new();
        let march = book.close_period(&log).remove(0);

        // A check cleared "on midnight of the 31st" arrives after close.
        log.record(dep(2, 1, 500));
        let april = book.close_period(&log).remove(0);
        assert_eq!(april.entries.len(), 1);
        assert_eq!(april.closing, 1_500);

        // March is byte-for-byte the statement that was issued.
        assert_eq!(book.for_account(1)[0], &march);
        book.verify(&log.materialize()).unwrap();
    }

    #[test]
    fn empty_periods_still_issue_for_known_accounts() {
        let mut log: OpLog<BankOp> = OpLog::new();
        log.record(dep(1, 1, 100));
        let mut book = StatementBook::new();
        book.close_period(&log);
        let second = book.close_period(&log);
        assert_eq!(second.len(), 1);
        assert!(second[0].entries.is_empty());
        assert_eq!(second[0].opening, 100);
        assert_eq!(second[0].closing, 100);
    }

    #[test]
    fn verify_catches_tampering() {
        let mut log: OpLog<BankOp> = OpLog::new();
        log.record(dep(1, 1, 100));
        let mut book = StatementBook::new();
        book.close_period(&log);
        // Fake a mismatched balance.
        let mut bogus = BankState::default();
        bogus.balances.insert(1, 999);
        assert!(book.verify(&bogus).is_err());
    }

    #[test]
    fn multiple_accounts_close_independently() {
        let mut log: OpLog<BankOp> = OpLog::new();
        log.record(dep(1, 1, 100));
        log.record(dep(2, 2, 200));
        let mut book = StatementBook::new();
        let issued = book.close_period(&log);
        assert_eq!(issued.len(), 2);
        assert_eq!(book.for_account(1).len(), 1);
        assert_eq!(book.for_account(2).len(), 1);
        book.verify(&log.materialize()).unwrap();
    }
}
