//! Property-based tests of the pattern library's invariants — the ACID
//! 2.0 laws, escrow safety, dedup exactly-once, reservation state
//! machine, and allocator bounds — under arbitrary inputs and
//! interleavings.

use proptest::prelude::*;
use quicksand_core::acid2::examples::CounterAdd;
use quicksand_core::escrow::EscrowCounter;
use quicksand_core::idempotence::DedupTable;
use quicksand_core::op::{OpLog, Operation};
use quicksand_core::reservation::{BuyerId, SeatId, SeatMap, SessionId};
use quicksand_core::resources::{settle, OverbookedReplica, ProvisionedReplica};
use quicksand_core::uniquifier::Uniquifier;

fn ops_strategy(max: usize) -> impl Strategy<Value = Vec<CounterAdd>> {
    // Uniquifiers are functionally dependent on the request (§2.1): two
    // different deltas never share an id. The generated high bits
    // shuffle canonical order relative to creation order.
    prop::collection::vec((0u64..500, -100i64..100), 0..max).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (n, d))| CounterAdd::new(n * 1000 + i as u64, d))
            .collect()
    })
}

proptest! {
    /// Same op set, any insertion order, any duplication ⇒ same state.
    #[test]
    fn oplog_state_depends_only_on_the_set(ops in ops_strategy(60), seed in 0u64..1000) {
        let mut ordered = OpLog::new();
        for op in &ops {
            ordered.record(op.clone());
        }
        // A shuffled, duplicated delivery.
        let mut shuffled = ops.clone();
        let mut rng_state = seed;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            rng_state
        };
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut log = OpLog::new();
        for op in &shuffled {
            log.record(op.clone());
            if next() % 3 == 0 {
                log.record(op.clone()); // duplicate delivery
            }
        }
        prop_assert!(log.same_ops(&ordered));
        prop_assert_eq!(log.materialize(), ordered.materialize());
    }

    /// Merging logs is commutative and never loses an op.
    #[test]
    fn oplog_merge_commutes(a in ops_strategy(40), b in ops_strategy(40)) {
        let mut la = OpLog::new();
        for op in &a { la.record(op.clone()); }
        let mut lb = OpLog::new();
        for op in &b { lb.record(op.clone()); }
        let mut ab = la.clone();
        ab.merge(&lb);
        let mut ba = lb.clone();
        ba.merge(&la);
        prop_assert!(ab.same_ops(&ba));
        for op in la.iter().chain(lb.iter()) {
            prop_assert!(ab.contains(op.id()));
        }
    }

    /// The dedup table executes each uniquifier exactly once within its
    /// window, no matter how retries arrive.
    #[test]
    fn dedup_executes_exactly_once(ids in prop::collection::vec(0u64..50, 1..200)) {
        let mut table: DedupTable<u64> = DedupTable::new(1024);
        let mut executions = std::collections::HashMap::new();
        for (i, n) in ids.iter().enumerate() {
            let id = Uniquifier::from_parts(9, *n);
            let was_known = table.contains(id);
            let out = table.execute(id, || {
                *executions.entry(*n).or_insert(0u32) += 1;
                i as u64
            });
            prop_assert_eq!(out.executed(), !was_known);
            prop_assert_eq!(table.recall(id), Some(&out.into_response()));
        }
        for (n, count) in executions {
            prop_assert_eq!(count, 1, "uniquifier {} executed {} times", n, count);
        }
    }

    /// Escrow never lets the committed value (or any possible outcome of
    /// pending work) escape the bounds, whatever the interleaving.
    #[test]
    fn escrow_bounds_hold_under_arbitrary_interleavings(
        script in prop::collection::vec((0u8..4, -50i64..50), 1..200)
    ) {
        let (min, max, initial) = (0i64, 500i64, 250i64);
        let mut counter = EscrowCounter::new(initial, min, max);
        let mut open: Vec<_> = Vec::new();
        for (action, delta) in script {
            match action {
                0 => open.push(counter.begin()),
                1 => {
                    if let Some(t) = open.last() {
                        let _ = counter.reserve(*t, delta);
                    }
                }
                2 => {
                    if let Some(t) = open.pop() {
                        counter.commit(t).unwrap();
                    }
                }
                _ => {
                    if let Some(t) = open.pop() {
                        counter.abort(t).unwrap();
                    }
                }
            }
            prop_assert!(counter.low_watermark() >= min);
            prop_assert!(counter.high_watermark() <= max);
            prop_assert!(counter.low_watermark() <= counter.committed());
            prop_assert!(counter.committed() <= counter.high_watermark());
        }
        for t in open {
            counter.commit(t).unwrap();
        }
        prop_assert!((min..=max).contains(&counter.committed()));
        prop_assert_eq!(counter.value_if_quiesced(), Some(counter.committed()));
    }

    /// The seat map's business rule survives any operation sequence:
    /// after cleanup, no seat is pending past its expiry, and purchased
    /// seats stay purchased.
    #[test]
    fn seat_map_invariant_is_preserved(
        script in prop::collection::vec((0u8..4, 0u32..8, 0u64..5), 1..150)
    ) {
        let mut map = SeatMap::new(8);
        let ttl = 10u64;
        let mut purchased = std::collections::HashSet::new();
        for (now, (action, seat, session)) in script.into_iter().enumerate() {
            let now = now as u64;
            let seat = SeatId(seat);
            let session = SessionId(session);
            match action {
                0 => { let _ = map.hold(seat, session, now, ttl); }
                1 => {
                    if map.purchase(seat, session, BuyerId(session.0), now).is_ok() {
                        purchased.insert(seat);
                    }
                }
                2 => { let _ = map.release(seat, session); }
                _ => { map.expire(now); }
            }
            map.expire(now.saturating_sub(ttl));
            for s in &purchased {
                prop_assert!(
                    matches!(map.state(*s).unwrap(), quicksand_core::reservation::SeatState::Purchased { .. }),
                    "a purchase was undone"
                );
            }
        }
        map.expire(u64::MAX / 2);
        prop_assert!(map.check_invariant(u64::MAX / 2, 0).is_ok());
    }

    /// A provisioned replica can never allocate beyond its quota, and
    /// releases restore exactly what was granted.
    #[test]
    fn provisioned_replica_accounting(
        requests in prop::collection::vec((0u64..100, 1u64..10, prop::bool::ANY), 1..100)
    ) {
        let quota = 50u64;
        let mut r = ProvisionedReplica::new(0, quota);
        for (n, qty, release_after) in requests {
            let id = Uniquifier::from_parts(3, n);
            let granted = r.try_allocate(id, qty).granted();
            prop_assert!(r.used() <= quota);
            if granted && release_after {
                prop_assert_eq!(r.release(id), Some(qty));
            }
        }
        prop_assert_eq!(r.used() + r.remaining(), r.quota());
    }

    /// Over-booked settlement: bumped quantity equals exactly the
    /// oversell, and with factor 1.0 a fully-synced fleet never
    /// oversells.
    #[test]
    fn overbooking_settlement_balances(
        sales in prop::collection::vec(0u64..200, 0..120),
        sync_period in 1usize..20
    ) {
        // A sale's quantity is part of the sale: the same uniquifier
        // always carries the same qty (§2.1's functional dependence).
        let qty_of = |n: u64| 1 + n % 3;
        let capacity = 60u64;
        let mut fleet = vec![
            OverbookedReplica::new(0, capacity, 1.0),
            OverbookedReplica::new(1, capacity, 1.0),
        ];
        for (i, n) in sales.iter().enumerate() {
            let id = Uniquifier::from_parts(4, *n);
            let r = i % 2;
            let _ = fleet[r].try_allocate(id, qty_of(*n));
            if i % sync_period == 0 {
                let (a, b) = fleet.split_at_mut(1);
                a[0].sync(&mut b[0]);
            }
        }
        let s = settle(&fleet);
        prop_assert_eq!(s.oversold, s.total_sold.saturating_sub(capacity));
        let bumped: u64 = s.bumped.iter().map(|(_, q)| q).sum();
        prop_assert_eq!(bumped, s.oversold);
    }
}
