//! Hand-rolled wire encoding for shipping operations between real
//! processes.
//!
//! The simulator clones messages in memory, so nothing in the workspace
//! needed a serialization story until the wall-clock runtime grew a TCP
//! transport. This module is that story, kept deliberately boring: a
//! fixed-width little-endian encoding with length-prefixed containers,
//! zero dependencies, and no self-description — both ends must agree on
//! the message type, exactly like the substrate contract says they do.
//!
//! Encoding rules:
//!
//! - integers: little-endian, fixed width (`u8`..`u128`, `i64`)
//! - `bool`: one byte, `0` or `1`
//! - `String`: `u32` byte length + UTF-8 bytes
//! - `Option<T>`: one tag byte (`0`/`1`) + payload when present
//! - `Vec<T>`, `BTreeSet<T>`, `BTreeMap<K, V>`: `u32` element count +
//!   elements in iteration order (sorted, for the ordered containers)
//! - enums: one `u8` discriminant + the variant's fields in order
//!
//! Decoding is strict: trailing garbage inside a counted container,
//! short buffers, and invalid discriminants all surface as
//! [`WireError`] rather than panics, because the bytes come from a
//! network peer, not from this process.

use std::collections::{BTreeMap, BTreeSet};

use crate::op::{OpLog, Operation};
use crate::uniquifier::Uniquifier;

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// An enum discriminant byte had no matching variant.
    BadTag(u8),
    /// A `String` payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire: buffer truncated"),
            WireError::BadTag(t) => write!(f, "wire: unknown discriminant {t}"),
            WireError::BadUtf8 => write!(f, "wire: invalid utf-8 in string"),
        }
    }
}

impl std::error::Error for WireError {}

/// A type that can be written to and read back from a byte stream.
///
/// `decode` consumes bytes from the front of `buf` (advancing the
/// slice), so composite types decode their fields by chaining calls.
/// The round-trip law — `decode(encode(x)) == x` — is what the
/// property tests check for every implementing type.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Read one value from the front of `buf`, advancing it past the
    /// consumed bytes.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;
}

/// Encode a value into a fresh buffer.
pub fn to_bytes<T: WireCodec>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decode a value from a buffer, requiring every byte to be consumed.
pub fn from_bytes<T: WireCodec>(mut buf: &[u8]) -> Result<T, WireError> {
    let v = T::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(WireError::Truncated);
    }
    Ok(v)
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i64);

impl WireCodec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl WireCodec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as usize;
        let bytes = take(buf, n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as usize;
        // Guard against a hostile count: never reserve more than the
        // bytes that could possibly back it.
        let mut out = Vec::with_capacity(n.min(buf.len()));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<T: WireCodec + Ord> WireCodec for BTreeSet<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as usize;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<K: WireCodec + Ord, V: WireCodec> WireCodec for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as usize;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(buf)?;
            let v = V::decode(buf)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// A log-framed body: a log sequence number plus the payload committed
/// at that position. Every WAL in the workspace — logship's shipped
/// records, tandem's retained checkpoint stream, the eventlog segment
/// format — is "an LSN stapled to a business payload"; this is that
/// frame, written once. `Deref` exposes the body's fields directly, so
/// holders read `rec.key` rather than `rec.body.key` — the frame is
/// plumbing, not domain state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Framed<T> {
    /// Position in the writing node's log.
    pub lsn: u64,
    /// The payload committed at that position.
    pub body: T,
}

impl<T> Framed<T> {
    /// Frame `body` at log position `lsn`.
    pub fn new(lsn: u64, body: T) -> Self {
        Framed { lsn, body }
    }
}

impl<T> std::ops::Deref for Framed<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.body
    }
}

impl<T> std::ops::DerefMut for Framed<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.body
    }
}

impl<T: WireCodec> WireCodec for Framed<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.lsn.encode(buf);
        self.body.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Framed { lsn: u64::decode(buf)?, body: T::decode(buf)? })
    }
}

impl WireCodec for Uniquifier {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_raw().encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Uniquifier::from_raw(u128::decode(buf)?))
    }
}

/// The op log travels as its operation list; `record` re-deduplicates
/// on decode, so a log that crossed the wire is the same set it was.
impl<O: Operation + WireCodec> WireCodec for OpLog<O> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for op in self.iter() {
            op.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)? as usize;
        let mut log = OpLog::new();
        for _ in 0..n {
            log.record(O::decode(buf)?);
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acid2::examples::CounterAdd;

    impl WireCodec for CounterAdd {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.id.encode(buf);
            self.delta.encode(buf);
        }
        fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
            Ok(CounterAdd { id: Uniquifier::decode(buf)?, delta: i64::decode(buf)? })
        }
    }

    fn round_trip<T: WireCodec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).expect("decodes"), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX - 1);
        round_trip(u128::MAX / 3);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("quicksand §6.1"));
        round_trip(String::new());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip((5u64, String::from("x")));
        round_trip(BTreeSet::from([3u64, 1, 2]));
        round_trip(BTreeMap::from([(1u32, 10u64), (2, 20)]));
        round_trip(Uniquifier::from_parts(0xABCD, 0x1234));
    }

    #[test]
    fn oplog_round_trips_as_a_set() {
        let mut log = OpLog::new();
        log.record(CounterAdd::new(1, 50));
        log.record(CounterAdd::new(2, -20));
        let bytes = to_bytes(&log);
        let back: OpLog<CounterAdd> = from_bytes(&bytes).expect("decodes");
        assert_eq!(back.len(), 2);
        assert_eq!(back.materialize(), log.materialize());
    }

    #[test]
    fn truncated_buffers_error_instead_of_panicking() {
        let bytes = to_bytes(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(from_bytes::<Vec<u64>>(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A count claiming 4 billion elements backed by 4 bytes.
        let mut buf = Vec::new();
        u32::MAX.encode(&mut buf);
        0u32.encode(&mut buf);
        assert_eq!(from_bytes::<Vec<u64>>(&buf), Err(WireError::Truncated));
    }

    #[test]
    fn framed_round_trips_and_derefs_to_its_body() {
        let rec = Framed::new(42, CounterAdd::new(7, -3));
        round_trip(rec.clone());
        // The frame is transparent for reads: body fields resolve
        // through Deref.
        assert_eq!(rec.delta, -3);
        assert_eq!(rec.lsn, 42);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }
}
