//! ACID 2.0 property checking (§8): Associative, Commutative, Idempotent,
//! Distributed.
//!
//! "The goal for ACID2.0 is to succeed if the pieces of the work happen:
//! at least once, anywhere in the system, in any order." (§8) This module
//! turns that definition into executable checks an application can run
//! against its own operation types — the formalism the paper says
//! designers usually lack ("application designers instinctively gravitate
//! to a world of eventual consistency, usually without the formalisms to
//! help them get there", §10).
//!
//! The checks are sampling-based: they try many random arrival orders,
//! duplications, and merge groupings and report the first counterexample.
//! They are used three ways in this workspace: as unit tests of the
//! example applications' operations, as proptest properties, and as the
//! A2 ablation (a raw overwriting WRITE fails the commutativity check —
//! "WRITE is not commutative", §5.3).

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::op::{OpLog, Operation};

/// A counterexample found by one of the checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which law was broken.
    pub law: Law,
    /// Human-readable description of the failing scenario.
    pub detail: String,
}

/// The ACID 2.0 laws the checker can probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Law {
    /// Two arrival orders of the same operations produced different
    /// states.
    Commutativity,
    /// Two merge groupings of the same replica logs produced different
    /// states.
    Associativity,
    /// At-least-once delivery (duplicates) changed the outcome.
    Idempotence,
}

impl fmt::Display for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Law::Commutativity => write!(f, "commutativity"),
            Law::Associativity => write!(f, "associativity"),
            Law::Idempotence => write!(f, "idempotence"),
        }
    }
}

/// Apply operations *raw*, in slice order, without an [`OpLog`] — i.e.
/// what a system does when it just executes arrivals. Used to probe
/// whether the operations themselves commute.
pub fn replay_raw<O: Operation>(ops: &[O]) -> O::State {
    let mut s = O::State::default();
    for op in ops {
        op.apply(&mut s);
    }
    s
}

/// Check that raw execution of `ops` is arrival-order independent, by
/// comparing `trials` random shuffles against the given order. Requires
/// `State: PartialEq`.
pub fn check_commutative<O>(ops: &[O], trials: usize, rng: &mut impl Rng) -> Result<(), Violation>
where
    O: Operation + fmt::Debug,
    O::State: PartialEq + fmt::Debug,
{
    let reference = replay_raw(ops);
    let mut shuffled: Vec<O> = ops.to_vec();
    for t in 0..trials {
        shuffled.shuffle(rng);
        let got = replay_raw(&shuffled);
        if got != reference {
            return Err(Violation {
                law: Law::Commutativity,
                detail: format!(
                    "trial {t}: reordering produced {got:?}, expected {reference:?} \
                     (order: {shuffled:?})"
                ),
            });
        }
    }
    Ok(())
}

/// Check that merging replica logs is grouping-independent: distribute
/// `ops` across `replicas` logs, then combine them by left fold and by a
/// random binary tree; both must materialize identically. (For [`OpLog`]
/// this holds by construction — set union — but the check also catches an
/// application whose `apply` reads ambient state it shouldn't.)
pub fn check_associative<O>(
    ops: &[O],
    replicas: usize,
    trials: usize,
    rng: &mut impl Rng,
) -> Result<(), Violation>
where
    O: Operation + fmt::Debug,
    O::State: PartialEq + fmt::Debug,
{
    assert!(replicas >= 2, "associativity needs at least two replicas");
    for t in 0..trials {
        // Random distribution of ops to replicas.
        let mut logs: Vec<OpLog<O>> = (0..replicas).map(|_| OpLog::new()).collect();
        for op in ops {
            let r = rng.gen_range(0..replicas);
            logs[r].record(op.clone());
        }
        // Left fold.
        let mut fold = OpLog::new();
        for log in &logs {
            fold.merge(log);
        }
        let reference = fold.materialize();
        // Random pairwise tree.
        let mut pool = logs;
        while pool.len() > 1 {
            let i = rng.gen_range(0..pool.len());
            let a = pool.swap_remove(i);
            let j = rng.gen_range(0..pool.len());
            pool[j].merge(&a);
        }
        let got = pool.pop().expect("one log remains").materialize();
        if got != reference {
            return Err(Violation {
                law: Law::Associativity,
                detail: format!(
                    "trial {t}: tree merge produced {got:?}, fold produced {reference:?}"
                ),
            });
        }
    }
    Ok(())
}

/// Check at-least-once tolerance: delivering each operation 1–3 times
/// through an [`OpLog`] must produce the same state as delivering each
/// exactly once.
pub fn check_idempotent<O>(ops: &[O], trials: usize, rng: &mut impl Rng) -> Result<(), Violation>
where
    O: Operation + fmt::Debug,
    O::State: PartialEq + fmt::Debug,
{
    let mut once = OpLog::new();
    for op in ops {
        once.record(op.clone());
    }
    let reference = once.materialize();
    for t in 0..trials {
        let mut deliveries: Vec<O> = Vec::new();
        for op in ops {
            for _ in 0..rng.gen_range(1..=3) {
                deliveries.push(op.clone());
            }
        }
        deliveries.shuffle(rng);
        let mut log = OpLog::new();
        for op in &deliveries {
            log.record(op.clone());
        }
        let got = log.materialize();
        if got != reference {
            return Err(Violation {
                law: Law::Idempotence,
                detail: format!(
                    "trial {t}: duplicated delivery produced {got:?}, expected {reference:?}"
                ),
            });
        }
    }
    Ok(())
}

/// Run all three checks; the full ACID 2.0 certificate for an operation
/// set (the D — Distributed — is what the rest of the workspace
/// exercises: the same checks passing means the ops can run anywhere).
pub fn certify<O>(ops: &[O], trials: usize, rng: &mut impl Rng) -> Result<(), Violation>
where
    O: Operation + fmt::Debug,
    O::State: PartialEq + fmt::Debug,
{
    check_commutative(ops, trials, rng)?;
    check_associative(ops, 3, trials, rng)?;
    check_idempotent(ops, trials, rng)
}

/// Example operations used by tests, docs, and the A2 ablation bench.
pub mod examples {
    use crate::op::Operation;
    use crate::uniquifier::Uniquifier;

    /// A commutative counter increment — passes every ACID 2.0 check.
    #[derive(Clone, Debug, PartialEq)]
    pub struct CounterAdd {
        /// Uniquifier for this increment.
        pub id: Uniquifier,
        /// Signed amount to add.
        pub delta: i64,
    }

    impl CounterAdd {
        /// Convenience constructor for tests.
        pub fn new(n: u64, delta: i64) -> Self {
            CounterAdd { id: Uniquifier::from_parts(1, n), delta }
        }
    }

    impl Operation for CounterAdd {
        type State = i64;
        fn id(&self) -> Uniquifier {
            self.id
        }
        fn apply(&self, state: &mut i64) {
            *state += self.delta;
        }
    }

    /// A raw overwriting WRITE — the storage abstraction the paper calls
    /// "annoying" (§5.3). Fails the commutativity check whenever two
    /// writes target the same register with different values.
    #[derive(Clone, Debug, PartialEq)]
    pub struct RegisterWrite {
        /// Uniquifier for this write.
        pub id: Uniquifier,
        /// The value stored, clobbering whatever was there.
        pub value: i64,
    }

    impl RegisterWrite {
        /// Convenience constructor for tests.
        pub fn new(n: u64, value: i64) -> Self {
            RegisterWrite { id: Uniquifier::from_parts(2, n), value }
        }
    }

    impl Operation for RegisterWrite {
        type State = i64;
        fn id(&self) -> Uniquifier {
            self.id
        }
        fn apply(&self, state: &mut i64) {
            *state = self.value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::examples::{CounterAdd, RegisterWrite};
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn commutative_ops_pass_all_checks() {
        let ops: Vec<CounterAdd> = (0..30).map(|i| CounterAdd::new(i, i as i64 - 10)).collect();
        certify(&ops, 50, &mut rng()).expect("counter adds are ACID 2.0");
    }

    #[test]
    fn raw_writes_fail_commutativity() {
        let ops = vec![RegisterWrite::new(1, 10), RegisterWrite::new(2, 20)];
        let err = check_commutative(&ops, 200, &mut rng()).unwrap_err();
        assert_eq!(err.law, Law::Commutativity);
    }

    #[test]
    fn single_write_trivially_commutes() {
        let ops = vec![RegisterWrite::new(1, 10)];
        check_commutative(&ops, 20, &mut rng()).expect("one op always commutes");
    }

    #[test]
    fn oplog_gives_even_writes_associativity_and_idempotence() {
        // The canonical replay order in OpLog makes merge deterministic
        // even for non-commutative ops — the log is doing the work the
        // raw operations can't.
        let ops =
            vec![RegisterWrite::new(1, 10), RegisterWrite::new(2, 20), RegisterWrite::new(3, 30)];
        check_associative(&ops, 3, 50, &mut rng()).expect("union is associative");
        check_idempotent(&ops, 50, &mut rng()).expect("union dedups");
    }

    #[test]
    fn empty_op_set_passes_vacuously() {
        let ops: Vec<CounterAdd> = vec![];
        certify(&ops, 10, &mut rng()).expect("vacuous");
    }

    #[test]
    fn violation_display_names_the_law() {
        assert_eq!(Law::Commutativity.to_string(), "commutativity");
        assert_eq!(Law::Associativity.to_string(), "associativity");
        assert_eq!(Law::Idempotence.to_string(), "idempotence");
    }

    #[test]
    fn replay_raw_applies_in_slice_order() {
        let ops = vec![RegisterWrite::new(1, 10), RegisterWrite::new(2, 20)];
        assert_eq!(replay_raw(&ops), 20);
        let rev: Vec<_> = ops.into_iter().rev().collect();
        assert_eq!(replay_raw(&rev), 10);
    }
}
