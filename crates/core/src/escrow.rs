//! Escrow locking (§5.3 sidebar; O'Neil, *The Escrow Transactional
//! Method*, TODS 1986).
//!
//! "If you assume a set of commutative operations (such as addition and
//! subtraction), you ensure changes are logged via 'operation logging'...
//! The system simply needs to track the worst case for all the
//! transactions pending commitment." This module implements exactly that
//! scheme, the way Tandem's NonStop SQL did for high-throughput addition
//! and subtraction:
//!
//! - Changes are recorded as **operation log** entries ("T1 subtracted
//!   $10"); an abort applies the inverse operation rather than restoring
//!   a before-image, so concurrent transactions' work interleaves freely.
//! - Two watermarks track the worst case: `low` assumes every pending
//!   decrement commits and every pending increment aborts; `high` the
//!   reverse. A new operation is admitted only if the relevant watermark
//!   stays within the `[min, max]` constraint — so the business rule is
//!   enforced *crisply* (this is the centralized, pessimistic contrast to
//!   the probabilistic enforcement of [`crate::mga`]).
//! - A **READ** "does not commute, is annoying, and stops other
//!   concurrent work": it only succeeds when no other transaction has
//!   pending operations, and while the reader's transaction remains open
//!   it holds a read lock that blocks new operations from others.

use std::collections::HashMap;
use std::fmt;

/// Identifies an open escrow transaction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TxnId(u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Why an escrow operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EscrowError {
    /// Admitting the operation *might* take the value out of bounds given
    /// the pending worst case, so it is refused (the sidebar's "a new
    /// operation will be delayed if it MIGHT cause the value to fall out
    /// of bounds with the pending work").
    WouldExceedBounds {
        /// The delta that was refused.
        delta: i64,
        /// The watermark that would have been violated.
        watermark: i64,
        /// The bound it would have crossed.
        bound: i64,
    },
    /// A READ was attempted while other transactions have pending work.
    ReadWouldBlock {
        /// How many other transactions hold pending operations.
        pending_others: usize,
    },
    /// An operation was attempted while another transaction holds the
    /// read lock.
    ReadLocked {
        /// The reading transaction.
        holder: TxnId,
    },
    /// The transaction id is not active (never begun, or already ended).
    UnknownTxn(TxnId),
}

impl fmt::Display for EscrowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscrowError::WouldExceedBounds { delta, watermark, bound } => write!(
                f,
                "escrow: delta {delta} refused (worst case {watermark} would cross bound {bound})"
            ),
            EscrowError::ReadWouldBlock { pending_others } => {
                write!(f, "escrow: READ blocks on {pending_others} pending transaction(s)")
            }
            EscrowError::ReadLocked { holder } => {
                write!(f, "escrow: {holder} holds the read lock")
            }
            EscrowError::UnknownTxn(t) => write!(f, "escrow: {t} is not active"),
        }
    }
}

impl std::error::Error for EscrowError {}

/// One entry of the operation log: "Transaction T1 subtracted $10".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The transaction that performed the operation.
    pub txn: TxnId,
    /// The signed amount ("subtracted $10" is `delta: -10`).
    pub delta: i64,
    /// Whether this entry has been resolved, and how.
    pub outcome: EntryOutcome,
}

/// The eventual fate of a logged operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryOutcome {
    /// The owning transaction is still open.
    Pending,
    /// Committed: the delta is permanent.
    Committed,
    /// Aborted: the inverse operation was applied (operation logging —
    /// "the system would add $10 rather than restore the value").
    Inverted,
}

#[derive(Debug, Default)]
struct TxnState {
    deltas: Vec<i64>,
}

/// A bounded counter supporting concurrent commutative updates under
/// escrow locking.
///
/// ```
/// use quicksand_core::escrow::EscrowCounter;
///
/// // An inventory of 100 units, never below 0 nor above 500.
/// let mut stock = EscrowCounter::new(100, 0, 500);
/// let t1 = stock.begin();
/// let t2 = stock.begin();
/// stock.reserve(t1, -60).unwrap();       // t1 takes 60
/// stock.reserve(t2, -60).unwrap_err();   // t2's 60 MIGHT overdraw: delayed
/// stock.abort(t1).unwrap();              // inverse op releases the headroom
/// stock.reserve(t2, -60).unwrap();
/// stock.commit(t2).unwrap();
/// assert_eq!(stock.committed(), 40);
/// ```
#[derive(Debug)]
pub struct EscrowCounter {
    min: i64,
    max: i64,
    committed: i64,
    /// Value if all pending decrements commit and all pending increments
    /// abort.
    low: i64,
    /// Value if all pending increments commit and all pending decrements
    /// abort.
    high: i64,
    active: HashMap<TxnId, TxnState>,
    next_txn: u64,
    read_lock: Option<TxnId>,
    log: Vec<LogEntry>,
}

impl EscrowCounter {
    /// A counter starting at `initial`, constrained to `[min, max]`.
    ///
    /// # Panics
    /// Panics if `initial` is outside the bounds or `min > max`.
    pub fn new(initial: i64, min: i64, max: i64) -> Self {
        assert!(min <= max, "escrow bounds inverted");
        assert!((min..=max).contains(&initial), "initial escrow value out of bounds");
        EscrowCounter {
            min,
            max,
            committed: initial,
            low: initial,
            high: initial,
            active: HashMap::new(),
            next_txn: 1,
            read_lock: None,
            log: Vec::new(),
        }
    }

    /// Open a new transaction.
    pub fn begin(&mut self) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.active.insert(id, TxnState::default());
        id
    }

    /// Reserve a commutative update of `delta` within `txn`. Admitted iff
    /// the worst-case watermark stays in bounds; refused updates leave no
    /// trace and may be retried after other transactions resolve.
    pub fn reserve(&mut self, txn: TxnId, delta: i64) -> Result<(), EscrowError> {
        if let Some(holder) = self.read_lock {
            if holder != txn {
                return Err(EscrowError::ReadLocked { holder });
            }
        }
        if !self.active.contains_key(&txn) {
            return Err(EscrowError::UnknownTxn(txn));
        }
        if delta < 0 {
            let worst = self.low + delta;
            if worst < self.min {
                return Err(EscrowError::WouldExceedBounds {
                    delta,
                    watermark: worst,
                    bound: self.min,
                });
            }
            self.low = worst;
        } else {
            let worst = self.high + delta;
            if worst > self.max {
                return Err(EscrowError::WouldExceedBounds {
                    delta,
                    watermark: worst,
                    bound: self.max,
                });
            }
            self.high = worst;
        }
        self.active.get_mut(&txn).expect("checked active above").deltas.push(delta);
        self.log.push(LogEntry { txn, delta, outcome: EntryOutcome::Pending });
        self.check_invariants();
        Ok(())
    }

    /// READ the exact value from within `txn`. Succeeds only when no
    /// *other* transaction has pending operations; on success the caller
    /// holds the read lock until its transaction commits or aborts.
    pub fn read(&mut self, txn: TxnId) -> Result<i64, EscrowError> {
        if !self.active.contains_key(&txn) {
            return Err(EscrowError::UnknownTxn(txn));
        }
        if let Some(holder) = self.read_lock {
            if holder != txn {
                return Err(EscrowError::ReadLocked { holder });
            }
        }
        let pending_others =
            self.active.iter().filter(|(id, st)| **id != txn && !st.deltas.is_empty()).count();
        if pending_others > 0 {
            return Err(EscrowError::ReadWouldBlock { pending_others });
        }
        self.read_lock = Some(txn);
        // The exact value as this txn sees it: committed plus its own
        // pending deltas.
        let own: i64 = self.active[&txn].deltas.iter().sum();
        Ok(self.committed + own)
    }

    /// Commit `txn`: its deltas become permanent. Returns the net change.
    pub fn commit(&mut self, txn: TxnId) -> Result<i64, EscrowError> {
        let st = self.active.remove(&txn).ok_or(EscrowError::UnknownTxn(txn))?;
        let mut net = 0;
        for d in &st.deltas {
            net += d;
            if *d < 0 {
                // The decrement is now certain: the optimistic high must
                // come down to reflect it.
                self.high += d;
            } else {
                self.low += d;
            }
        }
        self.committed += net;
        if self.read_lock == Some(txn) {
            self.read_lock = None;
        }
        self.mark_entries(txn, EntryOutcome::Committed);
        self.check_invariants();
        Ok(net)
    }

    /// Abort `txn`: each logged operation is undone by applying its
    /// inverse (operation logging), releasing the reserved headroom.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), EscrowError> {
        let st = self.active.remove(&txn).ok_or(EscrowError::UnknownTxn(txn))?;
        for d in &st.deltas {
            if *d < 0 {
                self.low -= d;
            } else {
                self.high -= d;
            }
        }
        if self.read_lock == Some(txn) {
            self.read_lock = None;
        }
        self.mark_entries(txn, EntryOutcome::Inverted);
        self.check_invariants();
        Ok(())
    }

    /// The committed value (ignores pending transactions).
    pub fn committed(&self) -> i64 {
        self.committed
    }

    /// The pessimistic low watermark.
    pub fn low_watermark(&self) -> i64 {
        self.low
    }

    /// The optimistic high watermark.
    pub fn high_watermark(&self) -> i64 {
        self.high
    }

    /// Number of open transactions.
    pub fn active_txns(&self) -> usize {
        self.active.len()
    }

    /// The exact value, available only when nothing is pending.
    pub fn value_if_quiesced(&self) -> Option<i64> {
        if self.active.values().all(|s| s.deltas.is_empty()) {
            Some(self.committed)
        } else {
            None
        }
    }

    /// The full operation log, oldest first.
    pub fn operation_log(&self) -> &[LogEntry] {
        &self.log
    }

    fn mark_entries(&mut self, txn: TxnId, outcome: EntryOutcome) {
        for e in self.log.iter_mut().filter(|e| e.txn == txn) {
            if e.outcome == EntryOutcome::Pending {
                e.outcome = outcome;
            }
        }
    }

    fn check_invariants(&self) {
        debug_assert!(self.min <= self.low, "low watermark under min");
        debug_assert!(self.high <= self.max, "high watermark over max");
        debug_assert!(self.low <= self.committed, "committed below low");
        debug_assert!(self.committed <= self.high, "committed above high");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_commutative_updates_interleave() {
        let mut c = EscrowCounter::new(100, 0, 1000);
        let t1 = c.begin();
        let t2 = c.begin();
        c.reserve(t1, -10).unwrap();
        c.reserve(t2, 25).unwrap();
        c.reserve(t1, -5).unwrap();
        assert_eq!(c.commit(t1).unwrap(), -15);
        assert_eq!(c.commit(t2).unwrap(), 25);
        assert_eq!(c.committed(), 110);
        assert_eq!(c.value_if_quiesced(), Some(110));
    }

    #[test]
    fn worst_case_pending_blocks_risky_decrements() {
        let mut c = EscrowCounter::new(100, 0, 1000);
        let t1 = c.begin();
        let t2 = c.begin();
        c.reserve(t1, -80).unwrap();
        // t2's -80 MIGHT overdraw if t1 commits: refused now.
        let err = c.reserve(t2, -80).unwrap_err();
        assert!(matches!(err, EscrowError::WouldExceedBounds { bound: 0, .. }));
        // After t1 aborts, the headroom returns and t2 succeeds.
        c.abort(t1).unwrap();
        c.reserve(t2, -80).unwrap();
        c.commit(t2).unwrap();
        assert_eq!(c.committed(), 20);
    }

    #[test]
    fn increments_are_bounded_by_max() {
        let mut c = EscrowCounter::new(90, 0, 100);
        let t1 = c.begin();
        let t2 = c.begin();
        c.reserve(t1, 8).unwrap();
        let err = c.reserve(t2, 5).unwrap_err();
        assert!(matches!(err, EscrowError::WouldExceedBounds { bound: 100, .. }));
        c.commit(t1).unwrap();
        assert_eq!(c.committed(), 98);
    }

    #[test]
    fn abort_applies_the_inverse_not_a_before_image() {
        let mut c = EscrowCounter::new(100, 0, 1000);
        let t1 = c.begin();
        let t2 = c.begin();
        c.reserve(t1, -10).unwrap();
        c.reserve(t2, 40).unwrap();
        c.commit(t2).unwrap(); // value now reflects t2's +40
        c.abort(t1).unwrap(); // undoes only t1's -10
        assert_eq!(c.committed(), 140);
        let inverted: Vec<_> =
            c.operation_log().iter().filter(|e| e.outcome == EntryOutcome::Inverted).collect();
        assert_eq!(inverted.len(), 1);
        assert_eq!(inverted[0].delta, -10);
    }

    #[test]
    fn read_blocks_on_pending_others_and_locks_out_writers() {
        let mut c = EscrowCounter::new(100, 0, 1000);
        let t1 = c.begin();
        let t2 = c.begin();
        c.reserve(t1, -10).unwrap();
        // t2's READ blocks while t1 has pending work.
        assert!(matches!(c.read(t2), Err(EscrowError::ReadWouldBlock { pending_others: 1 })));
        c.commit(t1).unwrap();
        // Now the READ succeeds and takes the lock.
        assert_eq!(c.read(t2).unwrap(), 90);
        let t3 = c.begin();
        assert!(matches!(c.reserve(t3, -1), Err(EscrowError::ReadLocked { .. })));
        // The reader itself may continue operating, and sees its own ops.
        c.reserve(t2, -40).unwrap();
        assert_eq!(c.read(t2).unwrap(), 50);
        c.commit(t2).unwrap();
        // Lock released: t3 can proceed.
        c.reserve(t3, -1).unwrap();
        c.commit(t3).unwrap();
        assert_eq!(c.committed(), 49);
    }

    #[test]
    fn unknown_txns_are_rejected() {
        let mut c = EscrowCounter::new(0, 0, 10);
        let t = c.begin();
        c.commit(t).unwrap();
        assert!(matches!(c.reserve(t, 1), Err(EscrowError::UnknownTxn(_))));
        assert!(matches!(c.commit(t), Err(EscrowError::UnknownTxn(_))));
        assert!(matches!(c.abort(t), Err(EscrowError::UnknownTxn(_))));
        assert!(matches!(c.read(t), Err(EscrowError::UnknownTxn(_))));
    }

    #[test]
    fn operation_log_reads_like_the_sidebar() {
        let mut c = EscrowCounter::new(100, 0, 1000);
        let t1 = c.begin();
        c.reserve(t1, -10).unwrap(); // "Transaction T1 subtracted $10"
        c.commit(t1).unwrap();
        let log = c.operation_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].delta, -10);
        assert_eq!(log[0].outcome, EntryOutcome::Committed);
        assert_eq!(log[0].txn.to_string(), "T1");
    }

    #[test]
    fn watermarks_track_worst_cases() {
        let mut c = EscrowCounter::new(50, 0, 100);
        let t1 = c.begin();
        let t2 = c.begin();
        c.reserve(t1, -20).unwrap();
        c.reserve(t2, 30).unwrap();
        assert_eq!(c.low_watermark(), 30);
        assert_eq!(c.high_watermark(), 80);
        assert_eq!(c.committed(), 50);
        assert_eq!(c.value_if_quiesced(), None);
        c.commit(t1).unwrap();
        c.abort(t2).unwrap();
        assert_eq!(c.low_watermark(), 30);
        assert_eq!(c.high_watermark(), 30);
        assert_eq!(c.value_if_quiesced(), Some(30));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn construction_validates_initial_value() {
        let _ = EscrowCounter::new(-1, 0, 10);
    }
}
