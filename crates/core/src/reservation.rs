//! The "Seat Reservation" pattern (§7.3).
//!
//! Online selling of *non-fungible* resources moves the transaction
//! "beyond the trust boundary" — an untrusted buyer could hold prime
//! seats in an open transaction indefinitely (and resell them). The
//! pattern bounds that exposure with three explicit states and a timeout:
//!
//! 1. `Available`
//! 2. `PurchasePending { session, expires }` — held by a buyer session
//!    for a bounded period ("typically minutes")
//! 3. `Purchased { buyer }`
//!
//! "Individual database transactions are used to transition from one
//! state to another and to durably enqueue requests to clean up seats
//! abandoned in the 'purchase pending' state." [`SeatMap`] models each
//! transition as an atomic state change and keeps the durable cleanup
//! queue; [`SeatMap::expire`] is the cleanup worker draining it.
//!
//! Time is an abstract `u64` tick so this module stays independent of the
//! simulator; callers feed whatever clock they have (the `sim` crate's
//! microseconds, in our experiments).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Index of a seat in the venue.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SeatId(pub u32);

/// An untrusted buyer session (browser tab, bot, ...).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SessionId(pub u64);

/// A completed purchaser identity.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BuyerId(pub u64);

/// The three states of §7.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeatState {
    /// May be held by anyone.
    Available,
    /// Held by `session` until `expires` (exclusive): if the purchase has
    /// not completed by then, cleanup returns the seat to `Available`.
    PurchasePending {
        /// The holding session.
        session: SessionId,
        /// Tick at which the hold lapses.
        expires: u64,
    },
    /// Sold, with a valid purchase attached (the business rule: a seat is
    /// "available" or "occupied and associated with a valid purchase").
    Purchased {
        /// The purchaser.
        buyer: BuyerId,
    },
}

/// Why a seat transition was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReservationError {
    /// The seat id is outside the venue.
    NoSuchSeat(SeatId),
    /// Hold refused: the seat is pending under another session or sold.
    NotAvailable(SeatId),
    /// Purchase/release refused: the seat is not pending under this
    /// session (wrong session, hold expired and cleaned, or never held).
    NotHeldBySession(SeatId, SessionId),
}

impl fmt::Display for ReservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReservationError::NoSuchSeat(s) => write!(f, "no such seat {s:?}"),
            ReservationError::NotAvailable(s) => write!(f, "seat {s:?} is not available"),
            ReservationError::NotHeldBySession(s, sess) => {
                write!(f, "seat {s:?} is not held by session {sess:?}")
            }
        }
    }
}

impl std::error::Error for ReservationError {}

/// The venue's seats plus the durable cleanup queue.
///
/// ```
/// use quicksand_core::reservation::{BuyerId, SeatId, SeatMap, SessionId};
///
/// let mut venue = SeatMap::new(10);
/// venue.hold(SeatId(0), SessionId(1), 0, 300).unwrap();      // pending
/// venue.purchase(SeatId(0), SessionId(1), BuyerId(7), 60).unwrap();
/// venue.hold(SeatId(1), SessionId(2), 0, 300).unwrap();      // abandoned...
/// assert_eq!(venue.expire(300), vec![SeatId(1)]);            // ...and reclaimed
/// ```
#[derive(Debug, Clone)]
pub struct SeatMap {
    seats: Vec<SeatState>,
    /// Durable cleanup requests: (expiry tick, seat, session). Entries
    /// are enqueued at hold time in the *same transaction* as the state
    /// change; stale entries (seat since purchased or re-held) are
    /// recognized and skipped at drain time.
    cleanup: BinaryHeap<Reverse<(u64, u32, u64)>>,
    holds_placed: u64,
    holds_expired: u64,
    purchases: u64,
}

impl SeatMap {
    /// A venue with `n` seats, all available.
    pub fn new(n: u32) -> Self {
        SeatMap {
            seats: vec![SeatState::Available; n as usize],
            cleanup: BinaryHeap::new(),
            holds_placed: 0,
            holds_expired: 0,
            purchases: 0,
        }
    }

    /// Number of seats in the venue.
    pub fn len(&self) -> usize {
        self.seats.len()
    }

    /// True if the venue has no seats.
    pub fn is_empty(&self) -> bool {
        self.seats.is_empty()
    }

    /// The current state of a seat.
    pub fn state(&self, seat: SeatId) -> Result<SeatState, ReservationError> {
        self.seats.get(seat.0 as usize).copied().ok_or(ReservationError::NoSuchSeat(seat))
    }

    /// Transition `Available → PurchasePending` and durably enqueue the
    /// cleanup request — one atomic "database transaction".
    ///
    /// A session re-holding a seat it already holds refreshes the expiry.
    pub fn hold(
        &mut self,
        seat: SeatId,
        session: SessionId,
        now: u64,
        ttl: u64,
    ) -> Result<(), ReservationError> {
        let slot = self.seats.get_mut(seat.0 as usize).ok_or(ReservationError::NoSuchSeat(seat))?;
        match *slot {
            SeatState::Available => {}
            SeatState::PurchasePending { session: s, expires } if s == session => {
                // Refresh is allowed; fall through to re-hold.
                let _ = expires;
            }
            SeatState::PurchasePending { expires, .. } if expires <= now => {
                // Lapsed but not yet cleaned: treat as available.
            }
            _ => return Err(ReservationError::NotAvailable(seat)),
        }
        let expires = now + ttl;
        *slot = SeatState::PurchasePending { session, expires };
        self.cleanup.push(Reverse((expires, seat.0, session.0)));
        self.holds_placed += 1;
        Ok(())
    }

    /// Transition `PurchasePending → Purchased`, validating the session.
    pub fn purchase(
        &mut self,
        seat: SeatId,
        session: SessionId,
        buyer: BuyerId,
        now: u64,
    ) -> Result<(), ReservationError> {
        let slot = self.seats.get_mut(seat.0 as usize).ok_or(ReservationError::NoSuchSeat(seat))?;
        match *slot {
            SeatState::PurchasePending { session: s, expires } if s == session && expires > now => {
                *slot = SeatState::Purchased { buyer };
                self.purchases += 1;
                Ok(())
            }
            _ => Err(ReservationError::NotHeldBySession(seat, session)),
        }
    }

    /// Transition `PurchasePending → Available` when the buyer reneges
    /// voluntarily (the rollback path of the trusted-agent scheme).
    pub fn release(&mut self, seat: SeatId, session: SessionId) -> Result<(), ReservationError> {
        let slot = self.seats.get_mut(seat.0 as usize).ok_or(ReservationError::NoSuchSeat(seat))?;
        match *slot {
            SeatState::PurchasePending { session: s, .. } if s == session => {
                *slot = SeatState::Available;
                Ok(())
            }
            _ => Err(ReservationError::NotHeldBySession(seat, session)),
        }
    }

    /// Drain the cleanup queue up to `now`: every seat still pending
    /// under a lapsed hold returns to `Available`. Returns the seats
    /// freed. Stale queue entries (purchased meanwhile, re-held with a
    /// fresher expiry, or released) are skipped — the queue is a set of
    /// *requests to look*, not authoritative state.
    pub fn expire(&mut self, now: u64) -> Vec<SeatId> {
        let mut freed = Vec::new();
        while let Some(Reverse((expires, seat, session))) = self.cleanup.peek().copied() {
            if expires > now {
                break;
            }
            self.cleanup.pop();
            let slot = &mut self.seats[seat as usize];
            if let SeatState::PurchasePending { session: s, expires: e } = *slot {
                if s.0 == session && e == expires {
                    *slot = SeatState::Available;
                    self.holds_expired += 1;
                    freed.push(SeatId(seat));
                }
            }
        }
        freed
    }

    /// Count of seats currently in each state:
    /// `(available, pending, purchased)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in &self.seats {
            match s {
                SeatState::Available => counts.0 += 1,
                SeatState::PurchasePending { .. } => counts.1 += 1,
                SeatState::Purchased { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// The business-rule invariant of §7.3: every seat is available,
    /// pending with a bounded (finite) expiry, or purchased with a buyer.
    /// Additionally no pending seat may have lapsed by more than the
    /// cleanup queue can explain. Returns a description of the first
    /// violation found.
    pub fn check_invariant(&self, now: u64, max_cleanup_lag: u64) -> Result<(), String> {
        for (i, s) in self.seats.iter().enumerate() {
            if let SeatState::PurchasePending { expires, .. } = s {
                if now > *expires + max_cleanup_lag {
                    return Err(format!(
                        "seat {i} pending past expiry {expires} at {now} (lag > {max_cleanup_lag})"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Lifetime counters: (holds placed, holds expired by cleanup,
    /// purchases completed).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.holds_placed, self.holds_expired, self.purchases)
    }

    /// The first available seat, if any (buyers want "the best seat":
    /// lowest index = primest seat).
    pub fn best_available(&self) -> Option<SeatId> {
        self.seats.iter().position(|s| matches!(s, SeatState::Available)).map(|i| SeatId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: u64 = 300; // "typically minutes"

    #[test]
    fn happy_path_hold_then_purchase() {
        let mut m = SeatMap::new(4);
        let seat = SeatId(0);
        let sess = SessionId(1);
        m.hold(seat, sess, 0, TTL).unwrap();
        assert!(matches!(m.state(seat).unwrap(), SeatState::PurchasePending { .. }));
        m.purchase(seat, sess, BuyerId(9), 10).unwrap();
        assert_eq!(m.state(seat).unwrap(), SeatState::Purchased { buyer: BuyerId(9) });
        assert_eq!(m.census(), (3, 0, 1));
    }

    #[test]
    fn competing_session_cannot_hold_or_buy_a_pending_seat() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        assert_eq!(
            m.hold(SeatId(0), SessionId(2), 1, TTL),
            Err(ReservationError::NotAvailable(SeatId(0)))
        );
        assert_eq!(
            m.purchase(SeatId(0), SessionId(2), BuyerId(7), 1),
            Err(ReservationError::NotHeldBySession(SeatId(0), SessionId(2)))
        );
    }

    #[test]
    fn lapsed_holds_are_cleaned_and_seat_returns() {
        let mut m = SeatMap::new(2);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        assert!(m.expire(TTL - 1).is_empty());
        let freed = m.expire(TTL);
        assert_eq!(freed, vec![SeatId(0)]);
        assert_eq!(m.state(SeatId(0)).unwrap(), SeatState::Available);
        // A new session can now hold it.
        m.hold(SeatId(0), SessionId(2), TTL + 1, TTL).unwrap();
    }

    #[test]
    fn purchase_after_expiry_is_refused_even_before_cleanup_runs() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        // Cleanup hasn't run, but the hold has lapsed.
        assert!(m.purchase(SeatId(0), SessionId(1), BuyerId(1), TTL).is_err());
    }

    #[test]
    fn lapsed_but_uncleaned_seat_can_be_held_by_newcomer() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        // After lapse, a newcomer takes it without waiting for the worker.
        m.hold(SeatId(0), SessionId(2), TTL, TTL).unwrap();
        // The stale cleanup entry must not free the seat under session 2.
        let freed = m.expire(TTL);
        assert!(freed.is_empty());
        assert!(matches!(
            m.state(SeatId(0)).unwrap(),
            SeatState::PurchasePending { session: SessionId(2), .. }
        ));
    }

    #[test]
    fn refresh_extends_the_hold_and_stale_cleanup_is_skipped() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        m.hold(SeatId(0), SessionId(1), 100, TTL).unwrap(); // expires 400
        let freed = m.expire(300); // original entry lapses; hold refreshed
        assert!(freed.is_empty());
        m.purchase(SeatId(0), SessionId(1), BuyerId(5), 399).unwrap();
    }

    #[test]
    fn voluntary_release_returns_the_seat() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        m.release(SeatId(0), SessionId(1)).unwrap();
        assert_eq!(m.state(SeatId(0)).unwrap(), SeatState::Available);
        // Cleanup entry for the released hold is stale and harmless.
        assert!(m.expire(TTL).is_empty());
    }

    #[test]
    fn purchased_seats_are_never_expired() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        m.purchase(SeatId(0), SessionId(1), BuyerId(2), 10).unwrap();
        assert!(m.expire(u64::MAX).is_empty());
        assert_eq!(m.state(SeatId(0)).unwrap(), SeatState::Purchased { buyer: BuyerId(2) });
    }

    #[test]
    fn invariant_detects_unbounded_pending() {
        let mut m = SeatMap::new(1);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        assert!(m.check_invariant(TTL, 100).is_ok());
        // If cleanup never runs, the invariant flags it.
        assert!(m.check_invariant(TTL + 101, 100).is_err());
        m.expire(TTL + 101);
        assert!(m.check_invariant(TTL + 101, 100).is_ok());
    }

    #[test]
    fn best_available_prefers_prime_seats() {
        let mut m = SeatMap::new(3);
        assert_eq!(m.best_available(), Some(SeatId(0)));
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        assert_eq!(m.best_available(), Some(SeatId(1)));
    }

    #[test]
    fn out_of_range_seats_error() {
        let mut m = SeatMap::new(1);
        assert_eq!(m.state(SeatId(5)), Err(ReservationError::NoSuchSeat(SeatId(5))));
        assert_eq!(
            m.hold(SeatId(5), SessionId(1), 0, TTL),
            Err(ReservationError::NoSuchSeat(SeatId(5)))
        );
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut m = SeatMap::new(2);
        m.hold(SeatId(0), SessionId(1), 0, TTL).unwrap();
        m.hold(SeatId(1), SessionId(2), 0, TTL).unwrap();
        m.purchase(SeatId(0), SessionId(1), BuyerId(1), 5).unwrap();
        m.expire(TTL);
        assert_eq!(m.stats(), (2, 1, 1));
    }
}
