//! The paper-forms workflow (§7.7): "Back to the Future".
//!
//! "In the past, a form would have multiple carbon copies with a printed
//! serial number on top of them. When a purchase-order request was
//! submitted, a copy was kept in the file of the submitter and placed in
//! a folder with the expected date of the response. If the form and its
//! work were not completed by the expected date, the submitter would
//! initiate an inquiry... Even if the work was lost, the purchase-order
//! would be resubmitted without modification to ensure a lack of
//! confusion in the processing of the work."
//!
//! [`PaperTrail`] is the submitter's filing cabinet: it keeps the carbon
//! copy (the form, verbatim), files it under its due date, surfaces
//! overdue forms for resubmission *unmodified*, and retires forms when
//! the response arrives. Pair it with a [`crate::idempotence::DedupTable`]
//! on the responder side and the pre-computer protocol is complete: the
//! serial number "would act as a mechanism to ensure the work was not
//! performed twice."

use std::collections::BTreeMap;

use crate::uniquifier::Uniquifier;

/// The submitter's record of one outstanding form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormRecord<F> {
    /// The printed serial number.
    pub serial: Uniquifier,
    /// The carbon copy — resubmitted byte-for-byte on follow-up.
    pub form: F,
    /// When it was first submitted (caller's clock).
    pub submitted_at: u64,
    /// "The expected date of the response."
    pub due_at: u64,
    /// Submissions so far (1 = the original).
    pub attempts: u32,
}

/// The filing cabinet of outstanding forms.
///
/// ```
/// use quicksand_core::workflow::PaperTrail;
/// use quicksand_core::uniquifier::Uniquifier;
///
/// let mut cabinet = PaperTrail::new(30);
/// let serial = Uniquifier::composite("po", 1001);
/// cabinet.submit(serial, "20 widgets", 0);
/// // No response by the due date: resubmit the carbon copy, unmodified.
/// let inquiry = cabinet.follow_ups(30);
/// assert_eq!(inquiry[0].form, "20 widgets");
/// cabinet.complete(serial, 35);
/// assert_eq!(cabinet.outstanding(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PaperTrail<F> {
    outstanding: BTreeMap<Uniquifier, FormRecord<F>>,
    /// How long to wait for a response before inquiring.
    response_window: u64,
    completed: u64,
    resubmissions: u64,
}

impl<F: Clone> PaperTrail<F> {
    /// A cabinet whose forms come due `response_window` ticks after
    /// (re)submission.
    pub fn new(response_window: u64) -> Self {
        PaperTrail { outstanding: BTreeMap::new(), response_window, completed: 0, resubmissions: 0 }
    }

    /// File the carbon copy of a newly submitted form. Returns `false`
    /// if the serial is already on file (submitting the same form twice
    /// is a bookkeeping error, not a retry — retries go through
    /// [`PaperTrail::follow_ups`]).
    pub fn submit(&mut self, serial: Uniquifier, form: F, now: u64) -> bool {
        if self.outstanding.contains_key(&serial) {
            return false;
        }
        self.outstanding.insert(
            serial,
            FormRecord {
                serial,
                form,
                submitted_at: now,
                due_at: now + self.response_window,
                attempts: 1,
            },
        );
        true
    }

    /// The response arrived: retire the form. Idempotent — late
    /// duplicate responses are fine.
    pub fn complete(&mut self, serial: Uniquifier, _now: u64) -> bool {
        if self.outstanding.remove(&serial).is_some() {
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Every overdue form, ready to resubmit **without modification** —
    /// "you wouldn't change the number of items being ordered as that
    /// may cause confusion." Each returned copy has its due date pushed
    /// out and its attempt count bumped.
    pub fn follow_ups(&mut self, now: u64) -> Vec<FormRecord<F>> {
        let mut due = Vec::new();
        for rec in self.outstanding.values_mut() {
            if rec.due_at <= now {
                rec.attempts += 1;
                rec.due_at = now + self.response_window;
                self.resubmissions += 1;
                due.push(rec.clone());
            }
        }
        due
    }

    /// Forms still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// The record for a serial, if still outstanding.
    pub fn record(&self, serial: Uniquifier) -> Option<&FormRecord<F>> {
        self.outstanding.get(&serial)
    }

    /// Lifetime counters: (completed, resubmissions).
    pub fn stats(&self) -> (u64, u64) {
        (self.completed, self.resubmissions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idempotence::DedupTable;
    use rand::Rng;

    fn serial(n: u64) -> Uniquifier {
        Uniquifier::composite("purchase-order", n)
    }

    #[test]
    fn forms_come_due_and_resubmit_unmodified() {
        let mut trail = PaperTrail::new(10);
        assert!(trail.submit(serial(1), "20 widgets", 0));
        assert!(trail.follow_ups(9).is_empty());
        let due = trail.follow_ups(10);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].form, "20 widgets");
        assert_eq!(due[0].attempts, 2);
        // The due date moved out; not due again immediately.
        assert!(trail.follow_ups(11).is_empty());
        assert_eq!(trail.record(serial(1)).unwrap().due_at, 20);
    }

    #[test]
    fn completion_retires_the_form_idempotently() {
        let mut trail = PaperTrail::new(10);
        trail.submit(serial(1), (), 0);
        assert!(trail.complete(serial(1), 5));
        assert!(!trail.complete(serial(1), 6), "late duplicate response");
        assert_eq!(trail.outstanding(), 0);
        assert_eq!(trail.stats().0, 1);
    }

    #[test]
    fn double_submission_of_a_serial_is_refused() {
        let mut trail = PaperTrail::new(10);
        assert!(trail.submit(serial(1), "a", 0));
        assert!(!trail.submit(serial(1), "b", 1));
        assert_eq!(trail.record(serial(1)).unwrap().form, "a");
    }

    /// The full §7.7 protocol over a lossy channel: submitter files and
    /// follows up; responder dedups on the serial. Every form is
    /// eventually processed exactly once.
    #[test]
    fn lossy_channel_end_to_end() {
        let mut rng = sim::SimRng::new(42);
        let mut trail = PaperTrail::new(5);
        let mut responder: DedupTable<u64> = DedupTable::new(1024);
        let mut processed = 0u64;
        let forms = 50u64;
        for n in 0..forms {
            trail.submit(serial(n), n, n);
        }
        for now in 0..400u64 {
            // Everything due (or fresh) goes over the 40%-lossy channel.
            let mut to_send: Vec<FormRecord<u64>> = trail.follow_ups(now);
            if now < forms {
                if let Some(rec) = trail.record(serial(now)) {
                    to_send.push(rec.clone());
                }
            }
            for rec in to_send {
                if rng.gen_bool(0.6) {
                    // Delivered: responder executes at most once and the
                    // response (also lossy) retires the form.
                    let out = responder.execute(rec.serial, || {
                        processed += 1;
                        rec.form
                    });
                    let _ = out;
                    if rng.gen_bool(0.6) {
                        trail.complete(rec.serial, now);
                    }
                }
            }
        }
        assert_eq!(processed, forms, "every form processed exactly once");
        assert_eq!(trail.outstanding(), 0, "every response eventually arrived");
        let (completed, resubs) = trail.stats();
        assert_eq!(completed, forms);
        assert!(resubs > 0, "the lossy channel must have forced inquiries");
    }
}
