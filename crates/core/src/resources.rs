//! Resource management under asynchrony (§7): over-booking versus
//! over-provisioning, fungibility, and the return of redundantly
//! allocated resources.
//!
//! "Since these replicas will sometimes be incommunicado, we must
//! consider the policy used for allocating resources while not in
//! communication" (§7.1). Two policies:
//!
//! - [`ProvisionedReplica`] — **over-provisioning**: each replica owns a
//!   fixed quota it can never exceed, so it never promises what it cannot
//!   deliver — but unsold quota strands at replicas that happen to see
//!   less demand, and business is declined that the system as a whole
//!   could have served.
//! - [`OverbookedReplica`] — **over-booking**: replicas allocate against
//!   their best knowledge of *total* sales, optionally past nominal
//!   capacity by a booking factor (airlines' 15%). More business is
//!   accepted; occasionally commitments exceed reality and
//!   [`settle`] computes who must receive an apology.
//!
//! [`rebalance`] implements the paper's "you can dynamically slide
//! between these positions (while you are connected)": unused quota moves
//! toward the replicas that have been declining demand.
//!
//! [`Fungibility`] captures §7.4: a pork-belly-style fungible pool can
//! absorb a redundant allocation by simply returning the count, while a
//! unique resource (the one Gutenberg bible) turns the same mistake into
//! an apology.

use std::collections::BTreeMap;

use crate::uniquifier::Uniquifier;

/// Whether a resource is interchangeable (§7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fungibility {
    /// "A king sized non-smoking room": any unit satisfies the request,
    /// so redundant grants are silently returned to the pool.
    Fungible,
    /// "Room 301 at the Hilton" / the Gutenberg bible: a specific item;
    /// a redundant grant means two promises of the same thing — apology.
    Unique,
}

/// The outcome of one allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocOutcome {
    /// The replica granted the request.
    Granted,
    /// The replica declined: by policy it could not promise the goods.
    Declined {
        /// Why (for the experiment report).
        reason: String,
    },
    /// This uniquifier was already granted here — retry collapsed.
    Duplicate,
}

impl AllocOutcome {
    /// True for a fresh grant.
    pub fn granted(&self) -> bool {
        matches!(self, AllocOutcome::Granted)
    }
}

/// A grant that turned out to be redundant once replicas compared notes:
/// the same uniquifier was granted at two replicas (§7.5). For fungible
/// goods the quantity goes back in the pool; for unique goods somebody
/// gets an apology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateGrant {
    /// The doubly-granted unit of work.
    pub id: Uniquifier,
    /// The replica whose grant stands.
    pub kept_at: u32,
    /// The replica whose grant is redundant.
    pub redundant_at: u32,
    /// Quantity redundantly allocated.
    pub qty: u64,
}

// ---------------------------------------------------------------------
// Over-provisioning
// ---------------------------------------------------------------------

/// A replica under over-provisioning: it owns `quota` units outright and
/// can never allocate beyond them.
#[derive(Debug, Clone)]
pub struct ProvisionedReplica {
    /// This replica's id (for reports and duplicate attribution).
    pub replica: u32,
    quota: u64,
    used: u64,
    grants: BTreeMap<Uniquifier, u64>,
    declined: u64,
}

impl ProvisionedReplica {
    /// A replica owning `quota` units.
    pub fn new(replica: u32, quota: u64) -> Self {
        ProvisionedReplica { replica, quota, used: 0, grants: BTreeMap::new(), declined: 0 }
    }

    /// Request `qty` units for the uniquely identified unit of work.
    pub fn try_allocate(&mut self, id: Uniquifier, qty: u64) -> AllocOutcome {
        if self.grants.contains_key(&id) {
            return AllocOutcome::Duplicate;
        }
        if self.used + qty > self.quota {
            self.declined += 1;
            return AllocOutcome::Declined {
                reason: format!(
                    "quota exhausted: {} used of {} (requested {qty})",
                    self.used, self.quota
                ),
            };
        }
        self.used += qty;
        self.grants.insert(id, qty);
        AllocOutcome::Granted
    }

    /// Return a previous grant to the pool (cancellation / compensation).
    /// Returns the quantity released, or `None` if the id was unknown.
    pub fn release(&mut self, id: Uniquifier) -> Option<u64> {
        let qty = self.grants.remove(&id)?;
        self.used -= qty;
        Some(qty)
    }

    /// Units still available at this replica.
    pub fn remaining(&self) -> u64 {
        self.quota - self.used
    }

    /// Units allocated at this replica.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// This replica's quota.
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// Requests declined because the quota was exhausted.
    pub fn declined_count(&self) -> u64 {
        self.declined
    }

    /// Move `qty` of *unused* quota to another replica. Used while
    /// connected to slide toward where demand is (§7.1). Fails (returns
    /// `false`) if this replica doesn't have that much headroom.
    pub fn transfer_quota(&mut self, to: &mut ProvisionedReplica, qty: u64) -> bool {
        if self.remaining() < qty {
            return false;
        }
        self.quota -= qty;
        to.quota += qty;
        true
    }
}

/// Slide unused quota toward demand (§7.1's dynamic position): each
/// replica's share of the total *unused* quota is reset proportionally to
/// its recent declines (replicas that declined more get more headroom).
/// Call while replicas are "connected"; between calls they operate
/// independently. Resets decline counters.
pub fn rebalance(replicas: &mut [ProvisionedReplica]) {
    if replicas.len() < 2 {
        return;
    }
    let total_unused: u64 = replicas.iter().map(|r| r.remaining()).sum();
    let total_declines: u64 = replicas.iter().map(|r| r.declined).sum();
    let n = replicas.len() as u64;
    // Target unused share: proportional to declines, uniform when no one
    // declined.
    let mut targets: Vec<u64> = if total_declines == 0 {
        let base = total_unused / n;
        let mut t = vec![base; replicas.len()];
        // Distribute the remainder deterministically.
        let mut rem = total_unused - base * n;
        for slot in t.iter_mut() {
            if rem == 0 {
                break;
            }
            *slot += 1;
            rem -= 1;
        }
        t
    } else {
        let mut t: Vec<u64> =
            replicas.iter().map(|r| total_unused * r.declined / total_declines).collect();
        let assigned: u64 = t.iter().sum();
        let mut rem = total_unused - assigned;
        for slot in t.iter_mut() {
            if rem == 0 {
                break;
            }
            *slot += 1;
            rem -= 1;
        }
        t
    };
    // Set each quota to used + target headroom.
    for (r, target) in replicas.iter_mut().zip(targets.drain(..)) {
        r.quota = r.used + target;
        r.declined = 0;
    }
}

// ---------------------------------------------------------------------
// Over-booking
// ---------------------------------------------------------------------

/// A replica under over-booking: all replicas share one nominal capacity;
/// each admits sales whenever *its current knowledge* of total sales,
/// plus the request, fits under `capacity × booking_factor`.
#[derive(Debug, Clone)]
pub struct OverbookedReplica {
    /// This replica's id.
    pub replica: u32,
    capacity: u64,
    booking_factor: f64,
    /// Grants made here.
    local: BTreeMap<Uniquifier, u64>,
    /// Grants learned from other replicas (id → qty).
    known_remote: BTreeMap<Uniquifier, u64>,
    /// Cached sums of the two maps (kept in lockstep so admission is
    /// O(log n) instead of re-summing on every request).
    local_total: u64,
    remote_total: u64,
    declined: u64,
}

impl OverbookedReplica {
    /// A replica selling against shared `capacity`, willing to book up to
    /// `capacity * booking_factor` (1.0 = never knowingly oversell;
    /// 1.15 = the airline's 15%).
    pub fn new(replica: u32, capacity: u64, booking_factor: f64) -> Self {
        assert!(booking_factor >= 1.0, "booking factor below 1.0 strands capacity");
        OverbookedReplica {
            replica,
            capacity,
            booking_factor,
            local: BTreeMap::new(),
            known_remote: BTreeMap::new(),
            local_total: 0,
            remote_total: 0,
            declined: 0,
        }
    }

    /// Total sales this replica *knows about* (its own plus learned).
    pub fn known_sold(&self) -> u64 {
        debug_assert_eq!(self.local_total, self.local.values().sum::<u64>());
        debug_assert_eq!(self.remote_total, self.known_remote.values().sum::<u64>());
        self.local_total + self.remote_total
    }

    /// The booking limit this replica honours. Rounded to the nearest
    /// unit so `100 × 1.15` is 115 despite binary-float representation.
    pub fn booking_limit(&self) -> u64 {
        (self.capacity as f64 * self.booking_factor).round() as u64
    }

    /// Request `qty` units for the uniquely identified unit of work.
    pub fn try_allocate(&mut self, id: Uniquifier, qty: u64) -> AllocOutcome {
        if self.local.contains_key(&id) || self.known_remote.contains_key(&id) {
            return AllocOutcome::Duplicate;
        }
        if self.known_sold() + qty > self.booking_limit() {
            self.declined += 1;
            return AllocOutcome::Declined {
                reason: format!(
                    "booking limit reached: knows {} sold of limit {}",
                    self.known_sold(),
                    self.booking_limit()
                ),
            };
        }
        self.local.insert(id, qty);
        self.local_total += qty;
        AllocOutcome::Granted
    }

    /// Exchange knowledge with another replica (anti-entropy). Also
    /// detects grants made redundantly at both (same uniquifier sold
    /// twice, §7.5); the lower replica id keeps the sale.
    pub fn sync(&mut self, other: &mut OverbookedReplica) -> Vec<DuplicateGrant> {
        let mut dups = Vec::new();
        // Detect double-grants before merging knowledge.
        for (id, qty) in &self.local {
            if other.local.contains_key(id) {
                let (kept_at, redundant_at) = if self.replica <= other.replica {
                    (self.replica, other.replica)
                } else {
                    (other.replica, self.replica)
                };
                dups.push(DuplicateGrant { id: *id, kept_at, redundant_at, qty: *qty });
            }
        }
        // The redundant copy is removed from its holder's local grants;
        // totals shrink by whatever that holder had actually recorded.
        for d in &dups {
            if d.redundant_at == self.replica {
                if let Some(q) = self.local.remove(&d.id) {
                    self.local_total -= q;
                }
            } else if let Some(q) = other.local.remove(&d.id) {
                other.local_total -= q;
            }
        }
        // Merge each other's local + remote knowledge.
        for (id, qty) in other.local.iter().chain(other.known_remote.iter()) {
            if !self.local.contains_key(id) && self.known_remote.insert(*id, *qty).is_none() {
                self.remote_total += qty;
            }
        }
        for (id, qty) in self.local.iter().chain(self.known_remote.iter()) {
            if !other.local.contains_key(id) && other.known_remote.insert(*id, *qty).is_none() {
                other.remote_total += qty;
            }
        }
        dups
    }

    /// Units granted locally at this replica.
    pub fn local_sold(&self) -> u64 {
        self.local_total
    }

    /// Requests declined at this replica.
    pub fn declined_count(&self) -> u64 {
        self.declined
    }

    /// Grant ids and quantities made at this replica (for settlement).
    pub fn local_grants(&self) -> impl Iterator<Item = (Uniquifier, u64)> + '_ {
        self.local.iter().map(|(id, q)| (*id, *q))
    }

    /// Nominal capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// The result of settling an over-booked system against reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Settlement {
    /// Units actually promised across all replicas.
    pub total_sold: u64,
    /// Nominal capacity.
    pub capacity: u64,
    /// Units promised beyond capacity — each one is an apology owed.
    pub oversold: u64,
    /// The grants selected to be bumped, newest uniquifier first
    /// (deterministic; real airlines have their own policies).
    pub bumped: Vec<(Uniquifier, u64)>,
}

/// Settle an over-booked system: after full knowledge exchange, compare
/// total promises against capacity and choose which grants to bump.
pub fn settle(replicas: &[OverbookedReplica]) -> Settlement {
    let capacity = replicas.first().map(|r| r.capacity).unwrap_or(0);
    let mut all: BTreeMap<Uniquifier, u64> = BTreeMap::new();
    for r in replicas {
        for (id, qty) in r.local_grants() {
            all.insert(id, qty);
        }
    }
    let total_sold: u64 = all.values().sum();
    let oversold = total_sold.saturating_sub(capacity);
    let mut bumped = Vec::new();
    if oversold > 0 {
        let mut to_shed = oversold;
        for (id, qty) in all.iter().rev() {
            if to_shed == 0 {
                break;
            }
            let shed = (*qty).min(to_shed);
            bumped.push((*id, shed));
            to_shed -= shed;
        }
    }
    Settlement { total_sold, capacity, oversold, bumped }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> Uniquifier {
        Uniquifier::from_parts(3, n)
    }

    #[test]
    fn provisioned_replica_never_exceeds_quota() {
        let mut r = ProvisionedReplica::new(0, 10);
        assert!(r.try_allocate(id(1), 6).granted());
        assert!(r.try_allocate(id(2), 4).granted());
        assert!(matches!(r.try_allocate(id(3), 1), AllocOutcome::Declined { .. }));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.declined_count(), 1);
    }

    #[test]
    fn provisioned_retry_is_duplicate_not_double_spend() {
        let mut r = ProvisionedReplica::new(0, 10);
        assert!(r.try_allocate(id(1), 6).granted());
        assert_eq!(r.try_allocate(id(1), 6), AllocOutcome::Duplicate);
        assert_eq!(r.used(), 6);
    }

    #[test]
    fn release_returns_quantity_to_quota() {
        let mut r = ProvisionedReplica::new(0, 10);
        r.try_allocate(id(1), 6);
        assert_eq!(r.release(id(1)), Some(6));
        assert_eq!(r.release(id(1)), None);
        assert_eq!(r.remaining(), 10);
    }

    #[test]
    fn quota_transfer_moves_headroom() {
        let mut a = ProvisionedReplica::new(0, 10);
        let mut b = ProvisionedReplica::new(1, 10);
        a.try_allocate(id(1), 8);
        assert!(!a.transfer_quota(&mut b, 5)); // only 2 unused
        assert!(a.transfer_quota(&mut b, 2));
        assert_eq!(a.quota(), 8);
        assert_eq!(b.quota(), 12);
        assert_eq!(a.remaining(), 0);
    }

    #[test]
    fn rebalance_moves_unused_quota_toward_declines() {
        let mut rs = vec![ProvisionedReplica::new(0, 500), ProvisionedReplica::new(1, 500)];
        // Replica 0 sees all the demand and runs dry.
        for i in 0..500 {
            assert!(rs[0].try_allocate(id(i), 1).granted());
        }
        for i in 500..600 {
            assert!(!rs[0].try_allocate(id(i), 1).granted());
        }
        rebalance(&mut rs);
        // All 500 unused units now sit with replica 0 (it had all declines).
        assert_eq!(rs[0].remaining(), 500);
        assert_eq!(rs[1].remaining(), 0);
        assert_eq!(rs[0].quota() + rs[1].quota(), 1000);
    }

    #[test]
    fn rebalance_splits_evenly_without_demand_signal() {
        let mut rs = vec![ProvisionedReplica::new(0, 900), ProvisionedReplica::new(1, 100)];
        rebalance(&mut rs);
        assert_eq!(rs[0].remaining(), 500);
        assert_eq!(rs[1].remaining(), 500);
    }

    #[test]
    fn overbooked_replicas_can_jointly_oversell_while_disconnected() {
        let mut a = OverbookedReplica::new(0, 100, 1.0);
        let mut b = OverbookedReplica::new(1, 100, 1.0);
        for i in 0..80 {
            assert!(a.try_allocate(id(i), 1).granted());
        }
        for i in 100..180 {
            assert!(b.try_allocate(id(i), 1).granted());
        }
        // Each sold 80 against capacity 100 — locally fine, jointly 160.
        let s = settle(&[a.clone(), b.clone()]);
        assert_eq!(s.total_sold, 160);
        assert_eq!(s.oversold, 60);
        assert_eq!(s.bumped.iter().map(|(_, q)| q).sum::<u64>(), 60);
    }

    #[test]
    fn sync_stops_further_overselling() {
        let mut a = OverbookedReplica::new(0, 100, 1.0);
        let mut b = OverbookedReplica::new(1, 100, 1.0);
        for i in 0..60 {
            a.try_allocate(id(i), 1);
        }
        for i in 100..160 {
            b.try_allocate(id(i), 1);
        }
        a.sync(&mut b);
        // Both now know 120 are sold; capacity 100 — everything declines.
        assert!(!a.try_allocate(id(999), 1).granted());
        assert!(!b.try_allocate(id(998), 1).granted());
        assert_eq!(a.known_sold(), 120);
        assert_eq!(b.known_sold(), 120);
    }

    #[test]
    fn booking_factor_permits_deliberate_overbooking() {
        let mut a = OverbookedReplica::new(0, 100, 1.15);
        for i in 0..115 {
            assert!(a.try_allocate(id(i), 1).granted(), "i={i}");
        }
        assert!(!a.try_allocate(id(200), 1).granted());
        let s = settle(&[a]);
        assert_eq!(s.oversold, 15);
    }

    #[test]
    fn sync_detects_double_grants_and_keeps_lowest_replica() {
        let mut a = OverbookedReplica::new(0, 100, 1.0);
        let mut b = OverbookedReplica::new(1, 100, 1.0);
        // The same purchase order (same uniquifier) reached both replicas.
        a.try_allocate(id(7), 3);
        b.try_allocate(id(7), 3);
        let dups = a.sync(&mut b);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].kept_at, 0);
        assert_eq!(dups[0].redundant_at, 1);
        assert_eq!(dups[0].qty, 3);
        // Only one copy counts after reconciliation.
        assert_eq!(a.known_sold(), 3);
        assert_eq!(b.known_sold(), 3);
        let s = settle(&[a, b]);
        assert_eq!(s.total_sold, 3);
    }

    #[test]
    fn duplicate_retry_at_same_replica_is_collapsed() {
        let mut a = OverbookedReplica::new(0, 100, 1.0);
        assert!(a.try_allocate(id(1), 5).granted());
        assert_eq!(a.try_allocate(id(1), 5), AllocOutcome::Duplicate);
        assert_eq!(a.local_sold(), 5);
    }

    #[test]
    fn settlement_with_headroom_bumps_nobody() {
        let mut a = OverbookedReplica::new(0, 100, 1.0);
        a.try_allocate(id(1), 10);
        let s = settle(&[a]);
        assert_eq!(s.oversold, 0);
        assert!(s.bumped.is_empty());
    }
}
