//! Idempotent request processing (§2.1, §2.4, §5.4).
//!
//! "To be robust, these incoming requests are retried by their source...
//! The fault tolerant server system had better make this work idempotent
//! or the retries would occasionally result in duplicative work." (§2.1)
//!
//! [`DedupTable`] is the server-side half: a memo of every uniquifier the
//! replica has processed, together with the response it produced, so a
//! retry is answered from memory instead of re-executing the business
//! impact. [`EffectLedger`] is the cross-replica half (§5.4, §7.5): when
//! "two replicas get overly enthusiastic about the incoming purchase
//! order and each schedule a shipment", merging their ledgers identifies
//! the redundant side effect so it can be compensated.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use crate::uniquifier::Uniquifier;

/// Whether a call through [`DedupTable::execute`] actually ran the work
/// or was collapsed onto a previous execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<R> {
    /// The work ran; this is its fresh response.
    Executed(R),
    /// The uniquifier had been seen; the remembered response is returned
    /// and the work was *not* re-run.
    Duplicate(R),
}

impl<R> Outcome<R> {
    /// The response, however it was obtained.
    pub fn into_response(self) -> R {
        match self {
            Outcome::Executed(r) | Outcome::Duplicate(r) => r,
        }
    }

    /// True if the work actually executed on this call.
    pub fn executed(&self) -> bool {
        matches!(self, Outcome::Executed(_))
    }
}

/// A bounded memo of processed requests: uniquifier → remembered response.
///
/// The bound models reality: no server remembers requests forever. Entries
/// are evicted FIFO once `capacity` is exceeded; an evicted entry means a
/// sufficiently late retry *will* re-execute — which is why the paper
/// pushes idempotence into the business operations themselves rather than
/// relying purely on transport-level dedup.
#[derive(Debug, Clone)]
pub struct DedupTable<R> {
    seen: HashMap<Uniquifier, R>,
    order: VecDeque<Uniquifier>,
    capacity: usize,
    executed: u64,
    collapsed: u64,
}

impl<R: Clone> DedupTable<R> {
    /// A table remembering at most `capacity` responses.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a dedup table must remember something");
        DedupTable {
            seen: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            executed: 0,
            collapsed: 0,
        }
    }

    /// Run `work` at most once per uniquifier: on first sight execute and
    /// remember the response; on a retry return the remembered response.
    pub fn execute<F: FnOnce() -> R>(&mut self, id: Uniquifier, work: F) -> Outcome<R> {
        match self.seen.entry(id) {
            Entry::Occupied(e) => {
                self.collapsed += 1;
                Outcome::Duplicate(e.get().clone())
            }
            Entry::Vacant(e) => {
                let r = work();
                e.insert(r.clone());
                self.order.push_back(id);
                self.executed += 1;
                if self.order.len() > self.capacity {
                    if let Some(old) = self.order.pop_front() {
                        self.seen.remove(&old);
                    }
                }
                Outcome::Executed(r)
            }
        }
    }

    /// Record a response processed elsewhere (e.g. learned during
    /// anti-entropy) without executing anything locally.
    pub fn remember(&mut self, id: Uniquifier, response: R) {
        if self.seen.insert(id, response).is_none() {
            self.order.push_back(id);
            if self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.seen.remove(&old);
                }
            }
        }
    }

    /// The remembered response for `id`, if still in the window.
    pub fn recall(&self, id: Uniquifier) -> Option<&R> {
        self.seen.get(&id)
    }

    /// True if `id` is remembered.
    pub fn contains(&self, id: Uniquifier) -> bool {
        self.seen.contains_key(&id)
    }

    /// Number of remembered entries.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if nothing is remembered.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// How many calls actually executed work.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// How many calls were collapsed onto a previous execution.
    pub fn collapsed_count(&self) -> u64 {
        self.collapsed
    }
}

/// Identifies the replica that performed a side effect.
pub type ReplicaName = &'static str;

/// A record that a replica performed the side effect for a unit of work —
/// scheduled the shipment, set aside the room, cleared the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Effect {
    /// The unit of work this effect belongs to.
    pub id: Uniquifier,
    /// Which replica performed it.
    pub replica: ReplicaName,
    /// Domain description ("scheduled shipment", "allocated room").
    pub what: String,
}

/// A redundant side effect discovered during reconciliation: the same
/// unit of work produced effects on two replicas; `kept` is the canonical
/// one (lowest replica name, deterministically) and `redundant` must be
/// compensated — returned to the pool if fungible, apologized for if not
/// (§7.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedundantEffect {
    /// The effect that stands.
    pub kept: Effect,
    /// The effect that must be undone or apologized for.
    pub redundant: Effect,
}

/// Per-replica ledger of performed side effects, merged during
/// anti-entropy to detect "irrational exuberance on the part of the
/// replicas" (§5.4).
#[derive(Debug, Clone, Default)]
pub struct EffectLedger {
    effects: HashMap<Uniquifier, Vec<Effect>>,
}

impl EffectLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        EffectLedger::default()
    }

    /// Record that `replica` performed the effect for `id`. Recording the
    /// same (id, replica) twice is idempotent.
    pub fn record(&mut self, id: Uniquifier, replica: ReplicaName, what: impl Into<String>) {
        let entry = self.effects.entry(id).or_default();
        if !entry.iter().any(|e| e.replica == replica) {
            entry.push(Effect { id, replica, what: what.into() });
        }
    }

    /// True if any replica is known to have performed the effect for `id`.
    pub fn performed(&self, id: Uniquifier) -> bool {
        self.effects.contains_key(&id)
    }

    /// Merge knowledge from another replica's ledger and return every
    /// *newly discovered* redundancy: units of work that, with the merged
    /// knowledge, turn out to have been performed by more than one
    /// replica. Each redundancy is reported once — subsequent merges of
    /// the same information report nothing new.
    pub fn merge(&mut self, other: &EffectLedger) -> Vec<RedundantEffect> {
        let mut found = Vec::new();
        for (id, their_effects) in &other.effects {
            let ours = self.effects.entry(*id).or_default();
            for theirs in their_effects {
                if !ours.iter().any(|e| e.replica == theirs.replica) {
                    ours.push(theirs.clone());
                }
            }
            if ours.len() > 1 {
                // Canonical keeper: lowest replica name; everything else
                // is redundant. Report only redundancies not yet reported.
                ours.sort_by_key(|e| e.replica);
                let kept = ours[0].clone();
                for r in ours[1..].iter() {
                    if !r.what.ends_with(" [compensated]") {
                        found.push(RedundantEffect { kept: kept.clone(), redundant: r.clone() });
                    }
                }
                for r in ours[1..].iter_mut() {
                    if !r.what.ends_with(" [compensated]") {
                        r.what.push_str(" [compensated]");
                    }
                }
            }
        }
        found
    }

    /// Total number of distinct units of work with a recorded effect.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// True if no effects are recorded.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> Uniquifier {
        Uniquifier::from_parts(0, n)
    }

    #[test]
    fn retries_collapse_onto_first_execution() {
        let mut t = DedupTable::new(16);
        let mut runs = 0;
        let r1 = t.execute(id(1), || {
            runs += 1;
            "shipped"
        });
        assert_eq!(r1, Outcome::Executed("shipped"));
        let r2 = t.execute(id(1), || {
            runs += 1;
            "shipped-again"
        });
        assert_eq!(r2, Outcome::Duplicate("shipped"));
        assert_eq!(runs, 1);
        assert_eq!(t.executed_count(), 1);
        assert_eq!(t.collapsed_count(), 1);
    }

    #[test]
    fn distinct_ids_each_execute() {
        let mut t = DedupTable::new(16);
        assert!(t.execute(id(1), || 1).executed());
        assert!(t.execute(id(2), || 2).executed());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eviction_reopens_the_duplicate_window() {
        let mut t = DedupTable::new(2);
        t.execute(id(1), || ());
        t.execute(id(2), || ());
        t.execute(id(3), || ()); // evicts id(1)
        assert!(!t.contains(id(1)));
        assert!(t.contains(id(2)) && t.contains(id(3)));
        // A very late retry of id(1) re-executes — the window is honest.
        assert!(t.execute(id(1), || ()).executed());
    }

    #[test]
    fn remember_and_recall_share_knowledge_without_execution() {
        let mut t: DedupTable<&str> = DedupTable::new(4);
        t.remember(id(7), "done-elsewhere");
        assert_eq!(t.recall(id(7)), Some(&"done-elsewhere"));
        assert_eq!(t.execute(id(7), || "should-not-run"), Outcome::Duplicate("done-elsewhere"));
    }

    #[test]
    fn effect_ledger_detects_duplicate_shipments_once() {
        let mut a = EffectLedger::new();
        let mut b = EffectLedger::new();
        a.record(id(1), "replica-a", "scheduled shipment");
        b.record(id(1), "replica-b", "scheduled shipment");
        b.record(id(2), "replica-b", "scheduled shipment");

        let dups = a.merge(&b);
        assert_eq!(dups.len(), 1);
        assert_eq!(dups[0].kept.replica, "replica-a");
        assert_eq!(dups[0].redundant.replica, "replica-b");
        assert!(a.performed(id(2)));

        // Re-merging the same knowledge reports nothing new.
        assert!(a.merge(&b).is_empty());
    }

    #[test]
    fn effect_ledger_three_replicas_compensates_all_but_one() {
        let mut a = EffectLedger::new();
        let mut b = EffectLedger::new();
        let mut c = EffectLedger::new();
        a.record(id(9), "a", "allocated");
        b.record(id(9), "b", "allocated");
        c.record(id(9), "c", "allocated");
        let d1 = a.merge(&b);
        assert_eq!(d1.len(), 1);
        let d2 = a.merge(&c);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].redundant.replica, "c");
        assert_eq!(d2[0].kept.replica, "a");
    }

    #[test]
    fn effect_ledger_recording_is_idempotent_per_replica() {
        let mut a = EffectLedger::new();
        a.record(id(1), "a", "x");
        a.record(id(1), "a", "x");
        let mut b = EffectLedger::new();
        assert!(b.merge(&a).is_empty());
        assert_eq!(b.len(), 1);
    }
}
