//! Uniquifiers: unique identities for units of work (§2.1, §5.4, §7.5).
//!
//! The paper's single most load-bearing mechanism: every request that
//! enters a loosely-coupled system carries (or is assigned, at ingress) a
//! unique identifier. The uniquifier plays two roles (§5.4):
//!
//! 1. it is **the partitioning key** that keeps a unit of work's data and
//!    behaviour on one node at a time, and
//! 2. it lets every replica **recognize re-executions** of the same
//!    request, collapsing them so the work becomes idempotent.
//!
//! Three ways to obtain one, mirroring the paper:
//!
//! - [`Uniquifier::derived`] hashes the entire request body — the paper's
//!   "MD5 trick" (§2.1). We use a 128-bit FNV-1a instead of MD5: the
//!   requirement is only "with extremely high probability, one-to-one
//!   with a unique incoming request", which any well-distributed 128-bit
//!   hash satisfies, and it keeps the workspace free of crypto deps
//!   (substitution recorded in DESIGN.md).
//! - [`Uniquifier::composite`] builds an id from domain-meaningful parts —
//!   the check number plus bank id plus account number of §6.2, "a
//!   wonderful unique-id".
//! - [`UniquifierSource`] assigns fresh ids at the ingress replica (§5.4),
//!   namespaced by the ingress node so two replicas never mint the same
//!   id.

use std::fmt;

/// A 128-bit unique identifier for a unit of work.
///
/// Ordering is total and arbitrary-but-stable, which is what
/// [`crate::op::OpLog`] uses as its canonical replay order.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uniquifier(u128);

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

impl Uniquifier {
    /// Build from raw halves (for tests and protocol decoding).
    pub const fn from_parts(hi: u64, lo: u64) -> Self {
        Uniquifier(((hi as u128) << 64) | lo as u128)
    }

    /// Build from a raw 128-bit value.
    pub const fn from_raw(v: u128) -> Self {
        Uniquifier(v)
    }

    /// The raw 128-bit value.
    pub const fn as_raw(self) -> u128 {
        self.0
    }

    /// Derive a uniquifier from the bytes of the request itself — the
    /// paper's MD5-hash trick (§2.1). Identical requests (retries) derive
    /// identical ids, which is exactly the point: the server never needs
    /// the client's cooperation to detect a retry.
    pub fn derived(request: &[u8]) -> Self {
        let mut h = FNV128_OFFSET;
        for &b in request {
            h ^= b as u128;
            h = h.wrapping_mul(FNV128_PRIME);
        }
        Uniquifier(h)
    }

    /// Derive from several logical fields without allocating a combined
    /// buffer; fields are length-prefixed so `("ab","c")` and `("a","bc")`
    /// derive different ids.
    pub fn derived_from_fields(fields: &[&[u8]]) -> Self {
        let mut h = FNV128_OFFSET;
        for f in fields {
            for &b in (f.len() as u64).to_le_bytes().iter() {
                h ^= b as u128;
                h = h.wrapping_mul(FNV128_PRIME);
            }
            for &b in *f {
                h ^= b as u128;
                h = h.wrapping_mul(FNV128_PRIME);
            }
        }
        Uniquifier(h)
    }

    /// A domain-meaningful composite id, e.g.
    /// `Uniquifier::composite("bank:1st-national/acct:42", check_number)`
    /// (§6.2: check number + bank id + account number).
    pub fn composite(namespace: &str, seq: u64) -> Self {
        Self::derived_from_fields(&[namespace.as_bytes(), &seq.to_le_bytes()])
    }

    /// Which of `n` partitions this unit of work lives on (§5.4 role 1:
    /// the uniquifier is the partitioning key).
    pub fn partition(self, n: usize) -> usize {
        assert!(n > 0, "partition over zero partitions");
        // Fold the high bits in so composite ids spread well.
        let folded = (self.0 >> 64) as u64 ^ self.0 as u64;
        (folded % n as u64) as usize
    }
}

impl fmt::Debug for Uniquifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uniq:{:032x}", self.0)
    }
}

impl fmt::Display for Uniquifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form for logs and apologies.
        write!(f, "{:016x}", (self.0 >> 64) as u64 ^ self.0 as u64)
    }
}

/// Mints fresh uniquifiers at a system ingress point (§5.4): "assigned at
/// the ingress to the system (i.e. whichever replica first handles the
/// work)".
///
/// Ids are `(ingress_node, counter)` pairs hashed into the 128-bit space,
/// so distinct ingress nodes can mint concurrently without coordination
/// and never collide.
#[derive(Debug, Clone)]
pub struct UniquifierSource {
    ingress_node: u64,
    counter: u64,
}

impl UniquifierSource {
    /// A source for the given ingress node id.
    pub fn new(ingress_node: u64) -> Self {
        UniquifierSource { ingress_node, counter: 0 }
    }

    /// Mint the next id.
    pub fn next_id(&mut self) -> Uniquifier {
        let c = self.counter;
        self.counter += 1;
        Uniquifier::derived_from_fields(&[
            b"ingress",
            &self.ingress_node.to_le_bytes(),
            &c.to_le_bytes(),
        ])
    }

    /// How many ids have been minted.
    pub fn minted(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derived_is_deterministic_and_input_sensitive() {
        let a = Uniquifier::derived(b"GET /cart/42");
        let b = Uniquifier::derived(b"GET /cart/42");
        let c = Uniquifier::derived(b"GET /cart/43");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn field_framing_prevents_concatenation_collisions() {
        let a = Uniquifier::derived_from_fields(&[b"ab", b"c"]);
        let b = Uniquifier::derived_from_fields(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn composite_ids_are_stable_and_distinct_per_seq() {
        let ns = "bank:first/acct:42";
        assert_eq!(Uniquifier::composite(ns, 1001), Uniquifier::composite(ns, 1001));
        assert_ne!(Uniquifier::composite(ns, 1001), Uniquifier::composite(ns, 1002));
        assert_ne!(
            Uniquifier::composite("bank:first/acct:42", 1001),
            Uniquifier::composite("bank:other/acct:42", 1001)
        );
    }

    #[test]
    fn sources_on_different_nodes_never_collide() {
        let mut s1 = UniquifierSource::new(1);
        let mut s2 = UniquifierSource::new(2);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(s1.next_id()));
            assert!(seen.insert(s2.next_id()));
        }
        assert_eq!(s1.minted(), 10_000);
    }

    #[test]
    fn partition_is_stable_and_in_range() {
        let id = Uniquifier::derived(b"some work");
        let p = id.partition(7);
        assert!(p < 7);
        assert_eq!(p, id.partition(7));
    }

    #[test]
    fn partition_spreads_sequential_ids() {
        let mut src = UniquifierSource::new(9);
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[src.next_id().partition(4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let u = Uniquifier::from_parts(0xDEAD, 0xBEEF);
        assert_eq!(u.as_raw(), (0xDEADu128 << 64) | 0xBEEF);
        assert_eq!(Uniquifier::from_raw(u.as_raw()), u);
    }

    #[test]
    fn display_is_short_and_debug_is_full() {
        let u = Uniquifier::from_parts(1, 2);
        assert_eq!(format!("{u}").len(), 16);
        assert!(format!("{u:?}").starts_with("uniq:"));
    }
}
