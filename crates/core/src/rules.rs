//! Probabilistic business rules and the "stomach for risk" (§5.2, §5.5).
//!
//! "If a primary uses asynchronous checkpointing and applies a business
//! rule on the incoming work, it is necessarily a probabilistic rule."
//! (§5.2) This module provides the vocabulary for that reality:
//!
//! - [`BusinessRule`] — a predicate over application state ("don't
//!   overdraw the account", "don't overbook the plane by more than 15%")
//!   that replicas evaluate against whatever *local* knowledge they have.
//! - [`GuaranteeClass`] / [`RiskPolicy`] — the per-operation choice of
//!   §5.5: some operations are cleared on local opinion (a guess), others
//!   "slow down, eat the latency, and make darn sure before promising"
//!   (coordinate). The canonical instance is [`ValueThreshold`]: clear a
//!   check locally under $10,000, coordinate above.

use std::fmt;

/// The verdict of evaluating a rule against some state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleOutcome {
    /// The rule holds on the evaluated state.
    Satisfied,
    /// The rule is violated; the string describes how (it becomes the
    /// apology text if the violation survives reconciliation).
    Violated(String),
}

impl RuleOutcome {
    /// True if the rule held.
    pub fn is_satisfied(&self) -> bool {
        matches!(self, RuleOutcome::Satisfied)
    }
}

/// A business rule over application state `S`.
///
/// Rules are evaluated at two moments: at **admission** (against a
/// replica's local state plus the candidate operation — a guess, §5.7)
/// and at **audit** (against reconciled state — where the "Oh, crap!"
/// moments surface, §5.7).
pub trait BusinessRule<S>: fmt::Debug {
    /// Stable rule name, used for apology attribution and dedup.
    fn name(&self) -> &str;
    /// Evaluate the rule against a state.
    fn check(&self, state: &S) -> RuleOutcome;
}

/// A rule built from a closure: `MinRule::new("no-overdraft", |s| s.balance, 0)`
/// style bounds are the common case in the paper's examples.
pub struct PredicateRule<S> {
    name: String,
    predicate: Box<dyn Fn(&S) -> RuleOutcome>,
}

impl<S> PredicateRule<S> {
    /// Wrap a closure as a named rule.
    pub fn new(name: impl Into<String>, predicate: impl Fn(&S) -> RuleOutcome + 'static) -> Self {
        PredicateRule { name: name.into(), predicate: Box::new(predicate) }
    }

    /// A lower-bound rule on an extracted quantity: violated when the
    /// quantity drops below `min` ("don't overdraw the checking
    /// account").
    pub fn min_bound(
        name: impl Into<String>,
        extract: impl Fn(&S) -> i64 + 'static,
        min: i64,
    ) -> Self {
        let name = name.into();
        let rule_name = name.clone();
        PredicateRule::new(name, move |s| {
            let v = extract(s);
            if v < min {
                RuleOutcome::Violated(format!("{rule_name}: value {v} below minimum {min}"))
            } else {
                RuleOutcome::Satisfied
            }
        })
    }

    /// An upper-bound rule: violated when the quantity exceeds `max`
    /// ("don't overbook the airplane by more than 15%").
    pub fn max_bound(
        name: impl Into<String>,
        extract: impl Fn(&S) -> i64 + 'static,
        max: i64,
    ) -> Self {
        let name = name.into();
        let rule_name = name.clone();
        PredicateRule::new(name, move |s| {
            let v = extract(s);
            if v > max {
                RuleOutcome::Violated(format!("{rule_name}: value {v} above maximum {max}"))
            } else {
                RuleOutcome::Satisfied
            }
        })
    }
}

impl<S> fmt::Debug for PredicateRule<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredicateRule({})", self.name)
    }
}

impl<S> BusinessRule<S> for PredicateRule<S> {
    fn name(&self) -> &str {
        &self.name
    }
    fn check(&self, state: &S) -> RuleOutcome {
        (self.predicate)(state)
    }
}

/// How much truth an operation demands before it is acknowledged (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuaranteeClass {
    /// Proceed on local knowledge; accept the probability of apologizing
    /// later. Low latency, probabilistic enforcement.
    Guess,
    /// "Double check with all the replicas to make sure" — coordinate
    /// synchronously before promising. High latency, crisp enforcement.
    Coordinate,
}

/// Classifies each operation into a [`GuaranteeClass`] — the paper's
/// observation that the consistency/availability trade "may frequently be
/// applied across many different aspects at many levels of granularity
/// within a single application" (§5.5).
pub trait RiskPolicy<O>: fmt::Debug {
    /// Decide how much guarantee this operation must buy.
    fn classify(&self, op: &O) -> GuaranteeClass;
}

/// Every operation is a guess — maximum availability, maximum apology
/// exposure.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysGuess;

impl<O> RiskPolicy<O> for AlwaysGuess {
    fn classify(&self, _op: &O) -> GuaranteeClass {
        GuaranteeClass::Guess
    }
}

/// Every operation coordinates — classic consistency, full latency.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysCoordinate;

impl<O> RiskPolicy<O> for AlwaysCoordinate {
    fn classify(&self, _op: &O) -> GuaranteeClass {
        GuaranteeClass::Coordinate
    }
}

/// The paper's canonical policy (§5.5): operations whose extracted value
/// is at or above the threshold coordinate; smaller ones are guessed.
/// "Locally clear a check if the face value is less than $10,000."
pub struct ValueThreshold<O> {
    threshold: i64,
    value_of: Box<dyn Fn(&O) -> i64>,
}

impl<O> ValueThreshold<O> {
    /// A threshold policy extracting the at-risk value from an operation.
    pub fn new(threshold: i64, value_of: impl Fn(&O) -> i64 + 'static) -> Self {
        ValueThreshold { threshold, value_of: Box::new(value_of) }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> i64 {
        self.threshold
    }
}

impl<O> fmt::Debug for ValueThreshold<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ValueThreshold({})", self.threshold)
    }
}

impl<O> RiskPolicy<O> for ValueThreshold<O> {
    fn classify(&self, op: &O) -> GuaranteeClass {
        if (self.value_of)(op) >= self.threshold {
            GuaranteeClass::Coordinate
        } else {
            GuaranteeClass::Guess
        }
    }
}

#[cfg(test)]
#[allow(clippy::inconsistent_digit_grouping)] // amounts written as dollars_cents
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, Default, PartialEq)]
    struct Account {
        balance: i64,
    }

    #[test]
    fn min_bound_rule_fires_below_minimum() {
        let rule = PredicateRule::min_bound("no-overdraft", |a: &Account| a.balance, 0);
        assert!(rule.check(&Account { balance: 5 }).is_satisfied());
        assert!(rule.check(&Account { balance: 0 }).is_satisfied());
        match rule.check(&Account { balance: -30 }) {
            RuleOutcome::Violated(msg) => {
                assert!(msg.contains("no-overdraft"));
                assert!(msg.contains("-30"));
            }
            RuleOutcome::Satisfied => panic!("should violate"),
        }
    }

    #[test]
    fn max_bound_rule_fires_above_maximum() {
        // 100 seats, 15% overbooking allowance => max 115 bookings.
        let rule = PredicateRule::max_bound("overbook-15pct", |a: &Account| a.balance, 115);
        assert!(rule.check(&Account { balance: 115 }).is_satisfied());
        assert!(!rule.check(&Account { balance: 116 }).is_satisfied());
    }

    #[test]
    fn threshold_policy_matches_the_papers_check_example() {
        struct Check {
            amount: i64,
        }
        let policy = ValueThreshold::new(10_000_00, |c: &Check| c.amount);
        assert_eq!(policy.classify(&Check { amount: 9_999_99 }), GuaranteeClass::Guess);
        assert_eq!(policy.classify(&Check { amount: 10_000_00 }), GuaranteeClass::Coordinate);
        assert_eq!(policy.classify(&Check { amount: 50_000_00 }), GuaranteeClass::Coordinate);
    }

    #[test]
    fn constant_policies_are_constant() {
        assert_eq!(
            <AlwaysGuess as RiskPolicy<i32>>::classify(&AlwaysGuess, &7),
            GuaranteeClass::Guess
        );
        assert_eq!(
            <AlwaysCoordinate as RiskPolicy<i32>>::classify(&AlwaysCoordinate, &7),
            GuaranteeClass::Coordinate
        );
    }

    #[test]
    fn predicate_rule_name_is_stable() {
        let rule = PredicateRule::new("custom", |_: &Account| RuleOutcome::Satisfied);
        assert_eq!(rule.name(), "custom");
        assert_eq!(format!("{rule:?}"), "PredicateRule(custom)");
    }
}
