//! # quicksand-core — the pattern library of *Building on Quicksand*
//!
//! Helland & Campbell's CIDR 2009 paper argues that once state is
//! checkpointed to backups **asynchronously** (to save latency), an
//! application can no longer know the authoritative truth; it must be
//! rebuilt around reorderable, retryable *business operations* rather
//! than storage reads and writes. This crate is that argument as an API —
//! each module implements one of the paper's named patterns:
//!
//! | Module | Pattern | Paper section |
//! |---|---|---|
//! | [`uniquifier`] | Unique work ids: the partitioning key and the retry collapser | §2.1, §5.4, §7.5 |
//! | [`idempotence`] | Dedup tables and cross-replica effect ledgers | §2.1, §5.4 |
//! | [`op`] | Operation-centric state: op logs, union merge, canonical replay | §6.4, §6.5, §7.6 |
//! | [`partitioning`] | Keyed-chunk routing with minimal movement under repartitioning | §2.3 |
//! | [`acid2`] | ACID 2.0 (Associative, Commutative, Idempotent, Distributed) checkers | §8 |
//! | [`mga`] | Memories, guesses, and apologies; coordinated vs guessed admission | §5.5–§5.8 |
//! | [`rules`] | Probabilistic business rules and per-operation risk policies | §5.2, §5.5 |
//! | [`escrow`] | Escrow locking: crisp bounds with commutative concurrency | §5.3 sidebar |
//! | [`resources`] | Over-booking vs over-provisioning, fungibility, redundant grants | §7.1, §7.4, §7.5 |
//! | [`reservation`] | The seat-reservation pattern with timeout cleanup | §7.3 |
//! | [`workflow`] | The paper-forms protocol: carbon copies, due dates, unmodified resubmission | §7.7 |
//! | [`wire`] | Zero-dependency wire encoding for ops crossing real process boundaries | §6.1 contract |
//!
//! The crate is deliberately substrate-free: no I/O, no clocks, no
//! threads. The `sim` crate supplies time and failure; the `tandem`,
//! `logship`, and `dynamo` crates supply the storage substrates the paper
//! narrates; the `cart`, `bank`, and `inventory` crates are the worked
//! examples, built from these patterns.
//!
//! ## The shortest possible tour
//!
//! ```
//! use quicksand_core::acid2::examples::CounterAdd;
//! use quicksand_core::mga::{ApologyQueue, Replica, ReplicaId};
//! use quicksand_core::rules::{BusinessRule, PredicateRule};
//!
//! // A business rule: don't overdraw.
//! let rule = PredicateRule::min_bound("no-overdraft", |b: &i64| *b, 0);
//! let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
//!
//! // Two replicas of one account, both clearing checks while disconnected.
//! let mut a = Replica::new(ReplicaId(0));
//! let mut b = Replica::new(ReplicaId(1));
//! a.try_accept(CounterAdd::new(1, 100), &rules); // deposit $100
//! b.learn(CounterAdd::new(1, 100));
//! a.try_accept(CounterAdd::new(2, -80), &rules); // each clears an $80 check:
//! b.try_accept(CounterAdd::new(3, -80), &rules); // locally fine, jointly not.
//!
//! // Knowledge sloshes together; the "Oh, crap!" moment files an apology.
//! a.exchange(&mut b);
//! let mut apologies = ApologyQueue::new();
//! a.audit(&rules, &mut apologies);
//! assert_eq!(apologies.total(), 1);
//! assert_eq!(*a.local_opinion(), -60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acid2;
pub mod escrow;
pub mod idempotence;
pub mod mga;
pub mod op;
pub mod partitioning;
pub mod reservation;
pub mod resources;
pub mod rules;
pub mod uniquifier;
pub mod wire;
pub mod workflow;

pub use idempotence::{DedupTable, EffectLedger, Outcome};
pub use mga::{Apology, ApologyQueue, Decision, Replica, ReplicaId};
pub use op::{OpLog, Operation};
pub use rules::{BusinessRule, GuaranteeClass, RiskPolicy, RuleOutcome};
pub use uniquifier::{Uniquifier, UniquifierSource};
pub use wire::{WireCodec, WireError};
pub use workflow::{FormRecord, PaperTrail};
