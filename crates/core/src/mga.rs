//! Memories, Guesses, and Apologies (§5.7): "arguably, all computing
//! really falls into three categories".
//!
//! - **Memories** — a replica's [`OpLog`]: "your local replica has seen
//!   what it has seen and (hopefully) remembers it."
//! - **Guesses** — every action admitted on local knowledge:
//!   [`Replica::try_accept`] checks the business rules against the local
//!   opinion only, so its acceptance "is, at best, a guess".
//! - **Apologies** — when reconciliation reveals that guesses made on
//!   different replicas jointly violate a rule, an [`Apology`] is filed.
//!   Per §5.6 the queue routes each one either to registered
//!   business-specific handler code or, failing that, to a human.
//!
//! The alternative path, [`coordinated_accept`], is the synchronous
//! checkpoint of §5.8: merge every replica's knowledge first, decide on
//! the union, and propagate the decision everywhere before acknowledging.
//! "Either you have synchronous checkpoints to your backup or you must
//! sometimes apologize for your behaviour" — this module is that
//! either/or, as an API.

use std::collections::HashSet;
use std::fmt;

use crate::op::{OpLog, Operation};
use crate::rules::{BusinessRule, RuleOutcome};
use crate::uniquifier::Uniquifier;

/// Identifies a replica in an MGA deployment.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReplicaId(pub u32);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The verdict on one admission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// The operation was admitted. On a [`Replica::try_accept`] path this
    /// is a *guess*; on a [`coordinated_accept`] path it is backed by the
    /// union of all replicas' knowledge at decision time.
    Accepted,
    /// The operation was refused because admitting it would violate the
    /// named rule *on the knowledge available to the decider*.
    Refused {
        /// Name of the violated rule.
        rule: String,
        /// The violation text.
        detail: String,
    },
    /// Already seen (uniquifier collapse): the retry is acknowledged but
    /// has no new business impact.
    Duplicate,
}

impl Decision {
    /// True for `Accepted` (fresh admission).
    pub fn accepted(&self) -> bool {
        matches!(self, Decision::Accepted)
    }
}

/// An apology owed to someone (§5.6, §5.7): a business-rule violation
/// that slipped through probabilistic enforcement, or a real-world
/// failure (§7.2's forklift) surfaced by the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Apology {
    /// The replica that discovered the problem.
    pub discovered_by: ReplicaId,
    /// The rule that turned out to be violated.
    pub rule: String,
    /// The unit of work most implicated, when attributable.
    pub uniquifier: Option<Uniquifier>,
    /// Human-readable description of the mess.
    pub detail: String,
}

/// How an apology was disposed of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Business-specific apology code handled it (§5.6 step 2); the
    /// string is the compensating action taken ("refunded $30 fee").
    Automated(String),
    /// Enqueued for a human (§5.6 step 1: "send the problem to a human").
    Human,
}

/// Apology code registered for one rule: returns `Some(action)` when it
/// compensated, `None` to punt to the human.
pub type ApologyHandler = Box<dyn Fn(&Apology) -> Option<String>>;

/// Routes apologies to registered handler code, or to the human queue
/// when no handler claims them (§5.6's two-step model).
#[derive(Default)]
pub struct ApologyQueue {
    handlers: Vec<(String, ApologyHandler)>,
    automated: Vec<(Apology, String)>,
    human: Vec<Apology>,
    seen: HashSet<(String, Option<Uniquifier>, String)>,
}

impl fmt::Debug for ApologyQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApologyQueue")
            .field("handlers", &self.handlers.len())
            .field("automated", &self.automated.len())
            .field("human", &self.human.len())
            .finish()
    }
}

impl ApologyQueue {
    /// An empty queue with no handlers: everything goes to the human.
    pub fn new() -> Self {
        ApologyQueue::default()
    }

    /// Register apology code for a rule. The handler returns
    /// `Some(action)` if it compensated, `None` to punt to the human
    /// ("asking for human help for those apologies beyond its designed
    /// cases", §5.7).
    pub fn register_handler(
        &mut self,
        rule: impl Into<String>,
        handler: impl Fn(&Apology) -> Option<String> + 'static,
    ) {
        self.handlers.push((rule.into(), Box::new(handler)));
    }

    /// File an apology. Exact duplicates (same rule, uniquifier, detail)
    /// are dropped so repeated audits don't double-apologize. Returns the
    /// disposition, or `None` if it was a duplicate.
    pub fn file(&mut self, apology: Apology) -> Option<Disposition> {
        let key = (apology.rule.clone(), apology.uniquifier, apology.detail.clone());
        if !self.seen.insert(key) {
            return None;
        }
        for (rule, handler) in &self.handlers {
            if *rule == apology.rule {
                if let Some(action) = handler(&apology) {
                    self.automated.push((apology, action.clone()));
                    return Some(Disposition::Automated(action));
                }
            }
        }
        self.human.push(apology);
        Some(Disposition::Human)
    }

    /// Apologies that required a human.
    pub fn human_queue(&self) -> &[Apology] {
        &self.human
    }

    /// Apologies handled by code, with the action taken.
    pub fn automated_log(&self) -> &[(Apology, String)] {
        &self.automated
    }

    /// Total apologies filed (human + automated).
    pub fn total(&self) -> usize {
        self.human.len() + self.automated.len()
    }
}

/// A replica in an MGA deployment: a name, a memory, and a cached local
/// opinion of the state.
///
/// The cached state is updated incrementally as operations are recorded
/// or merged; for commutative operations (the ACID 2.0 contract this
/// framework assumes — certify with [`crate::acid2`]) it always equals
/// `log.materialize()`.
#[derive(Debug, Clone)]
pub struct Replica<O: Operation> {
    /// This replica's identity.
    pub id: ReplicaId,
    log: OpLog<O>,
    state: O::State,
    guesses: u64,
    refusals: u64,
}

impl<O: Operation> Replica<O> {
    /// A fresh replica with empty memory.
    pub fn new(id: ReplicaId) -> Self {
        Replica { id, log: OpLog::new(), state: O::State::default(), guesses: 0, refusals: 0 }
    }

    /// The replica's memory.
    pub fn log(&self) -> &OpLog<O> {
        &self.log
    }

    /// The replica's current local opinion of the state. "You know what
    /// you know when an action is performed" (§5.7) — this is that
    /// knowledge, nothing more.
    pub fn local_opinion(&self) -> &O::State {
        &self.state
    }

    /// Admit `op` on local knowledge only — a guess. The rules are
    /// checked against the local opinion *with the op applied*; if any
    /// rule objects, the op is refused (locally enforced, §5.2: the
    /// enforcement is still probabilistic because other replicas are
    /// concurrently admitting work this replica cannot see).
    pub fn try_accept(&mut self, op: O, rules: &[&dyn BusinessRule<O::State>]) -> Decision {
        if self.log.contains(op.id()) {
            return Decision::Duplicate;
        }
        let mut trial = self.state.clone();
        op.apply(&mut trial);
        for rule in rules {
            if let RuleOutcome::Violated(detail) = rule.check(&trial) {
                self.refusals += 1;
                return Decision::Refused { rule: rule.name().to_owned(), detail };
            }
        }
        self.state = trial;
        self.log.record(op);
        self.guesses += 1;
        Decision::Accepted
    }

    /// Record an operation learned from another replica without
    /// re-checking rules (the work already happened; refusing it now
    /// would un-happen history). Returns `true` if it was new.
    pub fn learn(&mut self, op: O) -> bool {
        if self.log.record(op.clone()) {
            op.apply(&mut self.state);
            true
        } else {
            false
        }
    }

    /// Bidirectional anti-entropy with another replica: each absorbs the
    /// other's missing operations. Returns (ops we learned, ops they
    /// learned).
    pub fn exchange(&mut self, other: &mut Replica<O>) -> (usize, usize) {
        let to_us = other.log.diff(&self.log);
        let to_them = self.log.diff(&other.log);
        let learned_here = to_us.len();
        let learned_there = to_them.len();
        for op in to_us {
            self.learn(op);
        }
        for op in to_them {
            other.learn(op);
        }
        (learned_here, learned_there)
    }

    /// Audit the reconciled state against the rules and file an apology
    /// for each violation (§5.7's "Oh, crap!" moment). Returns how many
    /// new apologies were filed.
    pub fn audit(&self, rules: &[&dyn BusinessRule<O::State>], queue: &mut ApologyQueue) -> usize {
        let mut filed = 0;
        for rule in rules {
            if let RuleOutcome::Violated(detail) = rule.check(&self.state) {
                let filed_now = queue.file(Apology {
                    discovered_by: self.id,
                    rule: rule.name().to_owned(),
                    uniquifier: None,
                    detail,
                });
                if filed_now.is_some() {
                    filed += 1;
                }
            }
        }
        filed
    }

    /// Number of operations admitted as guesses on this replica.
    pub fn guess_count(&self) -> u64 {
        self.guesses
    }

    /// Number of operations refused by local rule checks.
    pub fn refusal_count(&self) -> u64 {
        self.refusals
    }
}

/// The synchronous path of §5.8: gather every replica's knowledge, decide
/// on the union, and install the op everywhere before acknowledging.
///
/// This is deliberately expensive — the caller pays (and in experiments,
/// measures) a round of full knowledge exchange. In exchange the decision
/// is as crisp as a centralized system's: if the union state rejects the
/// op, it is refused everywhere.
pub fn coordinated_accept<O: Operation>(
    replicas: &mut [Replica<O>],
    op: O,
    rules: &[&dyn BusinessRule<O::State>],
) -> Decision {
    assert!(!replicas.is_empty(), "no replicas to coordinate");
    // Full mesh knowledge exchange (the latency the paper says you pay).
    let mut union = OpLog::new();
    for r in replicas.iter() {
        union.merge(&r.log);
    }
    if union.contains(op.id()) {
        // Make sure everyone knows it, then report the duplicate.
        for r in replicas.iter_mut() {
            sync_to(r, &union);
        }
        return Decision::Duplicate;
    }
    let mut trial = union.materialize();
    op.apply(&mut trial);
    for rule in rules {
        if let RuleOutcome::Violated(detail) = rule.check(&trial) {
            for r in replicas.iter_mut() {
                sync_to(r, &union);
            }
            return Decision::Refused { rule: rule.name().to_owned(), detail };
        }
    }
    union.record(op);
    for r in replicas.iter_mut() {
        sync_to(r, &union);
    }
    Decision::Accepted
}

fn sync_to<O: Operation>(replica: &mut Replica<O>, union: &OpLog<O>) {
    for op in union.diff(replica.log()) {
        replica.learn(op);
    }
}

/// Admit an operation under a risk policy (§5.5): operations the policy
/// classifies as [`crate::rules::GuaranteeClass::Guess`] are admitted on
/// `replicas[ingress]`'s local knowledge; operations classified
/// [`crate::rules::GuaranteeClass::Coordinate`] take the synchronous path across every
/// replica. Returns the decision and the class that was applied (so the
/// caller can account latency per class).
pub fn admit<O: Operation>(
    replicas: &mut [Replica<O>],
    ingress: usize,
    op: O,
    rules: &[&dyn BusinessRule<O::State>],
    policy: &dyn crate::rules::RiskPolicy<O>,
) -> (Decision, crate::rules::GuaranteeClass) {
    use crate::rules::GuaranteeClass;
    match policy.classify(&op) {
        GuaranteeClass::Guess => (replicas[ingress].try_accept(op, rules), GuaranteeClass::Guess),
        GuaranteeClass::Coordinate => {
            (coordinated_accept(replicas, op, rules), GuaranteeClass::Coordinate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acid2::examples::CounterAdd;
    use crate::rules::PredicateRule;

    fn no_overdraft() -> PredicateRule<i64> {
        PredicateRule::min_bound("no-overdraft", |s: &i64| *s, 0)
    }

    fn add(n: u64, delta: i64) -> CounterAdd {
        CounterAdd::new(n, delta)
    }

    #[test]
    fn local_guess_respects_local_knowledge() {
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut r = Replica::new(ReplicaId(0));
        assert!(r.try_accept(add(1, 100), &rules).accepted());
        assert!(r.try_accept(add(2, -60), &rules).accepted());
        // Local opinion is 40; a further -60 would overdraw and is refused.
        match r.try_accept(add(3, -60), &rules) {
            Decision::Refused { rule, .. } => assert_eq!(rule, "no-overdraft"),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(*r.local_opinion(), 40);
        assert_eq!(r.guess_count(), 2);
        assert_eq!(r.refusal_count(), 1);
    }

    #[test]
    fn duplicate_admission_is_collapsed() {
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut r = Replica::new(ReplicaId(0));
        assert!(r.try_accept(add(1, 10), &rules).accepted());
        assert_eq!(r.try_accept(add(1, 10), &rules), Decision::Duplicate);
        assert_eq!(*r.local_opinion(), 10);
    }

    #[test]
    fn disconnected_replicas_jointly_overdraw_and_apologize_on_reconcile() {
        // The paper's two-replica bank (§6.2): both clear checks against
        // the same $100; each is locally fine; together they overdraw.
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut a = Replica::new(ReplicaId(0));
        let mut b = Replica::new(ReplicaId(1));
        // Both replicas know about the $100 deposit.
        a.try_accept(add(1, 100), &rules);
        b.learn(add(1, 100));
        // Disconnected: each clears an $80 check. Each guess is locally valid.
        assert!(a.try_accept(add(2, -80), &rules).accepted());
        assert!(b.try_accept(add(3, -80), &rules).accepted());
        // Reconcile: knowledge sloshes together, balance is -60.
        a.exchange(&mut b);
        assert_eq!(*a.local_opinion(), -60);
        assert_eq!(*b.local_opinion(), -60);
        let mut queue = ApologyQueue::new();
        assert_eq!(a.audit(&rules, &mut queue), 1);
        // Same violation re-audited from b dedups.
        assert_eq!(b.audit(&rules, &mut queue), 0);
        assert_eq!(queue.total(), 1);
    }

    #[test]
    fn coordinated_accept_prevents_the_joint_overdraft() {
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut replicas = vec![Replica::new(ReplicaId(0)), Replica::new(ReplicaId(1))];
        assert!(coordinated_accept(&mut replicas, add(1, 100), &rules).accepted());
        assert!(coordinated_accept(&mut replicas, add(2, -80), &rules).accepted());
        // The second $80 check bounces: the union knows the balance is 20.
        match coordinated_accept(&mut replicas, add(3, -80), &rules) {
            Decision::Refused { rule, .. } => assert_eq!(rule, "no-overdraft"),
            other => panic!("expected refusal, got {other:?}"),
        }
        for r in &replicas {
            assert_eq!(*r.local_opinion(), 20);
        }
    }

    #[test]
    fn coordinated_accept_collapses_duplicates_everywhere() {
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut replicas = vec![Replica::new(ReplicaId(0)), Replica::new(ReplicaId(1))];
        assert!(coordinated_accept(&mut replicas, add(1, 5), &rules).accepted());
        assert_eq!(coordinated_accept(&mut replicas, add(1, 5), &rules), Decision::Duplicate);
        assert_eq!(*replicas[0].local_opinion(), 5);
    }

    #[test]
    fn exchange_is_bidirectional_and_converges() {
        let mut a = Replica::new(ReplicaId(0));
        let mut b = Replica::new(ReplicaId(1));
        a.learn(add(1, 1));
        a.learn(add(2, 2));
        b.learn(add(3, 4));
        let (here, there) = a.exchange(&mut b);
        assert_eq!((here, there), (1, 2));
        assert_eq!(*a.local_opinion(), 7);
        assert_eq!(*b.local_opinion(), 7);
        assert!(a.log().same_ops(b.log()));
    }

    #[test]
    fn apology_handlers_compensate_and_punt() {
        let mut queue = ApologyQueue::new();
        queue.register_handler("no-overdraft", |a| {
            if a.detail.contains("-6") {
                Some("charged $30 bounce fee".to_owned())
            } else {
                None // beyond designed cases → human
            }
        });
        let ap = |detail: &str| Apology {
            discovered_by: ReplicaId(0),
            rule: "no-overdraft".to_owned(),
            uniquifier: None,
            detail: detail.to_owned(),
        };
        assert_eq!(
            queue.file(ap("balance -60")),
            Some(Disposition::Automated("charged $30 bounce fee".to_owned()))
        );
        assert_eq!(queue.file(ap("balance -999")), Some(Disposition::Human));
        assert_eq!(queue.file(ap("balance -60")), None); // dedup
        assert_eq!(queue.automated_log().len(), 1);
        assert_eq!(queue.human_queue().len(), 1);
        assert_eq!(queue.total(), 2);
    }

    #[test]
    fn learn_is_idempotent() {
        let mut r: Replica<CounterAdd> = Replica::new(ReplicaId(0));
        assert!(r.learn(add(1, 10)));
        assert!(!r.learn(add(1, 10)));
        assert_eq!(*r.local_opinion(), 10);
    }

    #[test]
    fn admit_routes_by_risk_policy() {
        use crate::rules::{GuaranteeClass, ValueThreshold};
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let policy = ValueThreshold::new(50, |op: &CounterAdd| op.delta.abs());
        let mut replicas = vec![Replica::new(ReplicaId(0)), Replica::new(ReplicaId(1))];
        // Small deposit: guessed at the ingress replica only.
        let (d, class) = admit(&mut replicas, 0, add(1, 10), &rules, &policy);
        assert!(d.accepted());
        assert_eq!(class, GuaranteeClass::Guess);
        assert_eq!(*replicas[1].local_opinion(), 0, "guesses stay local");
        // Big deposit: coordinated — everyone learns it.
        let (d, class) = admit(&mut replicas, 0, add(2, 100), &rules, &policy);
        assert!(d.accepted());
        assert_eq!(class, GuaranteeClass::Coordinate);
        assert_eq!(*replicas[1].local_opinion(), 110);
    }

    #[test]
    fn cached_state_matches_materialization_for_commutative_ops() {
        let rule = no_overdraft();
        let rules: [&dyn BusinessRule<i64>; 1] = [&rule];
        let mut a = Replica::new(ReplicaId(0));
        let mut b = Replica::new(ReplicaId(1));
        for i in 0..20 {
            a.try_accept(add(i, 3), &rules);
        }
        for i in 20..40 {
            b.try_accept(add(i, 2), &rules);
        }
        a.exchange(&mut b);
        assert_eq!(*a.local_opinion(), a.log().materialize());
        assert_eq!(*b.local_opinion(), b.log().materialize());
    }
}
