//! The operation-centric pattern (§6.5): state as a set of uniquely
//! identified business operations.
//!
//! "Storage systems alone cannot provide the commutativity we need...
//! We need the business operations to reorder." (§6.4) The paper's answer
//! is to record the *intentions* of the application — ADD-TO-CART,
//! debit, credit — each carrying a uniquifier, and to define the state of
//! a replica as the set of operations it has seen. Replication then
//! becomes set union, and "replicas that have seen the same work should
//! see the same result, independent of the order in which the work has
//! arrived" (§7.6).
//!
//! [`OpLog`] implements that discipline:
//!
//! - `record` is **idempotent**: a duplicate uniquifier is collapsed.
//! - `merge` is set union, hence **commutative** and **associative**
//!   (`a.merge(b)` and `b.merge(a)` reach the same set; any grouping of
//!   merges reaches the same set).
//! - `materialize` replays the set in a canonical order (uniquifier
//!   order), so even an application whose operations do not fully commute
//!   gets a *deterministic* outcome from the same set. For genuinely
//!   commutative operations the canonical order is immaterial, which is
//!   what [`crate::acid2`] verifies.

use std::collections::BTreeMap;

use crate::uniquifier::Uniquifier;

/// A business operation: the paper's unit of "recorded intention".
///
/// Implementations should be *semantic* operations (add item X, debit
/// $10) rather than storage writes; the whole point of §6.4 is that
/// "WRITE is not commutative".
pub trait Operation: Clone {
    /// The state the operation acts on (a cart, an account, ...).
    type State: Default + Clone;

    /// The operation's uniquifier, assigned at ingress (§5.4).
    fn id(&self) -> Uniquifier;

    /// Apply the operation's business impact to the state.
    fn apply(&self, state: &mut Self::State);
}

/// A replica's memory: the set of operations it has seen, keyed and
/// canonically ordered by uniquifier.
///
/// ```
/// use quicksand_core::op::OpLog;
/// use quicksand_core::acid2::examples::CounterAdd;
///
/// let mut east = OpLog::new();
/// let mut west = OpLog::new();
/// east.record(CounterAdd::new(1, 50));
/// west.record(CounterAdd::new(2, -20));
/// west.record(CounterAdd::new(1, 50));   // the same op arrived there too
/// east.merge(&west);                      // union: dedup + absorb
/// assert_eq!(east.materialize(), 30);
/// assert_eq!(east.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OpLog<O: Operation> {
    ops: BTreeMap<Uniquifier, O>,
}

impl<O: Operation> Default for OpLog<O> {
    fn default() -> Self {
        OpLog { ops: BTreeMap::new() }
    }
}

impl<O: Operation> OpLog<O> {
    /// An empty log.
    pub fn new() -> Self {
        OpLog::default()
    }

    /// Record an operation. Returns `true` if it was new, `false` if its
    /// uniquifier had already been seen (the duplicate is discarded — the
    /// idempotence half of ACID 2.0).
    pub fn record(&mut self, op: O) -> bool {
        use std::collections::btree_map::Entry;
        match self.ops.entry(op.id()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(op);
                true
            }
        }
    }

    /// Absorb every operation from `other` that this log has not seen.
    /// Returns how many were new. Merging is set union: commutative,
    /// associative, idempotent.
    pub fn merge(&mut self, other: &OpLog<O>) -> usize {
        let mut absorbed = 0;
        for op in other.ops.values() {
            if self.record(op.clone()) {
                absorbed += 1;
            }
        }
        absorbed
    }

    /// The operations this log has that `other` lacks — the anti-entropy
    /// delta to send.
    pub fn diff(&self, other: &OpLog<O>) -> Vec<O> {
        self.ops
            .iter()
            .filter(|(id, _)| !other.ops.contains_key(id))
            .map(|(_, op)| op.clone())
            .collect()
    }

    /// Replay the full set in canonical (uniquifier) order onto a default
    /// state. Same set ⇒ same result, regardless of arrival order.
    pub fn materialize(&self) -> O::State {
        let mut s = O::State::default();
        for op in self.ops.values() {
            op.apply(&mut s);
        }
        s
    }

    /// Replay onto a caller-provided base state (used when a log is
    /// periodically truncated into a snapshot, like the bank's monthly
    /// statement in §6.2).
    pub fn materialize_onto(&self, base: &O::State) -> O::State {
        let mut s = base.clone();
        for op in self.ops.values() {
            op.apply(&mut s);
        }
        s
    }

    /// True if an operation with this uniquifier has been seen.
    pub fn contains(&self, id: Uniquifier) -> bool {
        self.ops.contains_key(&id)
    }

    /// The operation recorded under `id`, if any.
    pub fn get(&self, id: Uniquifier) -> Option<&O> {
        self.ops.get(&id)
    }

    /// Number of distinct operations seen.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations have been seen.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate operations in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &O> {
        self.ops.values()
    }

    /// Iterate uniquifiers in canonical order.
    pub fn ids(&self) -> impl Iterator<Item = Uniquifier> + '_ {
        self.ops.keys().copied()
    }

    /// Drop every recorded operation, returning the state they
    /// materialize to — used to roll a log over into an immutable
    /// snapshot (the monthly statement pattern, §6.2).
    pub fn truncate_into_snapshot(&mut self) -> O::State {
        let s = self.materialize();
        self.ops.clear();
        s
    }

    /// True if the two logs contain exactly the same uniquifiers.
    pub fn same_ops(&self, other: &OpLog<O>) -> bool {
        self.len() == other.len() && self.ops.keys().eq(other.ops.keys())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A commutative test operation: add `delta` to a counter.
    #[derive(Clone, Debug, PartialEq)]
    struct Add {
        id: Uniquifier,
        delta: i64,
    }

    impl Add {
        fn new(n: u64, delta: i64) -> Self {
            Add { id: Uniquifier::from_parts(0, n), delta }
        }
    }

    impl Operation for Add {
        type State = i64;
        fn id(&self) -> Uniquifier {
            self.id
        }
        fn apply(&self, state: &mut i64) {
            *state += self.delta;
        }
    }

    #[test]
    fn duplicates_are_collapsed() {
        let mut log = OpLog::new();
        assert!(log.record(Add::new(1, 10)));
        assert!(!log.record(Add::new(1, 10)));
        assert!(!log.record(Add::new(1, 999))); // same id wins even if payload differs
        assert_eq!(log.materialize(), 10);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn merge_is_union_and_counts_new_ops() {
        let mut a = OpLog::new();
        let mut b = OpLog::new();
        a.record(Add::new(1, 1));
        a.record(Add::new(2, 2));
        b.record(Add::new(2, 2));
        b.record(Add::new(3, 4));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.materialize(), 7);
        assert_eq!(a.merge(&b), 0); // idempotent
    }

    #[test]
    fn merge_commutes() {
        let ops: Vec<Add> = (0..20).map(|i| Add::new(i, i as i64)).collect();
        let mut a = OpLog::new();
        let mut b = OpLog::new();
        for (i, op) in ops.iter().enumerate() {
            if i % 2 == 0 {
                a.record(op.clone());
            } else {
                b.record(op.clone());
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert!(ab.same_ops(&ba));
        assert_eq!(ab.materialize(), ba.materialize());
    }

    #[test]
    fn materialization_is_arrival_order_independent() {
        let mut fwd = OpLog::new();
        let mut rev = OpLog::new();
        let ops: Vec<Add> = (0..50).map(|i| Add::new(i, (i * 3) as i64)).collect();
        for op in &ops {
            fwd.record(op.clone());
        }
        for op in ops.iter().rev() {
            rev.record(op.clone());
        }
        assert!(fwd.same_ops(&rev));
        assert_eq!(fwd.materialize(), rev.materialize());
    }

    #[test]
    fn diff_is_exactly_the_missing_ops() {
        let mut a = OpLog::new();
        let mut b = OpLog::new();
        a.record(Add::new(1, 1));
        a.record(Add::new(2, 2));
        b.record(Add::new(1, 1));
        let delta = a.diff(&b);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].id, Uniquifier::from_parts(0, 2));
        assert!(b.diff(&a).is_empty());
    }

    #[test]
    fn snapshot_rollover_preserves_total_state() {
        let mut log = OpLog::new();
        log.record(Add::new(1, 100));
        log.record(Add::new(2, -30));
        let march = log.truncate_into_snapshot();
        assert_eq!(march, 70);
        assert!(log.is_empty());
        log.record(Add::new(3, 5));
        assert_eq!(log.materialize_onto(&march), 75);
    }

    #[test]
    fn get_and_contains_work() {
        let mut log = OpLog::new();
        let op = Add::new(4, 9);
        log.record(op.clone());
        assert!(log.contains(op.id()));
        assert_eq!(log.get(op.id()), Some(&op));
        assert!(!log.contains(Uniquifier::from_parts(0, 99)));
    }
}
