//! The partitioning discipline of §2.3 (after \[15\], *Life Beyond
//! Distributed Transactions*).
//!
//! "A scalable application must apply a discipline of partitioning its
//! data into chunks which can remain on a single node even when
//! repartitioned. Each chunk has a unique key... the idempotent
//! sub-algorithms follow the same co-location: all of their data and
//! behavior reside on a single node even in the presence of
//! repartitioning."
//!
//! [`KeyRouter`] assigns each uniquely-keyed chunk to exactly one node
//! using rendezvous (highest-random-weight) hashing: every (key, node)
//! pair gets a deterministic score and the key lives on the
//! highest-scoring live node. The property §2.3 needs falls out
//! directly: when a node is added or removed, **only the chunks whose
//! winner changed move** — everything else stays put, so the
//! co-location of data and behaviour survives repartitioning.

use crate::uniquifier::Uniquifier;

/// Identifies a node in the routing pool.
pub type NodeName = u64;

fn score(key: Uniquifier, node: NodeName) -> u64 {
    // Mix the key and node into a 64-bit score (splitmix-style finisher
    // over the folded key).
    let folded = (key.as_raw() >> 64) as u64 ^ key.as_raw() as u64;
    let mut z = folded ^ node.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Routes uniquely-keyed chunks to nodes with minimal movement under
/// membership change.
///
/// ```
/// use quicksand_core::partitioning::KeyRouter;
/// use quicksand_core::uniquifier::Uniquifier;
///
/// let mut router = KeyRouter::new(0..4);
/// let chunk = Uniquifier::composite("customer", 42);
/// let home = router.route(chunk);
/// // Adding a node moves only the chunks the newcomer wins.
/// router.add_node(9);
/// assert!(router.route(chunk) == home || router.route(chunk) == 9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRouter {
    nodes: Vec<NodeName>,
}

impl KeyRouter {
    /// A router over the given nodes.
    pub fn new(nodes: impl IntoIterator<Item = NodeName>) -> Self {
        let mut nodes: Vec<NodeName> = nodes.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        KeyRouter { nodes }
    }

    /// Add a node. Chunks it wins move to it; nothing else moves.
    pub fn add_node(&mut self, node: NodeName) {
        if !self.nodes.contains(&node) {
            self.nodes.push(node);
            self.nodes.sort_unstable();
        }
    }

    /// Remove a node. Only its chunks move (each to its runner-up).
    pub fn remove_node(&mut self, node: NodeName) {
        self.nodes.retain(|n| *n != node);
    }

    /// The node a chunk lives on. Exactly one node owns each key at any
    /// membership — the §2.3 invariant.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn route(&self, key: Uniquifier) -> NodeName {
        assert!(!self.nodes.is_empty(), "routing with no nodes");
        *self.nodes.iter().max_by_key(|n| (score(key, **n), **n)).expect("nonempty")
    }

    /// The top `n` owners in preference order (for replicated chunks).
    pub fn route_n(&self, key: Uniquifier, n: usize) -> Vec<NodeName> {
        let mut scored: Vec<(u64, NodeName)> =
            self.nodes.iter().map(|node| (score(key, *node), *node)).collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        scored.into_iter().take(n).map(|(_, node)| node).collect()
    }

    /// Number of nodes in the pool.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = Uniquifier> {
        (0..n).map(|i| Uniquifier::composite("chunk", i))
    }

    #[test]
    fn each_key_has_exactly_one_stable_owner() {
        let router = KeyRouter::new(0..5);
        for k in keys(500) {
            assert_eq!(router.route(k), router.route(k));
            assert!(router.route(k) < 5);
        }
    }

    #[test]
    fn load_spreads_roughly_evenly() {
        let router = KeyRouter::new(0..4);
        let mut counts = [0usize; 4];
        for k in keys(4000) {
            counts[router.route(k) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skew: {counts:?}");
        }
    }

    #[test]
    fn removing_a_node_moves_only_its_chunks() {
        let before = KeyRouter::new(0..5);
        let mut after = before.clone();
        after.remove_node(2);
        let mut moved = 0;
        for k in keys(2000) {
            let b = before.route(k);
            let a = after.route(k);
            if b != a {
                moved += 1;
                assert_eq!(b, 2, "a chunk moved that didn't have to");
            }
        }
        assert!((250..550).contains(&moved), "expected ~1/5 to move, got {moved}");
    }

    #[test]
    fn adding_a_node_steals_only_what_it_wins() {
        let before = KeyRouter::new(0..4);
        let mut after = before.clone();
        after.add_node(9);
        let mut moved = 0;
        for k in keys(2000) {
            let b = before.route(k);
            let a = after.route(k);
            if b != a {
                moved += 1;
                assert_eq!(a, 9, "chunks may only move to the newcomer");
            }
        }
        assert!((250..550).contains(&moved), "expected ~1/5 to move, got {moved}");
    }

    #[test]
    fn route_n_gives_distinct_owners_in_preference_order() {
        let router = KeyRouter::new(0..6);
        for k in keys(100) {
            let owners = router.route_n(k, 3);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], router.route(k));
            let mut d = owners.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3);
        }
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut router = KeyRouter::new([1, 1, 2]);
        router.add_node(2);
        assert_eq!(router.len(), 2);
    }
}
